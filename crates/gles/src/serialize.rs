//! Wire format for forwarding graphics commands (Section IV-B).
//!
//! Serialization must solve the paper's central hazard: OpenGL parameters
//! are either basic values (easy) or *pointers* whose referenced length
//! may be unknown at interception time. `glVertexAttribPointer` is the
//! heavily-invoked offender — the byte count it references "is only
//! revealed in consecutive drawing commands (e.g., glDrawElements)".
//!
//! The paper's fix, reproduced by [`DeferredResolver`]: hold the pointer
//! command back, and when a draw call arrives compute the exact length
//! `(first + count − 1) · stride + size · sizeof(type)`, materialize the
//! client bytes, and emit the held command *immediately before the draw*.
//! "The reorder does not influence the final results so long as
//! glVertexAttribPointer appears before the drawing calls."
//!
//! [`encode_command`]/[`decode_command`] implement the binary wire format
//! itself: a 1-byte opcode followed by little-endian fields, with
//! varint-prefixed bulk payloads.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::command::{ClientMemory, GlCommand, IndexSource, TexParam, UniformValue, VertexSource};
use crate::types::{
    AttribType, BlendFactor, BufferId, BufferTarget, BufferUsage, Capability, ClearMask, DepthFunc,
    FramebufferId, IndexType, PixelFormat, Primitive, ProgramId, ShaderId, ShaderKind, TextureId,
    TextureTarget, UniformLocation,
};

/// Errors produced by the wire codec and the deferred resolver.
#[derive(Clone, Debug, PartialEq)]
pub enum WireError {
    /// Attempted to encode a command still holding a raw client pointer.
    UnresolvedPointer,
    /// Input ended mid-command.
    Truncated,
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// An enum discriminant was out of range.
    BadEnum(&'static str, u8),
    /// String field was not valid UTF-8.
    BadUtf8,
    /// Client-memory read failed while materializing a deferred pointer.
    ClientRead(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnresolvedPointer => {
                write!(f, "command references unresolved client memory")
            }
            WireError::Truncated => write!(f, "wire data truncated"),
            WireError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            WireError::BadEnum(what, v) => write!(f, "invalid {what} discriminant {v}"),
            WireError::BadUtf8 => write!(f, "invalid utf-8 in string field"),
            WireError::ClientRead(m) => write!(f, "client memory read failed: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// primitive writers/readers
// ---------------------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_i32(out: &mut Vec<u8>, v: i32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}
fn put_bytes(out: &mut Vec<u8>, data: &[u8]) {
    put_varint(out, data.len() as u64);
    out.extend_from_slice(data);
}

/// A cursor over wire bytes.
#[derive(Debug)]
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        let v = *self.data.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(v)
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self
            .data
            .get(self.pos..self.pos + 4)
            .ok_or(WireError::Truncated)?;
        self.pos += 4;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn i32(&mut self) -> Result<i32, WireError> {
        Ok(self.u32()? as i32)
    }
    fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_bits(self.u32()?))
    }
    fn varint(&mut self) -> Result<u64, WireError> {
        let mut v = 0u64;
        let mut shift = 0;
        loop {
            let byte = self.u8()?;
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift >= 64 {
                return Err(WireError::Truncated);
            }
        }
    }
    fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.varint()? as usize;
        let b = self
            .data
            .get(self.pos..self.pos + len)
            .ok_or(WireError::Truncated)?;
        self.pos += len;
        Ok(b.to_vec())
    }
    fn bool(&mut self) -> Result<bool, WireError> {
        Ok(self.u8()? != 0)
    }
    fn is_empty(&self) -> bool {
        self.pos >= self.data.len()
    }
}

// Enum <-> byte tables. Kept adjacent so encode and decode stay in sync.
fn buffer_target_byte(t: BufferTarget) -> u8 {
    match t {
        BufferTarget::Array => 0,
        BufferTarget::ElementArray => 1,
    }
}
fn buffer_target_from(v: u8) -> Result<BufferTarget, WireError> {
    match v {
        0 => Ok(BufferTarget::Array),
        1 => Ok(BufferTarget::ElementArray),
        _ => Err(WireError::BadEnum("BufferTarget", v)),
    }
}
fn usage_byte(u: BufferUsage) -> u8 {
    match u {
        BufferUsage::StaticDraw => 0,
        BufferUsage::DynamicDraw => 1,
        BufferUsage::StreamDraw => 2,
    }
}
fn usage_from(v: u8) -> Result<BufferUsage, WireError> {
    match v {
        0 => Ok(BufferUsage::StaticDraw),
        1 => Ok(BufferUsage::DynamicDraw),
        2 => Ok(BufferUsage::StreamDraw),
        _ => Err(WireError::BadEnum("BufferUsage", v)),
    }
}
fn shader_kind_byte(k: ShaderKind) -> u8 {
    match k {
        ShaderKind::Vertex => 0,
        ShaderKind::Fragment => 1,
    }
}
fn shader_kind_from(v: u8) -> Result<ShaderKind, WireError> {
    match v {
        0 => Ok(ShaderKind::Vertex),
        1 => Ok(ShaderKind::Fragment),
        _ => Err(WireError::BadEnum("ShaderKind", v)),
    }
}
fn tex_target_byte(t: TextureTarget) -> u8 {
    match t {
        TextureTarget::Texture2D => 0,
        TextureTarget::CubeMap => 1,
    }
}
fn tex_target_from(v: u8) -> Result<TextureTarget, WireError> {
    match v {
        0 => Ok(TextureTarget::Texture2D),
        1 => Ok(TextureTarget::CubeMap),
        _ => Err(WireError::BadEnum("TextureTarget", v)),
    }
}
fn pixel_format_byte(p: PixelFormat) -> u8 {
    match p {
        PixelFormat::Rgba8 => 0,
        PixelFormat::Rgb8 => 1,
        PixelFormat::Luminance => 2,
        PixelFormat::Rgb565 => 3,
    }
}
fn pixel_format_from(v: u8) -> Result<PixelFormat, WireError> {
    match v {
        0 => Ok(PixelFormat::Rgba8),
        1 => Ok(PixelFormat::Rgb8),
        2 => Ok(PixelFormat::Luminance),
        3 => Ok(PixelFormat::Rgb565),
        _ => Err(WireError::BadEnum("PixelFormat", v)),
    }
}
fn capability_byte(c: Capability) -> u8 {
    match c {
        Capability::Blend => 0,
        Capability::DepthTest => 1,
        Capability::CullFace => 2,
        Capability::ScissorTest => 3,
        Capability::Dither => 4,
    }
}
fn capability_from(v: u8) -> Result<Capability, WireError> {
    match v {
        0 => Ok(Capability::Blend),
        1 => Ok(Capability::DepthTest),
        2 => Ok(Capability::CullFace),
        3 => Ok(Capability::ScissorTest),
        4 => Ok(Capability::Dither),
        _ => Err(WireError::BadEnum("Capability", v)),
    }
}
fn blend_byte(b: BlendFactor) -> u8 {
    match b {
        BlendFactor::Zero => 0,
        BlendFactor::One => 1,
        BlendFactor::SrcAlpha => 2,
        BlendFactor::OneMinusSrcAlpha => 3,
    }
}
fn blend_from(v: u8) -> Result<BlendFactor, WireError> {
    match v {
        0 => Ok(BlendFactor::Zero),
        1 => Ok(BlendFactor::One),
        2 => Ok(BlendFactor::SrcAlpha),
        3 => Ok(BlendFactor::OneMinusSrcAlpha),
        _ => Err(WireError::BadEnum("BlendFactor", v)),
    }
}
fn depth_func_byte(d: DepthFunc) -> u8 {
    match d {
        DepthFunc::Less => 0,
        DepthFunc::LessEqual => 1,
        DepthFunc::Always => 2,
    }
}
fn depth_func_from(v: u8) -> Result<DepthFunc, WireError> {
    match v {
        0 => Ok(DepthFunc::Less),
        1 => Ok(DepthFunc::LessEqual),
        2 => Ok(DepthFunc::Always),
        _ => Err(WireError::BadEnum("DepthFunc", v)),
    }
}
fn primitive_byte(p: Primitive) -> u8 {
    match p {
        Primitive::Points => 0,
        Primitive::Lines => 1,
        Primitive::Triangles => 2,
        Primitive::TriangleStrip => 3,
        Primitive::TriangleFan => 4,
    }
}
fn primitive_from(v: u8) -> Result<Primitive, WireError> {
    match v {
        0 => Ok(Primitive::Points),
        1 => Ok(Primitive::Lines),
        2 => Ok(Primitive::Triangles),
        3 => Ok(Primitive::TriangleStrip),
        4 => Ok(Primitive::TriangleFan),
        _ => Err(WireError::BadEnum("Primitive", v)),
    }
}
fn index_type_byte(t: IndexType) -> u8 {
    match t {
        IndexType::U8 => 0,
        IndexType::U16 => 1,
    }
}
fn index_type_from(v: u8) -> Result<IndexType, WireError> {
    match v {
        0 => Ok(IndexType::U8),
        1 => Ok(IndexType::U16),
        _ => Err(WireError::BadEnum("IndexType", v)),
    }
}
fn attrib_type_byte(t: AttribType) -> u8 {
    match t {
        AttribType::F32 => 0,
        AttribType::U8 => 1,
        AttribType::I16 => 2,
    }
}
fn attrib_type_from(v: u8) -> Result<AttribType, WireError> {
    match v {
        0 => Ok(AttribType::F32),
        1 => Ok(AttribType::U8),
        2 => Ok(AttribType::I16),
        _ => Err(WireError::BadEnum("AttribType", v)),
    }
}
fn tex_param_encode(out: &mut Vec<u8>, p: TexParam) {
    let (tag, val) = match p {
        TexParam::MinFilterLinear(v) => (0u8, v),
        TexParam::MagFilterLinear(v) => (1, v),
        TexParam::WrapSRepeat(v) => (2, v),
        TexParam::WrapTRepeat(v) => (3, v),
    };
    put_u8(out, tag);
    put_u8(out, val as u8);
}
fn tex_param_decode(r: &mut Reader<'_>) -> Result<TexParam, WireError> {
    let tag = r.u8()?;
    let val = r.bool()?;
    match tag {
        0 => Ok(TexParam::MinFilterLinear(val)),
        1 => Ok(TexParam::MagFilterLinear(val)),
        2 => Ok(TexParam::WrapSRepeat(val)),
        3 => Ok(TexParam::WrapTRepeat(val)),
        _ => Err(WireError::BadEnum("TexParam", tag)),
    }
}
fn uniform_encode(out: &mut Vec<u8>, v: &UniformValue) {
    match v {
        UniformValue::F1(a) => {
            put_u8(out, 0);
            put_f32(out, *a);
        }
        UniformValue::F2(a) => {
            put_u8(out, 1);
            a.iter().for_each(|x| put_f32(out, *x));
        }
        UniformValue::F3(a) => {
            put_u8(out, 2);
            a.iter().for_each(|x| put_f32(out, *x));
        }
        UniformValue::F4(a) => {
            put_u8(out, 3);
            a.iter().for_each(|x| put_f32(out, *x));
        }
        UniformValue::I1(a) => {
            put_u8(out, 4);
            put_i32(out, *a);
        }
        UniformValue::Mat4(a) => {
            put_u8(out, 5);
            a.iter().for_each(|x| put_f32(out, *x));
        }
    }
}
fn uniform_decode(r: &mut Reader<'_>) -> Result<UniformValue, WireError> {
    match r.u8()? {
        0 => Ok(UniformValue::F1(r.f32()?)),
        1 => Ok(UniformValue::F2([r.f32()?, r.f32()?])),
        2 => Ok(UniformValue::F3([r.f32()?, r.f32()?, r.f32()?])),
        3 => Ok(UniformValue::F4([r.f32()?, r.f32()?, r.f32()?, r.f32()?])),
        4 => Ok(UniformValue::I1(r.i32()?)),
        5 => {
            let mut m = [0f32; 16];
            for slot in &mut m {
                *slot = r.f32()?;
            }
            Ok(UniformValue::Mat4(m))
        }
        t => Err(WireError::BadEnum("UniformValue", t)),
    }
}

// Opcode space.
mod op {
    pub const GEN_TEXTURE: u8 = 0x01;
    pub const DELETE_TEXTURE: u8 = 0x02;
    pub const GEN_BUFFER: u8 = 0x03;
    pub const DELETE_BUFFER: u8 = 0x04;
    pub const GEN_FRAMEBUFFER: u8 = 0x05;
    pub const DELETE_FRAMEBUFFER: u8 = 0x06;
    pub const CREATE_SHADER: u8 = 0x07;
    pub const SHADER_SOURCE: u8 = 0x08;
    pub const COMPILE_SHADER: u8 = 0x09;
    pub const DELETE_SHADER: u8 = 0x0a;
    pub const CREATE_PROGRAM: u8 = 0x0b;
    pub const ATTACH_SHADER: u8 = 0x0c;
    pub const LINK_PROGRAM: u8 = 0x0d;
    pub const USE_PROGRAM: u8 = 0x0e;
    pub const DELETE_PROGRAM: u8 = 0x0f;
    pub const BIND_BUFFER: u8 = 0x10;
    pub const BUFFER_DATA: u8 = 0x11;
    pub const BUFFER_SUB_DATA: u8 = 0x12;
    pub const ACTIVE_TEXTURE: u8 = 0x13;
    pub const BIND_TEXTURE: u8 = 0x14;
    pub const TEX_IMAGE_2D: u8 = 0x15;
    pub const TEX_SUB_IMAGE_2D: u8 = 0x16;
    pub const TEX_PARAMETER: u8 = 0x17;
    pub const BIND_FRAMEBUFFER: u8 = 0x18;
    pub const FRAMEBUFFER_TEXTURE_2D: u8 = 0x19;
    pub const ENABLE: u8 = 0x1a;
    pub const DISABLE: u8 = 0x1b;
    pub const BLEND_FUNC: u8 = 0x1c;
    pub const DEPTH_FUNC: u8 = 0x1d;
    pub const DEPTH_MASK: u8 = 0x1e;
    pub const CLEAR_COLOR: u8 = 0x1f;
    pub const CLEAR_DEPTH: u8 = 0x20;
    pub const VIEWPORT: u8 = 0x21;
    pub const SCISSOR: u8 = 0x22;
    pub const UNIFORM: u8 = 0x23;
    pub const ENABLE_VERTEX_ATTRIB: u8 = 0x24;
    pub const DISABLE_VERTEX_ATTRIB: u8 = 0x25;
    pub const VERTEX_ATTRIB_POINTER_BUF: u8 = 0x26;
    pub const VERTEX_ATTRIB_POINTER_MAT: u8 = 0x27;
    pub const CLEAR: u8 = 0x28;
    pub const DRAW_ARRAYS: u8 = 0x29;
    pub const DRAW_ELEMENTS_BUF: u8 = 0x2a;
    pub const DRAW_ELEMENTS_INLINE: u8 = 0x2b;
    pub const FINISH: u8 = 0x2c;
    pub const FLUSH: u8 = 0x2d;
    pub const SWAP_BUFFERS: u8 = 0x2e;
}

/// Encodes one command onto `out`.
///
/// # Errors
///
/// Returns [`WireError::UnresolvedPointer`] if the command still holds a
/// [`VertexSource::ClientMemory`] pointer — run it through a
/// [`DeferredResolver`] first.
pub fn encode_command(cmd: &GlCommand, out: &mut Vec<u8>) -> Result<(), WireError> {
    match cmd {
        GlCommand::GenTexture(id) => {
            put_u8(out, op::GEN_TEXTURE);
            put_u32(out, id.raw());
        }
        GlCommand::DeleteTexture(id) => {
            put_u8(out, op::DELETE_TEXTURE);
            put_u32(out, id.raw());
        }
        GlCommand::GenBuffer(id) => {
            put_u8(out, op::GEN_BUFFER);
            put_u32(out, id.raw());
        }
        GlCommand::DeleteBuffer(id) => {
            put_u8(out, op::DELETE_BUFFER);
            put_u32(out, id.raw());
        }
        GlCommand::GenFramebuffer(id) => {
            put_u8(out, op::GEN_FRAMEBUFFER);
            put_u32(out, id.raw());
        }
        GlCommand::DeleteFramebuffer(id) => {
            put_u8(out, op::DELETE_FRAMEBUFFER);
            put_u32(out, id.raw());
        }
        GlCommand::CreateShader(id, kind) => {
            put_u8(out, op::CREATE_SHADER);
            put_u32(out, id.raw());
            put_u8(out, shader_kind_byte(*kind));
        }
        GlCommand::ShaderSource { shader, source } => {
            put_u8(out, op::SHADER_SOURCE);
            put_u32(out, shader.raw());
            put_bytes(out, source.as_bytes());
        }
        GlCommand::CompileShader(id) => {
            put_u8(out, op::COMPILE_SHADER);
            put_u32(out, id.raw());
        }
        GlCommand::DeleteShader(id) => {
            put_u8(out, op::DELETE_SHADER);
            put_u32(out, id.raw());
        }
        GlCommand::CreateProgram(id) => {
            put_u8(out, op::CREATE_PROGRAM);
            put_u32(out, id.raw());
        }
        GlCommand::AttachShader { program, shader } => {
            put_u8(out, op::ATTACH_SHADER);
            put_u32(out, program.raw());
            put_u32(out, shader.raw());
        }
        GlCommand::LinkProgram(id) => {
            put_u8(out, op::LINK_PROGRAM);
            put_u32(out, id.raw());
        }
        GlCommand::UseProgram(id) => {
            put_u8(out, op::USE_PROGRAM);
            put_u32(out, id.raw());
        }
        GlCommand::DeleteProgram(id) => {
            put_u8(out, op::DELETE_PROGRAM);
            put_u32(out, id.raw());
        }
        GlCommand::BindBuffer { target, buffer } => {
            put_u8(out, op::BIND_BUFFER);
            put_u8(out, buffer_target_byte(*target));
            put_u32(out, buffer.raw());
        }
        GlCommand::BufferData {
            target,
            data,
            usage,
        } => {
            put_u8(out, op::BUFFER_DATA);
            put_u8(out, buffer_target_byte(*target));
            put_u8(out, usage_byte(*usage));
            put_bytes(out, data);
        }
        GlCommand::BufferSubData {
            target,
            offset,
            data,
        } => {
            put_u8(out, op::BUFFER_SUB_DATA);
            put_u8(out, buffer_target_byte(*target));
            put_u32(out, *offset);
            put_bytes(out, data);
        }
        GlCommand::ActiveTexture(unit) => {
            put_u8(out, op::ACTIVE_TEXTURE);
            put_u32(out, *unit);
        }
        GlCommand::BindTexture { target, texture } => {
            put_u8(out, op::BIND_TEXTURE);
            put_u8(out, tex_target_byte(*target));
            put_u32(out, texture.raw());
        }
        GlCommand::TexImage2D {
            target,
            level,
            format,
            width,
            height,
            data,
        } => {
            put_u8(out, op::TEX_IMAGE_2D);
            put_u8(out, tex_target_byte(*target));
            put_u8(out, *level);
            put_u8(out, pixel_format_byte(*format));
            put_u32(out, *width);
            put_u32(out, *height);
            put_bytes(out, data);
        }
        GlCommand::TexSubImage2D {
            target,
            level,
            x,
            y,
            width,
            height,
            format,
            data,
        } => {
            put_u8(out, op::TEX_SUB_IMAGE_2D);
            put_u8(out, tex_target_byte(*target));
            put_u8(out, *level);
            put_u32(out, *x);
            put_u32(out, *y);
            put_u32(out, *width);
            put_u32(out, *height);
            put_u8(out, pixel_format_byte(*format));
            put_bytes(out, data);
        }
        GlCommand::TexParameter { target, param } => {
            put_u8(out, op::TEX_PARAMETER);
            put_u8(out, tex_target_byte(*target));
            tex_param_encode(out, *param);
        }
        GlCommand::BindFramebuffer(id) => {
            put_u8(out, op::BIND_FRAMEBUFFER);
            put_u32(out, id.raw());
        }
        GlCommand::FramebufferTexture2D { texture } => {
            put_u8(out, op::FRAMEBUFFER_TEXTURE_2D);
            put_u32(out, texture.raw());
        }
        GlCommand::Enable(cap) => {
            put_u8(out, op::ENABLE);
            put_u8(out, capability_byte(*cap));
        }
        GlCommand::Disable(cap) => {
            put_u8(out, op::DISABLE);
            put_u8(out, capability_byte(*cap));
        }
        GlCommand::BlendFunc { src, dst } => {
            put_u8(out, op::BLEND_FUNC);
            put_u8(out, blend_byte(*src));
            put_u8(out, blend_byte(*dst));
        }
        GlCommand::DepthFunc(fun) => {
            put_u8(out, op::DEPTH_FUNC);
            put_u8(out, depth_func_byte(*fun));
        }
        GlCommand::DepthMask(m) => {
            put_u8(out, op::DEPTH_MASK);
            put_u8(out, *m as u8);
        }
        GlCommand::ClearColor { r, g, b, a } => {
            put_u8(out, op::CLEAR_COLOR);
            put_f32(out, *r);
            put_f32(out, *g);
            put_f32(out, *b);
            put_f32(out, *a);
        }
        GlCommand::ClearDepth(d) => {
            put_u8(out, op::CLEAR_DEPTH);
            put_f32(out, *d);
        }
        GlCommand::Viewport {
            x,
            y,
            width,
            height,
        } => {
            put_u8(out, op::VIEWPORT);
            put_i32(out, *x);
            put_i32(out, *y);
            put_u32(out, *width);
            put_u32(out, *height);
        }
        GlCommand::Scissor {
            x,
            y,
            width,
            height,
        } => {
            put_u8(out, op::SCISSOR);
            put_i32(out, *x);
            put_i32(out, *y);
            put_u32(out, *width);
            put_u32(out, *height);
        }
        GlCommand::Uniform { location, value } => {
            put_u8(out, op::UNIFORM);
            put_u32(out, location.raw());
            uniform_encode(out, value);
        }
        GlCommand::EnableVertexAttribArray(i) => {
            put_u8(out, op::ENABLE_VERTEX_ATTRIB);
            put_u32(out, *i);
        }
        GlCommand::DisableVertexAttribArray(i) => {
            put_u8(out, op::DISABLE_VERTEX_ATTRIB);
            put_u32(out, *i);
        }
        GlCommand::VertexAttribPointer {
            index,
            size,
            ty,
            normalized,
            stride,
            source,
        } => match source {
            VertexSource::BufferOffset(off) => {
                put_u8(out, op::VERTEX_ATTRIB_POINTER_BUF);
                put_u32(out, *index);
                put_u8(out, *size);
                put_u8(out, attrib_type_byte(*ty));
                put_u8(out, *normalized as u8);
                put_u32(out, *stride);
                put_u32(out, *off);
            }
            VertexSource::Materialized(data) => {
                put_u8(out, op::VERTEX_ATTRIB_POINTER_MAT);
                put_u32(out, *index);
                put_u8(out, *size);
                put_u8(out, attrib_type_byte(*ty));
                put_u8(out, *normalized as u8);
                put_u32(out, *stride);
                put_bytes(out, data);
            }
            VertexSource::ClientMemory(_) => return Err(WireError::UnresolvedPointer),
        },
        GlCommand::Clear(mask) => {
            put_u8(out, op::CLEAR);
            let bits = (mask.color as u8) | ((mask.depth as u8) << 1) | ((mask.stencil as u8) << 2);
            put_u8(out, bits);
        }
        GlCommand::DrawArrays { mode, first, count } => {
            put_u8(out, op::DRAW_ARRAYS);
            put_u8(out, primitive_byte(*mode));
            put_u32(out, *first);
            put_u32(out, *count);
        }
        GlCommand::DrawElements {
            mode,
            count,
            index_type,
            indices,
        } => match indices {
            IndexSource::BufferOffset(off) => {
                put_u8(out, op::DRAW_ELEMENTS_BUF);
                put_u8(out, primitive_byte(*mode));
                put_u32(out, *count);
                put_u8(out, index_type_byte(*index_type));
                put_u32(out, *off);
            }
            IndexSource::Inline(data) => {
                put_u8(out, op::DRAW_ELEMENTS_INLINE);
                put_u8(out, primitive_byte(*mode));
                put_u32(out, *count);
                put_u8(out, index_type_byte(*index_type));
                put_bytes(out, data);
            }
        },
        GlCommand::Finish => put_u8(out, op::FINISH),
        GlCommand::Flush => put_u8(out, op::FLUSH),
        GlCommand::SwapBuffers => put_u8(out, op::SWAP_BUFFERS),
    }
    Ok(())
}

/// Decodes a single command from `data`, returning it and the bytes
/// consumed.
///
/// # Errors
///
/// Returns a [`WireError`] on truncation or malformed fields.
pub fn decode_command(data: &[u8]) -> Result<(GlCommand, usize), WireError> {
    let mut r = Reader::new(data);
    let opcode = r.u8()?;
    let cmd = match opcode {
        op::GEN_TEXTURE => GlCommand::GenTexture(TextureId(r.u32()?)),
        op::DELETE_TEXTURE => GlCommand::DeleteTexture(TextureId(r.u32()?)),
        op::GEN_BUFFER => GlCommand::GenBuffer(BufferId(r.u32()?)),
        op::DELETE_BUFFER => GlCommand::DeleteBuffer(BufferId(r.u32()?)),
        op::GEN_FRAMEBUFFER => GlCommand::GenFramebuffer(FramebufferId(r.u32()?)),
        op::DELETE_FRAMEBUFFER => GlCommand::DeleteFramebuffer(FramebufferId(r.u32()?)),
        op::CREATE_SHADER => {
            let id = ShaderId(r.u32()?);
            let kind = shader_kind_from(r.u8()?)?;
            GlCommand::CreateShader(id, kind)
        }
        op::SHADER_SOURCE => {
            let shader = ShaderId(r.u32()?);
            let source = String::from_utf8(r.bytes()?).map_err(|_| WireError::BadUtf8)?;
            GlCommand::ShaderSource { shader, source }
        }
        op::COMPILE_SHADER => GlCommand::CompileShader(ShaderId(r.u32()?)),
        op::DELETE_SHADER => GlCommand::DeleteShader(ShaderId(r.u32()?)),
        op::CREATE_PROGRAM => GlCommand::CreateProgram(ProgramId(r.u32()?)),
        op::ATTACH_SHADER => GlCommand::AttachShader {
            program: ProgramId(r.u32()?),
            shader: ShaderId(r.u32()?),
        },
        op::LINK_PROGRAM => GlCommand::LinkProgram(ProgramId(r.u32()?)),
        op::USE_PROGRAM => GlCommand::UseProgram(ProgramId(r.u32()?)),
        op::DELETE_PROGRAM => GlCommand::DeleteProgram(ProgramId(r.u32()?)),
        op::BIND_BUFFER => GlCommand::BindBuffer {
            target: buffer_target_from(r.u8()?)?,
            buffer: BufferId(r.u32()?),
        },
        op::BUFFER_DATA => {
            let target = buffer_target_from(r.u8()?)?;
            let usage = usage_from(r.u8()?)?;
            let data = Arc::new(r.bytes()?);
            GlCommand::BufferData {
                target,
                data,
                usage,
            }
        }
        op::BUFFER_SUB_DATA => {
            let target = buffer_target_from(r.u8()?)?;
            let offset = r.u32()?;
            let data = Arc::new(r.bytes()?);
            GlCommand::BufferSubData {
                target,
                offset,
                data,
            }
        }
        op::ACTIVE_TEXTURE => GlCommand::ActiveTexture(r.u32()?),
        op::BIND_TEXTURE => GlCommand::BindTexture {
            target: tex_target_from(r.u8()?)?,
            texture: TextureId(r.u32()?),
        },
        op::TEX_IMAGE_2D => {
            let target = tex_target_from(r.u8()?)?;
            let level = r.u8()?;
            let format = pixel_format_from(r.u8()?)?;
            let width = r.u32()?;
            let height = r.u32()?;
            let data = Arc::new(r.bytes()?);
            GlCommand::TexImage2D {
                target,
                level,
                format,
                width,
                height,
                data,
            }
        }
        op::TEX_SUB_IMAGE_2D => {
            let target = tex_target_from(r.u8()?)?;
            let level = r.u8()?;
            let x = r.u32()?;
            let y = r.u32()?;
            let width = r.u32()?;
            let height = r.u32()?;
            let format = pixel_format_from(r.u8()?)?;
            let data = Arc::new(r.bytes()?);
            GlCommand::TexSubImage2D {
                target,
                level,
                x,
                y,
                width,
                height,
                format,
                data,
            }
        }
        op::TEX_PARAMETER => GlCommand::TexParameter {
            target: tex_target_from(r.u8()?)?,
            param: tex_param_decode(&mut r)?,
        },
        op::BIND_FRAMEBUFFER => GlCommand::BindFramebuffer(FramebufferId(r.u32()?)),
        op::FRAMEBUFFER_TEXTURE_2D => GlCommand::FramebufferTexture2D {
            texture: TextureId(r.u32()?),
        },
        op::ENABLE => GlCommand::Enable(capability_from(r.u8()?)?),
        op::DISABLE => GlCommand::Disable(capability_from(r.u8()?)?),
        op::BLEND_FUNC => GlCommand::BlendFunc {
            src: blend_from(r.u8()?)?,
            dst: blend_from(r.u8()?)?,
        },
        op::DEPTH_FUNC => GlCommand::DepthFunc(depth_func_from(r.u8()?)?),
        op::DEPTH_MASK => GlCommand::DepthMask(r.bool()?),
        op::CLEAR_COLOR => GlCommand::ClearColor {
            r: r.f32()?,
            g: r.f32()?,
            b: r.f32()?,
            a: r.f32()?,
        },
        op::CLEAR_DEPTH => GlCommand::ClearDepth(r.f32()?),
        op::VIEWPORT => GlCommand::Viewport {
            x: r.i32()?,
            y: r.i32()?,
            width: r.u32()?,
            height: r.u32()?,
        },
        op::SCISSOR => GlCommand::Scissor {
            x: r.i32()?,
            y: r.i32()?,
            width: r.u32()?,
            height: r.u32()?,
        },
        op::UNIFORM => GlCommand::Uniform {
            location: UniformLocation(r.u32()?),
            value: uniform_decode(&mut r)?,
        },
        op::ENABLE_VERTEX_ATTRIB => GlCommand::EnableVertexAttribArray(r.u32()?),
        op::DISABLE_VERTEX_ATTRIB => GlCommand::DisableVertexAttribArray(r.u32()?),
        op::VERTEX_ATTRIB_POINTER_BUF => {
            let index = r.u32()?;
            let size = r.u8()?;
            let ty = attrib_type_from(r.u8()?)?;
            let normalized = r.bool()?;
            let stride = r.u32()?;
            let off = r.u32()?;
            GlCommand::VertexAttribPointer {
                index,
                size,
                ty,
                normalized,
                stride,
                source: VertexSource::BufferOffset(off),
            }
        }
        op::VERTEX_ATTRIB_POINTER_MAT => {
            let index = r.u32()?;
            let size = r.u8()?;
            let ty = attrib_type_from(r.u8()?)?;
            let normalized = r.bool()?;
            let stride = r.u32()?;
            let data = Arc::new(r.bytes()?);
            GlCommand::VertexAttribPointer {
                index,
                size,
                ty,
                normalized,
                stride,
                source: VertexSource::Materialized(data),
            }
        }
        op::CLEAR => {
            let bits = r.u8()?;
            GlCommand::Clear(ClearMask {
                color: bits & 1 != 0,
                depth: bits & 2 != 0,
                stencil: bits & 4 != 0,
            })
        }
        op::DRAW_ARRAYS => GlCommand::DrawArrays {
            mode: primitive_from(r.u8()?)?,
            first: r.u32()?,
            count: r.u32()?,
        },
        op::DRAW_ELEMENTS_BUF => {
            let mode = primitive_from(r.u8()?)?;
            let count = r.u32()?;
            let index_type = index_type_from(r.u8()?)?;
            let off = r.u32()?;
            GlCommand::DrawElements {
                mode,
                count,
                index_type,
                indices: IndexSource::BufferOffset(off),
            }
        }
        op::DRAW_ELEMENTS_INLINE => {
            let mode = primitive_from(r.u8()?)?;
            let count = r.u32()?;
            let index_type = index_type_from(r.u8()?)?;
            let data = Arc::new(r.bytes()?);
            GlCommand::DrawElements {
                mode,
                count,
                index_type,
                indices: IndexSource::Inline(data),
            }
        }
        op::FINISH => GlCommand::Finish,
        op::FLUSH => GlCommand::Flush,
        op::SWAP_BUFFERS => GlCommand::SwapBuffers,
        other => return Err(WireError::BadOpcode(other)),
    };
    Ok((cmd, r.pos))
}

/// Encodes a whole command sequence.
///
/// # Errors
///
/// Fails on the first command that cannot be encoded.
pub fn encode_stream(cmds: &[GlCommand]) -> Result<Vec<u8>, WireError> {
    gbooster_telemetry::prof_scope!(gbooster_telemetry::names::host::GLES_ENCODE);
    let mut out = Vec::new();
    for cmd in cmds {
        encode_command(cmd, &mut out)?;
    }
    Ok(out)
}

/// Decodes a whole command sequence.
///
/// # Errors
///
/// Fails on truncated or malformed input.
pub fn decode_stream(data: &[u8]) -> Result<Vec<GlCommand>, WireError> {
    gbooster_telemetry::prof_scope!(gbooster_telemetry::names::host::GLES_DECODE);
    let mut out = Vec::new();
    let mut r = Reader::new(data);
    while !r.is_empty() {
        let (cmd, used) = decode_command(&data[r.pos..])?;
        r.pos += used;
        out.push(cmd);
    }
    Ok(out)
}

/// The attribution categories [`command_category`] can return, sorted.
pub const CATEGORIES: [&str; 10] = [
    "buffer",
    "draw",
    "frame",
    "framebuffer",
    "object",
    "shader",
    "state",
    "texture",
    "uniform",
    "vertex",
];

/// Coarse GL command category used by the uplink attribution profiler
/// to explain which part of the API surface the wire bytes serve.
pub fn command_category(cmd: &GlCommand) -> &'static str {
    match cmd {
        GlCommand::GenTexture(_)
        | GlCommand::DeleteTexture(_)
        | GlCommand::GenBuffer(_)
        | GlCommand::DeleteBuffer(_)
        | GlCommand::GenFramebuffer(_)
        | GlCommand::DeleteFramebuffer(_)
        | GlCommand::CreateShader(..)
        | GlCommand::DeleteShader(_)
        | GlCommand::CreateProgram(_)
        | GlCommand::DeleteProgram(_)
        | GlCommand::AttachShader { .. } => "object",
        GlCommand::ShaderSource { .. }
        | GlCommand::CompileShader(_)
        | GlCommand::LinkProgram(_)
        | GlCommand::UseProgram(_) => "shader",
        GlCommand::BindBuffer { .. }
        | GlCommand::BufferData { .. }
        | GlCommand::BufferSubData { .. } => "buffer",
        GlCommand::ActiveTexture(_)
        | GlCommand::BindTexture { .. }
        | GlCommand::TexImage2D { .. }
        | GlCommand::TexSubImage2D { .. }
        | GlCommand::TexParameter { .. } => "texture",
        GlCommand::BindFramebuffer(_) | GlCommand::FramebufferTexture2D { .. } => "framebuffer",
        GlCommand::Enable(_)
        | GlCommand::Disable(_)
        | GlCommand::BlendFunc { .. }
        | GlCommand::DepthFunc(_)
        | GlCommand::DepthMask(_)
        | GlCommand::ClearColor { .. }
        | GlCommand::ClearDepth(_)
        | GlCommand::Viewport { .. }
        | GlCommand::Scissor { .. } => "state",
        GlCommand::Uniform { .. } => "uniform",
        GlCommand::EnableVertexAttribArray(_)
        | GlCommand::DisableVertexAttribArray(_)
        | GlCommand::VertexAttribPointer { .. } => "vertex",
        GlCommand::Clear(_) | GlCommand::DrawArrays { .. } | GlCommand::DrawElements { .. } => {
            "draw"
        }
        GlCommand::Finish | GlCommand::Flush | GlCommand::SwapBuffers => "frame",
    }
}

/// Resolves deferred client-memory pointers (Section IV-B).
///
/// Commands flow through [`DeferredResolver::push`]; `VertexAttribPointer`
/// commands that reference client memory are *held*, and released —
/// materialized with exact lengths — immediately before the draw call that
/// reveals how many vertices they cover.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use gbooster_gles::command::{ClientMemory, GlCommand, VertexSource};
/// use gbooster_gles::exec::pack_f32;
/// use gbooster_gles::serialize::DeferredResolver;
/// use gbooster_gles::types::{AttribType, Primitive};
///
/// let mut mem = ClientMemory::new();
/// let ptr = mem.alloc(pack_f32(&[0.0; 6]));
/// let mut resolver = DeferredResolver::new();
/// let held = resolver.push(
///     GlCommand::VertexAttribPointer {
///         index: 0, size: 2, ty: AttribType::F32,
///         normalized: false, stride: 0,
///         source: VertexSource::ClientMemory(ptr),
///     },
///     &mem,
/// )?;
/// assert!(held.is_empty(), "pointer command is deferred");
/// let released = resolver.push(
///     GlCommand::DrawArrays { mode: Primitive::Triangles, first: 0, count: 3 },
///     &mem,
/// )?;
/// assert_eq!(released.len(), 2, "pointer released just before the draw");
/// # Ok::<(), gbooster_gles::serialize::WireError>(())
/// ```
#[derive(Debug, Default)]
pub struct DeferredResolver {
    /// Held `VertexAttribPointer` commands by attribute index.
    held: HashMap<u32, GlCommand>,
    /// Shadow copy of element-array buffers, to size `DrawElements`.
    element_buffers: HashMap<u32, Arc<Vec<u8>>>,
    bound_element: BufferId,
}

impl DeferredResolver {
    /// Creates an empty resolver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of commands currently deferred.
    pub fn pending(&self) -> usize {
        self.held.len()
    }

    /// Pushes one intercepted command; returns the command(s) now ready
    /// for serialization, in order.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::ClientRead`] if a held pointer cannot be
    /// materialized when its draw arrives.
    pub fn push(
        &mut self,
        cmd: GlCommand,
        mem: &ClientMemory,
    ) -> Result<Vec<GlCommand>, WireError> {
        // Shadow the element-buffer state needed to size DrawElements.
        match &cmd {
            GlCommand::BindBuffer {
                target: BufferTarget::ElementArray,
                buffer,
            } => {
                self.bound_element = *buffer;
            }
            GlCommand::BufferData {
                target: BufferTarget::ElementArray,
                data,
                ..
            } if !self.bound_element.is_null() => {
                self.element_buffers
                    .insert(self.bound_element.raw(), Arc::clone(data));
            }
            _ => {}
        }

        match cmd {
            GlCommand::VertexAttribPointer {
                index, ref source, ..
            } if matches!(source, VertexSource::ClientMemory(_)) => {
                // Defer: transmission postponed until a draw reveals size.
                self.held.insert(index, cmd);
                Ok(Vec::new())
            }
            GlCommand::VertexAttribPointer { index, .. } => {
                // A new buffer-backed pointer supersedes any held one.
                self.held.remove(&index);
                Ok(vec![cmd])
            }
            GlCommand::DrawArrays { first, count, .. } => {
                let mut out = self.release_held(first + count, mem)?;
                out.push(cmd);
                Ok(out)
            }
            GlCommand::DrawElements {
                count,
                index_type,
                ref indices,
                ..
            } => {
                let max_index = self.max_index(count, index_type, indices)?;
                let mut out = self.release_held(max_index + 1, mem)?;
                out.push(cmd);
                Ok(out)
            }
            other => Ok(vec![other]),
        }
    }

    /// Materializes every held pointer for `vertex_count` vertices and
    /// returns them (insertion order is irrelevant — all precede the draw).
    fn release_held(
        &mut self,
        vertex_count: u32,
        mem: &ClientMemory,
    ) -> Result<Vec<GlCommand>, WireError> {
        if self.held.is_empty() {
            return Ok(Vec::new());
        }
        let mut indices: Vec<u32> = self.held.keys().copied().collect();
        indices.sort_unstable();
        let mut out = Vec::with_capacity(indices.len());
        for i in indices {
            let cmd = self.held.remove(&i).expect("key just listed");
            let GlCommand::VertexAttribPointer {
                index,
                size,
                ty,
                normalized,
                stride,
                source: VertexSource::ClientMemory(ptr),
            } = cmd
            else {
                unreachable!("held map only stores client-memory pointers");
            };
            let elem = size as u32 * ty.size() as u32;
            let effective_stride = if stride == 0 { elem } else { stride };
            // Exact bytes referenced by vertex_count vertices.
            let len = if vertex_count == 0 {
                0
            } else {
                ((vertex_count - 1) * effective_stride + elem) as usize
            };
            let data = mem
                .read(ptr, len)
                .map_err(|e| WireError::ClientRead(e.to_string()))?
                .to_vec();
            out.push(GlCommand::VertexAttribPointer {
                index,
                size,
                ty,
                normalized,
                stride,
                source: VertexSource::Materialized(Arc::new(data)),
            });
        }
        Ok(out)
    }

    fn max_index(&self, count: u32, ty: IndexType, src: &IndexSource) -> Result<u32, WireError> {
        let bytes: &[u8] = match src {
            IndexSource::Inline(data) => data,
            IndexSource::BufferOffset(off) => {
                let buf = self
                    .element_buffers
                    .get(&self.bound_element.raw())
                    .ok_or_else(|| WireError::ClientRead("element buffer not shadowed".into()))?;
                buf.get(*off as usize..).ok_or_else(|| {
                    WireError::ClientRead("index offset past element buffer".into())
                })?
            }
        };
        let needed = count as usize * ty.size();
        if bytes.len() < needed {
            return Err(WireError::ClientRead(format!(
                "index data {} bytes, need {needed}",
                bytes.len()
            )));
        }
        let mut max = 0u32;
        for i in 0..count as usize {
            let v = match ty {
                IndexType::U8 => bytes[i] as u32,
                IndexType::U16 => u16::from_le_bytes([bytes[2 * i], bytes[2 * i + 1]]) as u32,
            };
            max = max.max(v);
        }
        Ok(max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::ClientPtr;
    use crate::exec::pack_f32;

    fn roundtrip(cmd: GlCommand) {
        let mut buf = Vec::new();
        encode_command(&cmd, &mut buf).unwrap();
        let (decoded, used) = decode_command(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(decoded, cmd);
    }

    #[test]
    fn command_categories_are_declared_and_sorted() {
        let mut sorted = CATEGORIES;
        sorted.sort_unstable();
        assert_eq!(sorted, CATEGORIES, "CATEGORIES must stay sorted");
        for cmd in [
            GlCommand::GenTexture(TextureId(1)),
            GlCommand::UseProgram(ProgramId(1)),
            GlCommand::BindBuffer {
                target: BufferTarget::Array,
                buffer: BufferId(1),
            },
            GlCommand::ActiveTexture(0),
            GlCommand::BindFramebuffer(FramebufferId(0)),
            GlCommand::Enable(Capability::Blend),
            GlCommand::Uniform {
                location: UniformLocation(0),
                value: UniformValue::F1(1.0),
            },
            GlCommand::EnableVertexAttribArray(0),
            GlCommand::clear_all(),
            GlCommand::SwapBuffers,
        ] {
            let cat = command_category(&cmd);
            assert!(CATEGORIES.contains(&cat), "{cat} missing from CATEGORIES");
        }
    }

    #[test]
    fn roundtrip_simple_commands() {
        roundtrip(GlCommand::GenTexture(TextureId(42)));
        roundtrip(GlCommand::UseProgram(ProgramId(7)));
        roundtrip(GlCommand::ActiveTexture(3));
        roundtrip(GlCommand::Enable(Capability::DepthTest));
        roundtrip(GlCommand::Finish);
        roundtrip(GlCommand::SwapBuffers);
        roundtrip(GlCommand::DepthMask(false));
    }

    #[test]
    fn roundtrip_commands_with_floats() {
        roundtrip(GlCommand::ClearColor {
            r: 0.25,
            g: -1.5,
            b: 1e10,
            a: 0.0,
        });
        roundtrip(GlCommand::ClearDepth(0.5));
        roundtrip(GlCommand::Uniform {
            location: UniformLocation(9),
            value: UniformValue::Mat4([1.5; 16]),
        });
        roundtrip(GlCommand::Uniform {
            location: UniformLocation(2),
            value: UniformValue::F3([0.1, 0.2, 0.3]),
        });
    }

    #[test]
    fn roundtrip_bulk_data_commands() {
        roundtrip(GlCommand::BufferData {
            target: BufferTarget::Array,
            data: Arc::new((0..=255).collect()),
            usage: BufferUsage::StreamDraw,
        });
        roundtrip(GlCommand::TexImage2D {
            target: TextureTarget::Texture2D,
            level: 2,
            format: PixelFormat::Rgb565,
            width: 16,
            height: 8,
            data: Arc::new(vec![0xAB; 256]),
        });
        roundtrip(GlCommand::ShaderSource {
            shader: ShaderId(1),
            source: "precision mediump float; void main() {}".into(),
        });
    }

    #[test]
    fn roundtrip_draw_and_pointer_commands() {
        roundtrip(GlCommand::DrawArrays {
            mode: Primitive::TriangleFan,
            first: 3,
            count: 12,
        });
        roundtrip(GlCommand::DrawElements {
            mode: Primitive::Triangles,
            count: 6,
            index_type: IndexType::U16,
            indices: IndexSource::Inline(Arc::new(vec![0, 0, 1, 0, 2, 0])),
        });
        roundtrip(GlCommand::VertexAttribPointer {
            index: 2,
            size: 3,
            ty: AttribType::F32,
            normalized: true,
            stride: 24,
            source: VertexSource::Materialized(Arc::new(vec![1, 2, 3, 4])),
        });
        roundtrip(GlCommand::VertexAttribPointer {
            index: 0,
            size: 2,
            ty: AttribType::I16,
            normalized: false,
            stride: 0,
            source: VertexSource::BufferOffset(128),
        });
    }

    #[test]
    fn stream_roundtrip_preserves_order() {
        let cmds = vec![
            GlCommand::CreateProgram(ProgramId(1)),
            GlCommand::LinkProgram(ProgramId(1)),
            GlCommand::UseProgram(ProgramId(1)),
            GlCommand::clear_all(),
            GlCommand::SwapBuffers,
        ];
        let bytes = encode_stream(&cmds).unwrap();
        let back = decode_stream(&bytes).unwrap();
        assert_eq!(back, cmds);
    }

    #[test]
    fn unresolved_pointer_cannot_be_encoded() {
        let cmd = GlCommand::VertexAttribPointer {
            index: 0,
            size: 2,
            ty: AttribType::F32,
            normalized: false,
            stride: 0,
            source: VertexSource::ClientMemory(ClientPtr(0x1000)),
        };
        let mut out = Vec::new();
        assert_eq!(
            encode_command(&cmd, &mut out),
            Err(WireError::UnresolvedPointer)
        );
    }

    #[test]
    fn truncated_input_is_detected() {
        let mut buf = Vec::new();
        encode_command(
            &GlCommand::ClearColor {
                r: 1.0,
                g: 1.0,
                b: 1.0,
                a: 1.0,
            },
            &mut buf,
        )
        .unwrap();
        for cut in 1..buf.len() {
            assert!(decode_command(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn unknown_opcode_is_rejected() {
        assert_eq!(decode_command(&[0xff]), Err(WireError::BadOpcode(0xff)));
    }

    #[test]
    fn resolver_defers_until_draw_arrays() {
        let mut mem = ClientMemory::new();
        // 6 vertices x 2 f32 = 48 bytes; draw only uses first 3.
        let ptr = mem.alloc(pack_f32(&[0.0; 12]));
        let mut resolver = DeferredResolver::new();
        let held = resolver
            .push(
                GlCommand::VertexAttribPointer {
                    index: 0,
                    size: 2,
                    ty: AttribType::F32,
                    normalized: false,
                    stride: 0,
                    source: VertexSource::ClientMemory(ptr),
                },
                &mem,
            )
            .unwrap();
        assert!(held.is_empty());
        assert_eq!(resolver.pending(), 1);
        let out = resolver
            .push(
                GlCommand::DrawArrays {
                    mode: Primitive::Triangles,
                    first: 0,
                    count: 3,
                },
                &mem,
            )
            .unwrap();
        assert_eq!(out.len(), 2);
        let GlCommand::VertexAttribPointer {
            source: VertexSource::Materialized(data),
            ..
        } = &out[0]
        else {
            panic!("expected materialized pointer, got {:?}", out[0]);
        };
        assert_eq!(data.len(), 24, "3 vertices x 8 bytes");
        assert!(out[1].is_draw());
        assert_eq!(resolver.pending(), 0);
    }

    #[test]
    fn resolver_sizes_draw_elements_from_max_index() {
        let mut mem = ClientMemory::new();
        let ptr = mem.alloc(pack_f32(&[0.0; 20])); // 10 verts x 2 f32
        let mut resolver = DeferredResolver::new();
        resolver
            .push(
                GlCommand::VertexAttribPointer {
                    index: 0,
                    size: 2,
                    ty: AttribType::F32,
                    normalized: false,
                    stride: 0,
                    source: VertexSource::ClientMemory(ptr),
                },
                &mem,
            )
            .unwrap();
        // Indices reference up to vertex 7 -> 8 vertices needed.
        let out = resolver
            .push(
                GlCommand::DrawElements {
                    mode: Primitive::Triangles,
                    count: 3,
                    index_type: IndexType::U8,
                    indices: IndexSource::Inline(Arc::new(vec![0, 7, 3])),
                },
                &mem,
            )
            .unwrap();
        let GlCommand::VertexAttribPointer {
            source: VertexSource::Materialized(data),
            ..
        } = &out[0]
        else {
            panic!("expected materialized pointer");
        };
        assert_eq!(data.len(), 64, "8 vertices x 8 bytes");
    }

    #[test]
    fn resolver_shadow_tracks_element_buffer() {
        let mut mem = ClientMemory::new();
        let ptr = mem.alloc(pack_f32(&[0.0; 8]));
        let mut resolver = DeferredResolver::new();
        resolver
            .push(GlCommand::GenBuffer(BufferId(5)), &mem)
            .unwrap();
        resolver
            .push(
                GlCommand::BindBuffer {
                    target: BufferTarget::ElementArray,
                    buffer: BufferId(5),
                },
                &mem,
            )
            .unwrap();
        resolver
            .push(
                GlCommand::BufferData {
                    target: BufferTarget::ElementArray,
                    data: Arc::new(vec![0u8, 1, 2]),
                    usage: BufferUsage::StaticDraw,
                },
                &mem,
            )
            .unwrap();
        resolver
            .push(
                GlCommand::VertexAttribPointer {
                    index: 0,
                    size: 2,
                    ty: AttribType::F32,
                    normalized: false,
                    stride: 0,
                    source: VertexSource::ClientMemory(ptr),
                },
                &mem,
            )
            .unwrap();
        let out = resolver
            .push(
                GlCommand::DrawElements {
                    mode: Primitive::Triangles,
                    count: 3,
                    index_type: IndexType::U8,
                    indices: IndexSource::BufferOffset(0),
                },
                &mem,
            )
            .unwrap();
        let GlCommand::VertexAttribPointer {
            source: VertexSource::Materialized(data),
            ..
        } = &out[0]
        else {
            panic!("expected materialized pointer");
        };
        assert_eq!(data.len(), 24, "max index 2 -> 3 vertices x 8 bytes");
    }

    #[test]
    fn resolver_passes_other_commands_through() {
        let mem = ClientMemory::new();
        let mut resolver = DeferredResolver::new();
        let out = resolver
            .push(GlCommand::Enable(Capability::Blend), &mem)
            .unwrap();
        assert_eq!(out, vec![GlCommand::Enable(Capability::Blend)]);
    }

    #[test]
    fn resolver_reports_dangling_pointer_at_draw_time() {
        let mem = ClientMemory::new();
        let mut resolver = DeferredResolver::new();
        resolver
            .push(
                GlCommand::VertexAttribPointer {
                    index: 0,
                    size: 2,
                    ty: AttribType::F32,
                    normalized: false,
                    stride: 0,
                    source: VertexSource::ClientMemory(ClientPtr(0xdead)),
                },
                &mem,
            )
            .unwrap();
        let err = resolver
            .push(
                GlCommand::DrawArrays {
                    mode: Primitive::Triangles,
                    first: 0,
                    count: 3,
                },
                &mem,
            )
            .unwrap_err();
        assert!(matches!(err, WireError::ClientRead(_)));
    }

    #[test]
    fn resolver_respects_stride_in_length_formula() {
        let mut mem = ClientMemory::new();
        // Interleaved: stride 20, last vertex needs only 8 bytes.
        // 3 vertices: 2*20 + 8 = 48 bytes exactly.
        let ptr = mem.alloc(vec![0u8; 48]);
        let mut resolver = DeferredResolver::new();
        resolver
            .push(
                GlCommand::VertexAttribPointer {
                    index: 0,
                    size: 2,
                    ty: AttribType::F32,
                    normalized: false,
                    stride: 20,
                    source: VertexSource::ClientMemory(ptr),
                },
                &mem,
            )
            .unwrap();
        let out = resolver
            .push(
                GlCommand::DrawArrays {
                    mode: Primitive::Triangles,
                    first: 0,
                    count: 3,
                },
                &mem,
            )
            .unwrap();
        let GlCommand::VertexAttribPointer {
            source: VertexSource::Materialized(data),
            ..
        } = &out[0]
        else {
            panic!("expected materialized pointer");
        };
        assert_eq!(data.len(), 48);
    }
}
