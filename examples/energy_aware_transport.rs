//! The energy-aware dual-radio transport, driven directly (Section V-B).
//!
//! Feeds the transport a gameplay-shaped traffic pattern — quiet menu
//! periods, steady play, and touch-driven surges — and shows the ARMAX
//! predictor pre-waking WiFi ahead of surges while parking it during
//! lulls, with the energy ledger to prove it.
//!
//! ```text
//! cargo run --release --example energy_aware_transport
//! ```

use gbooster::core::transport::TransportManager;
use gbooster::sim::time::{SimDuration, SimTime};

fn phase_traffic(t_secs: f64) -> (usize, u32, u32) {
    // (bytes per 100 ms window, touches, textures)
    match t_secs as u64 % 30 {
        0..=9 => (30_000, 0, 8),     // menu / lull: ~2.4 Mbps -> Bluetooth
        10..=19 => (150_000, 2, 18), // steady play: ~12 Mbps -> Bluetooth
        _ => (400_000, 7, 30),       // firefight: ~32 Mbps -> WiFi
    }
}

fn main() {
    let mut transport = TransportManager::new(true, SimDuration::from_millis(500));
    let mut now = SimTime::ZERO;
    let mut degraded = 0u32;
    let mut sends = 0u32;
    println!("90 s of gameplay-shaped traffic through the dual-radio transport:\n");
    while now.as_secs_f64() < 90.0 {
        let (bytes, touches, textures) = phase_traffic(now.as_secs_f64());
        transport.on_frame(touches, textures);
        let xfer = transport.send(bytes, now);
        sends += 1;
        if xfer.degraded {
            degraded += 1;
        }
        now += SimDuration::from_millis(100);
    }
    let stats = transport.switch_stats();
    println!(
        "WiFi wakes          : {} (one per firefight approach)",
        stats.wifi_wakes
    );
    println!(
        "bytes by route      : wifi {:.1} MB / bluetooth {:.1} MB",
        stats.wifi_bytes as f64 / 1e6,
        stats.bt_bytes as f64 / 1e6
    );
    println!("degraded transfers  : {degraded} of {sends} (surges that beat the wake-up)");
    println!(
        "radio energy        : {:.1} J total, {:.1} J of it WiFi",
        transport.radio_energy_joules(),
        transport.wifi_energy_joules()
    );

    // Contrast: the same traffic with switching disabled (WiFi always on).
    let mut always_wifi = TransportManager::new(false, SimDuration::from_millis(500));
    let mut now = SimTime::from_millis(600);
    while now.as_secs_f64() < 90.0 {
        let (bytes, touches, textures) = phase_traffic(now.as_secs_f64());
        always_wifi.on_frame(touches, textures);
        always_wifi.send(bytes, now);
        now += SimDuration::from_millis(100);
    }
    println!(
        "\nwithout switching   : {:.1} J  ({:.0}% more radio energy)",
        always_wifi.radio_energy_joules(),
        (always_wifi.radio_energy_joules() / transport.radio_energy_joules() - 1.0) * 100.0
    );
    assert!(always_wifi.radio_energy_joules() > transport.radio_energy_joules());
}
