//! The interception layer (Section IV-A).
//!
//! [`Interceptor`] is the deployed form of the hooking machinery: it
//! installs the wrapper library into a process' dynamic linker, verifies
//! that every GL entry point the application resolves — by any of the
//! three lookup routes — lands in the wrapper, and then classifies each
//! intercepted call for the forwarder.
//!
//! This is also where the rewritten `eglSwapBuffers` semantics live
//! (Sections IV-C and VI-A): under GBooster the swap no longer blocks on
//! the local GPU; it returns immediately so rendering requests can pile
//! up for multi-device dispatch, and the frame actually displayed comes
//! from the network.

use gbooster_gles::command::GlCommand;
use gbooster_linker::hook::{HookEngine, LookupRoute};
use gbooster_linker::library::{genuine_egl, genuine_gles};
use gbooster_linker::linker::DynamicLinker;

use crate::error::GBoosterError;

/// Where an intercepted command must be routed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Disposition {
    /// Replicate to every service device (state-mutating; Section VI-B).
    ReplicateAll,
    /// Dispatch to one service device chosen by the Eq. 4 scheduler.
    DispatchOne,
    /// Frame boundary: non-blocking under GBooster; triggers display of
    /// the most recent network frame.
    SwapBoundary,
}

/// The installed wrapper for one application process.
#[derive(Debug)]
pub struct Interceptor {
    hooks: HookEngine,
    intercepted_calls: u64,
}

impl Interceptor {
    /// Builds a process image (genuine GLES + EGL libraries loaded) and
    /// installs the GBooster wrapper via `LD_PRELOAD`.
    pub fn install() -> Self {
        let mut linker = DynamicLinker::new();
        linker.load(genuine_gles());
        linker.load(genuine_egl());
        Interceptor {
            hooks: HookEngine::install(linker),
            intercepted_calls: 0,
        }
    }

    /// Verifies that `symbol` is intercepted on every lookup route an
    /// application could use.
    ///
    /// # Errors
    ///
    /// Returns a link error if the symbol cannot be resolved, or a config
    /// error if any route escapes to the genuine library.
    pub fn verify_symbol(&mut self, symbol: &str) -> Result<(), GBoosterError> {
        for route in LookupRoute::ALL {
            let ptr = self.hooks.lookup(symbol, route)?;
            if !self.hooks.is_intercepted(&ptr) {
                return Err(GBoosterError::Config(format!(
                    "{symbol} escaped interception via {route:?} to {}",
                    ptr.provider()
                )));
            }
        }
        Ok(())
    }

    /// Verifies complete coverage of the GL ES + EGL surface.
    ///
    /// # Errors
    ///
    /// As [`Interceptor::verify_symbol`], for the first failing symbol.
    pub fn verify_coverage(&mut self) -> Result<(), GBoosterError> {
        for sym in gbooster_linker::library::GLES2_SYMBOLS {
            self.verify_symbol(sym)?;
        }
        for sym in gbooster_linker::library::EGL_SYMBOLS {
            self.verify_symbol(sym)?;
        }
        Ok(())
    }

    /// Intercepts one application call: counts it and returns its routing
    /// disposition.
    pub fn intercept(&mut self, cmd: &GlCommand) -> Disposition {
        self.intercepted_calls += 1;
        if cmd.is_swap() {
            Disposition::SwapBoundary
        } else if cmd.is_state_mutating() {
            Disposition::ReplicateAll
        } else {
            Disposition::DispatchOne
        }
    }

    /// Total calls intercepted.
    pub fn intercepted_calls(&self) -> u64 {
        self.intercepted_calls
    }

    /// The underlying hook engine (for telemetry).
    pub fn hooks(&self) -> &HookEngine {
        &self.hooks
    }
}

impl Default for Interceptor {
    fn default() -> Self {
        Self::install()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbooster_gles::types::{ClearMask, Primitive, ProgramId};

    #[test]
    fn full_surface_is_intercepted() {
        let mut interceptor = Interceptor::install();
        interceptor.verify_coverage().unwrap();
    }

    #[test]
    fn dispositions_follow_the_paper() {
        let mut i = Interceptor::install();
        assert_eq!(
            i.intercept(&GlCommand::UseProgram(ProgramId(1))),
            Disposition::ReplicateAll
        );
        assert_eq!(
            i.intercept(&GlCommand::DrawArrays {
                mode: Primitive::Triangles,
                first: 0,
                count: 3
            }),
            Disposition::DispatchOne
        );
        assert_eq!(
            i.intercept(&GlCommand::Clear(ClearMask::ALL)),
            Disposition::DispatchOne
        );
        assert_eq!(
            i.intercept(&GlCommand::SwapBuffers),
            Disposition::SwapBoundary
        );
        assert_eq!(i.intercepted_calls(), 4);
    }

    #[test]
    fn unknown_symbol_fails_verification() {
        let mut i = Interceptor::install();
        assert!(i.verify_symbol("glMadeUp").is_err());
    }
}
