//! Streaming SLO objectives and burn-rate evaluation.
//!
//! An [`SloObjective`] declares, over one windowed metric stream
//! ([`crate::registry::WindowedHistogram`]), what a *bad* sample is
//! (above `threshold`) and how many of them the service may afford
//! (`budget`, a fraction). The evaluator then watches the stream the
//! Google-SRE way — **multi-window, multi-burn-rate**: the burn rate is
//! `bad_fraction / budget` (1.0 = spending the budget exactly on
//! schedule), and an objective is *breaching* only when both a short
//! window (is it happening right now?) and a long window (is it
//! material, not a blip?) exceed their burn thresholds. Sim sessions
//! run seconds, not weeks, so the windows are sub-second to a few
//! seconds rather than SRE's hours — the structure is the same.
//!
//! Objectives are expressed so that the bad direction is "too high":
//! latency objectives watch the latency itself, throughput objectives
//! watch the inter-arrival gap, ratio objectives watch the failure
//! ratio. This keeps one comparison direction and one budget algebra.
//!
//! Metrics without a hard objective get an [`AnomalyDetector`] instead:
//! an EWMA mean/variance tracker flagging samples whose z-score exceeds
//! a configured bound. Anomalies annotate incident timelines but never
//! open incidents on their own.

use gbooster_sim::time::{SimDuration, SimTime};

use crate::registry::WindowedHistogram;

/// One service-level objective over a windowed metric stream.
#[derive(Clone, Copy, Debug)]
pub struct SloObjective {
    /// Objective name (see [`crate::names::slo`]) — also the alert name.
    pub name: &'static str,
    /// The windowed stream the objective reads (see
    /// [`crate::names::ops`]).
    pub stream: &'static str,
    /// Unit of the stream's samples, for reports ("us", "permille", …).
    pub unit: &'static str,
    /// Per-sample bad boundary: a sample above this is bad.
    pub threshold: u64,
    /// Allowed bad fraction, in `(0, 1)`.
    pub budget: f64,
    /// Short confirmation window ("is it happening right now?").
    pub fast_window: SimDuration,
    /// Long materiality window ("is it more than a blip?").
    pub slow_window: SimDuration,
    /// Burn-rate threshold for the fast window.
    pub fast_burn: f64,
    /// Burn-rate threshold for the slow window.
    pub slow_burn: f64,
    /// No breach verdicts before this sim time: cold caches and
    /// first-frame transients are not outages.
    pub warmup: SimDuration,
}

impl SloObjective {
    /// Sanity-checks the objective's parameters.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.budget > 0.0 && self.budget < 1.0) {
            return Err(format!("{}: budget must be in (0, 1)", self.name));
        }
        if self.fast_window.is_zero() || self.slow_window.is_zero() {
            return Err(format!("{}: windows must be non-zero", self.name));
        }
        if self.fast_window > self.slow_window {
            return Err(format!(
                "{}: the fast window must not exceed the slow window",
                self.name
            ));
        }
        if self.fast_burn <= 0.0 || self.slow_burn <= 0.0 {
            return Err(format!("{}: burn thresholds must be positive", self.name));
        }
        Ok(())
    }

    /// Evaluates the objective against its stream at `now`.
    pub fn evaluate(&self, now: SimTime, stream: &WindowedHistogram) -> BurnState {
        let fast = stream.window(now, self.fast_window);
        let slow = stream.window(now, self.slow_window);
        let burn = |snap: &crate::hist::HistogramSnapshot| {
            if snap.count() == 0 {
                0.0
            } else {
                (snap.count_over(self.threshold) as f64 / snap.count() as f64) / self.budget
            }
        };
        let fast_burn = burn(&fast);
        let slow_burn = burn(&slow);
        BurnState {
            objective: self.name,
            fast_burn,
            slow_burn,
            fast_count: fast.count(),
            slow_count: slow.count(),
            breaching: now.saturating_duration_since(SimTime::ZERO) >= self.warmup
                && fast_burn >= self.fast_burn
                && slow_burn >= self.slow_burn,
        }
    }
}

/// The evaluator's verdict for one objective at one instant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurnState {
    /// The objective evaluated.
    pub objective: &'static str,
    /// Burn rate over the fast window (1.0 = on-budget spend).
    pub fast_burn: f64,
    /// Burn rate over the slow window.
    pub slow_burn: f64,
    /// Samples in the fast window.
    pub fast_count: u64,
    /// Samples in the slow window.
    pub slow_count: u64,
    /// Both windows over threshold (and past warmup).
    pub breaching: bool,
}

/// EWMA mean/variance tracker flagging z-score outliers on a metric
/// stream that has no hard objective (per-interface energy rate, …).
#[derive(Clone, Debug)]
pub struct AnomalyDetector {
    /// The stream this detector watches, for event labels.
    pub metric: &'static str,
    alpha: f64,
    z_threshold: f64,
    warmup_samples: u64,
    mean: f64,
    var: f64,
    seen: u64,
}

/// One flagged outlier.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Anomaly {
    /// The observed sample.
    pub value: f64,
    /// The EWMA mean at observation time.
    pub mean: f64,
    /// How many EWMA standard deviations the sample sits from the mean.
    pub z: f64,
}

impl AnomalyDetector {
    /// Creates a detector with smoothing factor `alpha` (0 < α ≤ 1),
    /// flagging samples more than `z_threshold` EWMA standard
    /// deviations from the mean, after `warmup_samples` observations.
    pub fn new(metric: &'static str, alpha: f64, z_threshold: f64, warmup_samples: u64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha out of range");
        assert!(z_threshold > 0.0, "z threshold must be positive");
        AnomalyDetector {
            metric,
            alpha,
            z_threshold,
            warmup_samples,
            mean: 0.0,
            var: 0.0,
            seen: 0,
        }
    }

    /// Feeds one sample; returns the anomaly verdict *before* folding
    /// the sample into the estimate (an outlier must not vouch for
    /// itself).
    pub fn observe(&mut self, value: f64) -> Option<Anomaly> {
        let verdict = if self.seen >= self.warmup_samples {
            let std = self.var.max(0.0).sqrt();
            if std > f64::EPSILON {
                let z = (value - self.mean) / std;
                (z.abs() >= self.z_threshold).then_some(Anomaly {
                    value,
                    mean: self.mean,
                    z,
                })
            } else {
                None
            }
        } else {
            None
        };
        if self.seen == 0 {
            self.mean = value;
            self.var = 0.0;
        } else {
            let diff = value - self.mean;
            let incr = self.alpha * diff;
            self.mean += incr;
            self.var = (1.0 - self.alpha) * (self.var + diff * incr);
        }
        self.seen += 1;
        verdict
    }

    /// Samples observed so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::WindowedHistogram;

    fn objective() -> SloObjective {
        SloObjective {
            name: "slo.test_latency",
            stream: "win.test_latency",
            unit: "us",
            threshold: 50_000,
            budget: 0.05,
            fast_window: SimDuration::from_millis(500),
            slow_window: SimDuration::from_secs(2),
            fast_burn: 4.0,
            slow_burn: 2.0,
            warmup: SimDuration::from_millis(100),
        }
    }

    #[test]
    fn validate_rejects_degenerate_objectives() {
        assert!(objective().validate().is_ok());
        let mut bad = objective();
        bad.budget = 0.0;
        assert!(bad.validate().is_err());
        let mut bad = objective();
        bad.fast_window = SimDuration::from_secs(10);
        assert!(bad.validate().is_err());
        let mut bad = objective();
        bad.slow_burn = -1.0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn burn_needs_both_windows_over_threshold() {
        let obj = objective();
        let stream = WindowedHistogram::detached(SimDuration::from_millis(100), 64);
        // Two seconds of healthy traffic: ~30 ms, all good.
        let mut t = SimTime::ZERO;
        for _ in 0..80 {
            t += SimDuration::from_millis(25);
            stream.record(t, 30_000);
        }
        let healthy = obj.evaluate(t, &stream);
        assert!(!healthy.breaching);
        assert_eq!(healthy.fast_burn, 0.0);
        // A short spike: the fast window burns hot, but two seconds of
        // history keep the slow window under its threshold — no breach.
        for _ in 0..5 {
            t += SimDuration::from_millis(25);
            stream.record(t, 200_000);
        }
        let spike = obj.evaluate(t, &stream);
        assert!(spike.fast_burn >= obj.fast_burn, "{spike:?}");
        assert!(!spike.breaching, "a blip must not breach: {spike:?}");
        // Sustained badness pushes the slow window over too.
        for _ in 0..60 {
            t += SimDuration::from_millis(25);
            stream.record(t, 200_000);
        }
        let outage = obj.evaluate(t, &stream);
        assert!(outage.breaching, "{outage:?}");
        assert!(outage.slow_burn >= obj.slow_burn);
    }

    #[test]
    fn warmup_and_empty_windows_never_breach() {
        let obj = objective();
        let stream = WindowedHistogram::detached(SimDuration::from_millis(100), 64);
        // All-bad traffic inside the warmup: burns are hot, verdict no.
        let t = SimTime::from_millis(50);
        for _ in 0..10 {
            stream.record(t, 200_000);
        }
        let early = obj.evaluate(t, &stream);
        assert!(early.fast_burn > obj.fast_burn);
        assert!(!early.breaching, "warmup must suppress the verdict");
        // An empty stream reads as zero burn, not a division blow-up.
        let empty = WindowedHistogram::detached(SimDuration::from_millis(100), 64);
        let none = obj.evaluate(SimTime::from_secs(5), &empty);
        assert_eq!(none.fast_burn, 0.0);
        assert!(!none.breaching);
    }

    #[test]
    fn anomaly_detector_flags_outliers_after_warmup() {
        let mut det = AnomalyDetector::new("win.energy", 0.2, 4.0, 10);
        // A steady stream with mild jitter trains the estimate.
        for i in 0..50u64 {
            let v = 100.0 + (i % 5) as f64;
            assert!(det.observe(v).is_none(), "steady stream must not flag");
        }
        // A 10x spike is an outlier.
        let hit = det.observe(1_000.0).expect("spike must flag");
        assert!(hit.z > 4.0);
        assert!(hit.mean < 110.0);
        // The estimate is updated after the verdict, so a return to
        // normal does not flag.
        assert!(det.observe(102.0).is_none());
    }

    #[test]
    fn anomaly_warmup_swallows_early_outliers() {
        let mut det = AnomalyDetector::new("win.energy", 0.2, 3.0, 10);
        for _ in 0..5 {
            assert!(det.observe(5.0).is_none());
        }
        // Still inside warmup: even a wild sample passes silently.
        assert!(det.observe(10_000.0).is_none());
        assert_eq!(det.seen(), 6);
    }
}
