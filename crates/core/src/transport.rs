//! The energy-aware transport manager (Section V-B).
//!
//! Couples the ARMAX traffic predictor to the dual-radio
//! [`InterfaceManager`]: traffic and exogenous inputs (touchstrokes,
//! per-frame texture count — the AIC-selected attributes 1 and 3) are
//! accumulated per 500 ms window; at each window boundary the predictor
//! forecasts the next window's demand and the manager pre-wakes or parks
//! the WiFi radio accordingly.

use std::collections::BTreeMap;

use gbooster_forecast::predictor::TrafficPredictor;
use gbooster_net::switch::{IfaceTime, InterfaceManager, Route, SwitchStats};
use gbooster_sim::time::{SimDuration, SimTime};
use gbooster_telemetry::{
    names, AttributionLog, ClockOffsetEstimator, Counter, Gauge, OpsEventKind, OpsLog, Registry,
    TraceContext,
};

/// Per-route propagation latency added on top of serialization.
const WIFI_LATENCY: SimDuration = SimDuration::from_micros(800);
const BT_LATENCY: SimDuration = SimDuration::from_millis(4);

/// Link-layer datagram payload used by the retransmit estimator.
const DATAGRAM_PAYLOAD: u64 = 1200;
/// Expected datagram loss rates per route (matches the channel defaults
/// in `gbooster-net`): losses are recovered by the reliable transport, so
/// here they cost retransmissions, not data.
const WIFI_LOSS: f64 = 0.002;
const BT_LOSS: f64 = 0.005;

/// Mean loss-recovery stall per *excess* expected retransmission when
/// the link is scaled lossy (one RTO-sized round trip, matching the
/// RUDP default in `gbooster-net`).
const RETX_RECOVERY: SimDuration = SimDuration::from_millis(20);

/// A transmission outcome including propagation delay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transfer {
    /// Instant the last byte is delivered.
    pub delivered_at: SimTime,
    /// Serialization + propagation span.
    pub duration: SimDuration,
    /// True if the send was degraded onto Bluetooth by a mispredicted
    /// surge (elevated latency — the FN cost).
    pub degraded: bool,
    /// Radio the bytes rode, or `None` for synthesized transfers that
    /// never crossed a link (local-render fallback paths).
    pub route: Option<Route>,
}

impl Transfer {
    /// Attribution interface label for this transfer's route.
    pub fn iface_label(&self) -> &'static str {
        match self.route {
            Some(Route::Wifi) => names::attr::IFACE_WIFI,
            Some(Route::Bluetooth) => names::attr::IFACE_BT,
            None => names::attr::IFACE_NONE,
        }
    }
}

/// The predictor-driven transport.
#[derive(Debug)]
pub struct TransportManager {
    mgr: InterfaceManager,
    predictor: TrafficPredictor,
    window: SimDuration,
    window_end: SimTime,
    /// Per-direction link occupancy. (The medium is shared, but at the
    /// utilizations GBooster reaches the cross-direction contention is
    /// second-order; modeling the directions independently avoids falsely
    /// serializing frame i's download with frame i+1's upload.)
    uplink_free_at: SimTime,
    downlink_free_at: SimTime,
    window_bytes: u64,
    window_busy: SimDuration,
    window_touches: f64,
    window_textures: f64,
    window_frames: u32,
    uplink_bytes: u64,
    downlink_bytes: u64,
    windows_observed: u64,
    /// Fractional expected retransmissions not yet surfaced as a whole
    /// count (the estimator is deterministic: no RNG, no timing impact).
    retransmit_carry: f64,
    /// Multiplier on the profiled loss rate (1.0 = clean link). Above
    /// 1.0 the excess expected retransmissions cost a deterministic
    /// recovery stall on every transfer.
    loss_scale: f64,
    /// Frames with traced transfers currently in flight on this path,
    /// keyed by display sequence (the pipelined session overlaps
    /// several).
    inflight: BTreeMap<u64, TraceContext>,
    inflight_peak: usize,
    /// Ground-truth (service − user) clock skew applied to the ack
    /// timestamps the service device stamps (µs; set by the session
    /// from its seed, never read by the estimator).
    true_clock_offset_us: i64,
    /// NTP-style offset recovery from the modeled RUDP ack feedback.
    clock: ClockOffsetEstimator,
    counters: Option<TransportCounters>,
    attr: Option<AttributionLog>,
    /// Structured-event journal for injected interface flaps
    /// (live-ops layer).
    ops: Option<OpsLog>,
}

/// Pre-resolved registry handles for the transport counters.
#[derive(Clone, Debug)]
struct TransportCounters {
    uplink_bytes: Counter,
    downlink_bytes: Counter,
    retransmits: Counter,
    clock_offset: Gauge,
    clock_samples: Counter,
}

impl TransportManager {
    /// Creates a transport with switching `enabled` and the given
    /// forecast window.
    ///
    /// The predictor is ARMAX(2,1) with 2 lags over 2 exogenous inputs
    /// (touch frequency, texture count), thresholded at the Bluetooth
    /// budget — the paper's final configuration.
    pub fn new(enabled: bool, window: SimDuration) -> Self {
        let mgr = InterfaceManager::new(enabled);
        let threshold = mgr.bt_budget_mbps();
        TransportManager {
            mgr,
            predictor: TrafficPredictor::armax(2, 1, 2, 2, threshold),
            window,
            window_end: SimTime::ZERO + window,
            uplink_free_at: SimTime::ZERO,
            downlink_free_at: SimTime::ZERO,
            window_bytes: 0,
            window_busy: SimDuration::ZERO,
            window_touches: 0.0,
            window_textures: 0.0,
            window_frames: 0,
            uplink_bytes: 0,
            downlink_bytes: 0,
            windows_observed: 0,
            retransmit_carry: 0.0,
            loss_scale: 1.0,
            inflight: BTreeMap::new(),
            inflight_peak: 0,
            true_clock_offset_us: 0,
            clock: ClockOffsetEstimator::new(),
            counters: None,
            attr: None,
            ops: None,
        }
    }

    /// Journals injected interface flaps into `ops`, so incident
    /// timelines can link the radio churn to the frames it degraded.
    /// Purely observational, like [`Self::attach_registry`].
    pub fn attach_ops(&mut self, ops: OpsLog) {
        self.ops = Some(ops);
    }

    /// Attributes every transfer into `log`'s link table along
    /// `direction × interface` (bytes, latency micros, transfer count).
    /// Purely observational, like [`Self::attach_registry`].
    pub fn attach_attribution(&mut self, log: AttributionLog) {
        self.attr = Some(log);
    }

    /// Scales the link's datagram loss rate (1.0 = the profiled link).
    /// Values above 1.0 make the retransmit estimator accrue
    /// proportionally more and charge every transfer a deterministic
    /// recovery stall for the excess losses. At exactly 1.0 transfer
    /// timing is bit-identical to the unscaled transport.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not finite or below 1.0.
    pub fn set_loss_scale(&mut self, scale: f64) {
        assert!(
            scale.is_finite() && scale >= 1.0,
            "loss scale must be finite and >= 1.0: {scale}"
        );
        self.loss_scale = scale;
    }

    /// Recovery stall for the *excess* expected retransmissions of a
    /// `bytes`-sized transfer on `route`. Zero on a clean link, so the
    /// baseline path never pays it.
    fn loss_recovery(&self, bytes: usize, route: Route) -> SimDuration {
        if self.loss_scale <= 1.0 {
            return SimDuration::ZERO;
        }
        let datagrams = (bytes as u64).div_ceil(DATAGRAM_PAYLOAD).max(1);
        let loss = match route {
            Route::Wifi => WIFI_LOSS,
            Route::Bluetooth => BT_LOSS,
        };
        let extra = datagrams as f64 * loss * (self.loss_scale - 1.0);
        SimDuration::from_secs_f64(extra * RETX_RECOVERY.as_secs_f64())
    }

    /// Registers frame `ctx` as having transfers in flight on this path.
    /// The pipelined session keeps several frames open at once; each is
    /// retired by [`TransportManager::end_frame_transfer`] when its
    /// result is presented.
    pub fn begin_frame_transfer(&mut self, ctx: TraceContext) {
        self.inflight.insert(ctx.frame_id, ctx);
        self.inflight_peak = self.inflight_peak.max(self.inflight.len());
    }

    /// Retires frame `seq`'s transfers from the in-flight set.
    pub fn end_frame_transfer(&mut self, seq: u64) {
        self.inflight.remove(&seq);
    }

    /// Frames with transfers currently in flight.
    pub fn inflight_frames(&self) -> usize {
        self.inflight.len()
    }

    /// High-water mark of concurrently in-flight frames.
    pub fn inflight_peak(&self) -> usize {
        self.inflight_peak
    }

    /// Sets the ground-truth service-clock skew (µs, may be negative).
    /// The skew only shapes the timestamps the far side stamps into its
    /// acks; the estimator must recover it from those alone.
    pub fn set_true_clock_offset_us(&mut self, offset_us: i64) {
        self.true_clock_offset_us = offset_us;
    }

    /// The estimated (service − user) clock offset in µs, or `None`
    /// before the first acked transfer.
    pub fn clock_offset_estimate_us(&self) -> Option<i64> {
        self.clock.offset_us()
    }

    /// Feeds one NTP quadruple per transfer, modeling the RUDP
    /// cumulative-ack feedback: the service device stamps its (skewed)
    /// clock at delivery, the ack returns after the route's propagation
    /// latency. The forward path includes serialization while the ack
    /// is latency-only, so individual samples carry a small asymmetry
    /// bias — the estimator's min-RTT filter keeps the least-biased
    /// (smallest) transfer's sample.
    fn observe_clock(&mut self, start: SimTime, delivered_at: SimTime, route: Route) {
        let ack_latency = match route {
            Route::Wifi => WIFI_LATENCY,
            Route::Bluetooth => BT_LATENCY,
        };
        let t1 = start.as_micros() as i64;
        let t2 = delivered_at.as_micros() as i64 + self.true_clock_offset_us;
        let t4 = (delivered_at + ack_latency).as_micros() as i64;
        self.clock.observe(t1, t2, t2, t4);
        if let Some(c) = &self.counters {
            c.clock_samples.inc();
            if let Some(est) = self.clock.offset_us() {
                c.clock_offset.set(est as f64);
            }
        }
    }

    /// Mirrors transport activity into `registry`: per-direction byte
    /// counters, the radio switcher's wake/misprediction/byte counters,
    /// and the deterministic expected-retransmit estimator under
    /// [`names::net::RETRANSMITS`]. Purely observational — attaching never
    /// changes transfer timing or route decisions.
    pub fn attach_registry(&mut self, registry: &Registry) {
        self.mgr.attach_registry(registry);
        self.counters = Some(TransportCounters {
            uplink_bytes: registry.counter(names::net::UPLINK_BYTES),
            downlink_bytes: registry.counter(names::net::DOWNLINK_BYTES),
            retransmits: registry.counter(names::net::RETRANSMITS),
            clock_offset: registry.gauge(names::tracing::CLOCK_OFFSET_US),
            clock_samples: registry.counter(names::tracing::CLOCK_SAMPLES),
        });
    }

    /// Accrues the expected retransmissions for a `bytes`-sized transfer
    /// on `route`: `ceil(bytes / 1200)` datagrams times the route's loss
    /// rate, with the fractional remainder carried to the next transfer
    /// so long sessions converge on the true expectation.
    fn account_retransmits(&mut self, bytes: usize, route: Route) {
        let Some(c) = &self.counters else { return };
        let datagrams = (bytes as u64).div_ceil(DATAGRAM_PAYLOAD).max(1);
        let loss = match route {
            Route::Wifi => WIFI_LOSS,
            Route::Bluetooth => BT_LOSS,
        } * self.loss_scale;
        self.retransmit_carry += datagrams as f64 * loss;
        let whole = self.retransmit_carry.floor();
        if whole >= 1.0 {
            c.retransmits.add(whole as u64);
            self.retransmit_carry -= whole;
        }
    }

    /// Records one frame's exogenous observations.
    pub fn on_frame(&mut self, touches: u32, textures_used: u32) {
        self.window_touches += touches as f64;
        self.window_textures += textures_used as f64;
        self.window_frames += 1;
    }

    /// Rolls the forecast window forward if `now` has passed its end:
    /// observe actual traffic, forecast the next window, actuate radios.
    pub fn maybe_rollover(&mut self, now: SimTime) {
        while now >= self.window_end {
            let mut mbps = self.window_bytes as f64 * 8.0 / 1e6 / self.window.as_secs_f64();
            // A saturated link under-reports offered demand: the carried
            // throughput caps below the switch threshold while the queue
            // grows. Treat near-full busy windows as demand beyond the
            // Bluetooth budget so the predictor sees the real surge.
            let busy_frac = self.window_busy.as_secs_f64() / self.window.as_secs_f64();
            if busy_frac > 0.85 {
                mbps = mbps.max(self.mgr.bt_budget_mbps() * 1.5);
            }
            let textures_avg = if self.window_frames > 0 {
                self.window_textures / self.window_frames as f64
            } else {
                0.0
            };
            let exo = [self.window_touches, textures_avg];
            self.predictor.observe(mbps, &exo);
            // Forecast with the freshest exogenous readings (the inputs
            // observable *now*, before the traffic they cause).
            let predicted = self.predictor.forecast_next(&exo);
            self.mgr.plan(predicted, self.window_end);
            self.mgr.idle_tick(self.window);
            self.window_bytes = 0;
            self.window_busy = SimDuration::ZERO;
            self.window_touches = 0.0;
            self.window_textures = 0.0;
            self.window_frames = 0;
            self.window_end += self.window;
            self.windows_observed += 1;
        }
    }

    /// Sends `bytes` upstream (commands) at `now`. The transfer queues
    /// behind any transfer still occupying the half-duplex medium.
    pub fn send(&mut self, bytes: usize, now: SimTime) -> Transfer {
        gbooster_telemetry::prof_scope!(names::host::TRANSPORT_SEND);
        self.maybe_rollover(now);
        self.window_bytes += bytes as u64;
        self.uplink_bytes += bytes as u64;
        let start = now.max(self.uplink_free_at);
        let out = self.mgr.transmit(bytes, start);
        let done_at = out.done_at + self.loss_recovery(bytes, out.route);
        self.window_busy += done_at - start;
        self.uplink_free_at = done_at;
        if let Some(c) = &self.counters {
            c.uplink_bytes.add(bytes as u64);
        }
        self.account_retransmits(bytes, out.route);
        let transfer = Self::finish(now, done_at, out.route, out.degraded);
        if let Some(attr) = &self.attr {
            attr.record_link(
                names::attr::DIR_UPLINK,
                transfer.iface_label(),
                bytes as u64,
                transfer.duration.as_micros(),
            );
        }
        // Uplink acks are the clock-sync signal (the service stamps its
        // clock at delivery). Downlink acks flow the other way and are
        // not observable here.
        self.observe_clock(start, transfer.delivered_at, out.route);
        transfer
    }

    /// Receives `bytes` downstream (frames) at `now`, queueing behind any
    /// transfer occupying the medium.
    pub fn recv(&mut self, bytes: usize, now: SimTime) -> Transfer {
        gbooster_telemetry::prof_scope!(names::host::TRANSPORT_RECV);
        self.maybe_rollover(now);
        self.window_bytes += bytes as u64;
        self.downlink_bytes += bytes as u64;
        let start = now.max(self.downlink_free_at);
        let out = self.mgr.receive(bytes, start);
        let done_at = out.done_at + self.loss_recovery(bytes, out.route);
        self.window_busy += done_at - start;
        self.downlink_free_at = done_at;
        if let Some(c) = &self.counters {
            c.downlink_bytes.add(bytes as u64);
        }
        self.account_retransmits(bytes, out.route);
        let transfer = Self::finish(now, done_at, out.route, out.degraded);
        if let Some(attr) = &self.attr {
            attr.record_link(
                names::attr::DIR_DOWNLINK,
                transfer.iface_label(),
                bytes as u64,
                transfer.duration.as_micros(),
            );
        }
        transfer
    }

    fn finish(now: SimTime, done_at: SimTime, route: Route, degraded: bool) -> Transfer {
        let latency = match route {
            Route::Wifi => WIFI_LATENCY,
            Route::Bluetooth => BT_LATENCY,
        };
        let delivered_at = done_at + latency;
        Transfer {
            delivered_at,
            duration: delivered_at - now,
            degraded,
            route: Some(route),
        }
    }

    /// Total radio energy, joules.
    pub fn radio_energy_joules(&self) -> f64 {
        self.mgr.energy_joules()
    }

    /// WiFi-attributed energy, joules.
    pub fn wifi_energy_joules(&self) -> f64 {
        self.mgr.wifi_energy_joules()
    }

    /// Switch statistics.
    pub fn switch_stats(&self) -> SwitchStats {
        self.mgr.stats()
    }

    /// Accumulated per-interface time-in-state totals.
    pub fn iface_time(&self) -> IfaceTime {
        self.mgr.time_in_state()
    }

    /// Forces `cycles` rapid WiFi power cycles at `now` (fault injection
    /// for interface-flap drills). See [`InterfaceManager::force_flap`].
    pub fn force_flap(&mut self, now: SimTime, cycles: u32) {
        self.mgr.force_flap(now, cycles);
        if let Some(ops) = &self.ops {
            ops.push(
                now,
                OpsEventKind::IfaceFlap {
                    cycles: cycles as u64,
                },
            );
        }
    }

    /// Lifetime (uplink, downlink) byte totals.
    pub fn traffic_totals(&self) -> (u64, u64) {
        (self.uplink_bytes, self.downlink_bytes)
    }

    /// Average offered load over the observed windows, Mbps.
    pub fn average_mbps(&self, elapsed: SimDuration) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            (self.uplink_bytes + self.downlink_bytes) as f64 * 8.0 / 1e6 / secs
        }
    }

    /// Forecast windows processed.
    pub fn windows_observed(&self) -> u64 {
        self.windows_observed
    }
}

/// One-way transfer time for the fabric's per-tenant links
/// (crates/core/src/fabric.rs).
///
/// Every tenant phone owns its own radio, so the fabric does not share
/// one [`TransportManager`] across sessions; each transfer serializes
/// at the 802.11n channel rate plus half the WiFi propagation RTT.
/// `loss_scale` derates goodput the way [`TransportManager::set_loss_scale`]
/// inflates retransmissions: each expected (scaled) datagram loss costs
/// one extra payload transmission, so the effective rate drops by the
/// scaled loss factor. Deterministic — loss *bursts* are injected by the
/// fabric from its per-tenant seeded streams, not here.
pub fn fabric_link_secs(bytes: u64, loss_scale: f64) -> f64 {
    let chan = gbooster_net::channel::ChannelModel::wifi_80211n();
    let serialize = chan.tx_time(bytes as usize).as_secs_f64();
    let overhead = 1.0 + WIFI_LOSS * loss_scale.max(0.0);
    serialize * overhead + WIFI_LATENCY.as_secs_f64()
}

/// Channel share a background snapshot transfer may consume: live
/// migration paces the checkpoint stream at half rate so the session's
/// own frames keep their latency while the transfer overlaps continued
/// dispatch to the source (docs/MIGRATION.md).
const MIGRATION_CHANNEL_SHARE: f64 = 0.5;

/// One-way transfer time for a live-migration state snapshot.
///
/// Same 802.11n link as [`fabric_link_secs`], but the stream is paced
/// to [`MIGRATION_CHANNEL_SHARE`] of the channel: a migration is a
/// bulk background flow, and starving the per-frame uplink to finish
/// the checkpoint sooner would cause exactly the presentation gap the
/// cutover protocol promises not to have.
pub fn fabric_migration_secs(bytes: u64, loss_scale: f64) -> f64 {
    let chan = gbooster_net::channel::ChannelModel::wifi_80211n();
    let serialize = chan.tx_time(bytes as usize).as_secs_f64() / MIGRATION_CHANNEL_SHARE;
    let overhead = 1.0 + WIFI_LOSS * loss_scale.max(0.0);
    serialize * overhead + WIFI_LATENCY.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> SimDuration {
        SimDuration::from_millis(500)
    }

    #[test]
    fn quiet_traffic_stays_on_bluetooth_energy() {
        let mut t = TransportManager::new(true, window());
        let mut now = SimTime::ZERO;
        for _ in 0..120 {
            // 20 KB per 100 ms ≈ 1.6 Mbps: far under the BT budget.
            let xfer = t.send(20_000, now);
            assert!(!xfer.degraded);
            now = xfer.delivered_at + SimDuration::from_millis(100);
            t.on_frame(0, 8);
        }
        let stats = t.switch_stats();
        assert_eq!(stats.wifi_bytes, 0, "all bytes must ride Bluetooth");
        assert!(t.radio_energy_joules() < 2.0);
    }

    #[test]
    fn sustained_surge_migrates_to_wifi() {
        let mut t = TransportManager::new(true, window());
        let mut now = SimTime::ZERO;
        // Open-loop offered load of 200 KB every 50 ms ≈ 32 Mbps: beyond
        // Bluetooth, which saturates until the predictor wakes WiFi.
        for _ in 0..400 {
            t.send(200_000, now);
            now += SimDuration::from_millis(50);
            t.on_frame(5, 24);
        }
        let stats = t.switch_stats();
        assert!(stats.wifi_wakes >= 1, "predictor must wake WiFi");
        assert!(
            stats.wifi_bytes > stats.bt_bytes,
            "steady surge should ride WiFi: {stats:?}"
        );
    }

    #[test]
    fn disabled_switching_never_touches_bluetooth() {
        let mut t = TransportManager::new(false, window());
        let mut now = SimTime::from_millis(600); // WiFi booted at t=0
        for _ in 0..50 {
            let xfer = t.send(10_000, now);
            now = xfer.delivered_at + SimDuration::from_millis(20);
        }
        assert_eq!(t.switch_stats().bt_bytes, 0);
    }

    #[test]
    fn traffic_totals_split_directions() {
        let mut t = TransportManager::new(true, window());
        t.send(1000, SimTime::ZERO);
        t.recv(5000, SimTime::from_millis(10));
        assert_eq!(t.traffic_totals(), (1000, 5000));
        let mbps = t.average_mbps(SimDuration::from_secs(1));
        assert!((mbps - 0.048).abs() < 1e-9);
    }

    #[test]
    fn windows_roll_over_with_time() {
        let mut t = TransportManager::new(true, window());
        t.send(100, SimTime::ZERO);
        t.send(100, SimTime::from_secs(3));
        assert!(t.windows_observed() >= 5, "{}", t.windows_observed());
    }

    #[test]
    fn retransmit_estimator_is_deterministic_and_timing_neutral() {
        let registry = Registry::new();
        let mut traced = TransportManager::new(true, window());
        traced.attach_registry(&registry);
        let mut plain = TransportManager::new(true, window());
        let mut now = SimTime::ZERO;
        for _ in 0..200 {
            // 600 KB ≈ 500 datagrams per transfer: enough expected loss to
            // surface whole retransmit units at either loss rate.
            let a = traced.send(600_000, now);
            let b = plain.send(600_000, now);
            assert_eq!(a, b, "telemetry must not perturb transfer timing");
            now = a.delivered_at + SimDuration::from_millis(30);
            traced.on_frame(1, 8);
            plain.on_frame(1, 8);
        }
        let snap = registry.snapshot();
        let retx = snap.counter(names::net::RETRANSMITS);
        // 200 transfers x 500 datagrams x [0.002, 0.005] => 200..=500.
        assert!((150..=600).contains(&retx), "retransmits {retx}");
        assert_eq!(
            snap.counter(names::net::UPLINK_BYTES),
            200 * 600_000,
            "uplink byte counter must mirror traffic_totals"
        );
    }

    #[test]
    fn clock_offset_is_recovered_on_the_session_path() {
        for true_offset in [250_000i64, -90_000, 0] {
            let mut t = TransportManager::new(true, window());
            t.set_true_clock_offset_us(true_offset);
            let mut now = SimTime::ZERO;
            for _ in 0..60 {
                let xfer = t.send(2_000, now);
                now = xfer.delivered_at + SimDuration::from_millis(30);
                t.on_frame(0, 8);
            }
            let est = t.clock_offset_estimate_us().expect("acked transfers");
            // The forward path carries serialization the ack doesn't, so
            // the min-RTT sample is biased by half the smallest transfer's
            // serialization time — well under the 2 ms acceptance bound.
            assert!(
                (est - true_offset).abs() < 2_000,
                "offset {true_offset}: estimated {est}"
            );
        }
    }

    #[test]
    fn clock_sampling_never_perturbs_transfers() {
        let mut skewed = TransportManager::new(true, window());
        skewed.set_true_clock_offset_us(500_000);
        let mut plain = TransportManager::new(true, window());
        let mut now = SimTime::ZERO;
        for _ in 0..100 {
            let a = skewed.send(30_000, now);
            let b = plain.send(30_000, now);
            assert_eq!(a, b, "clock sampling must be observational");
            now = a.delivered_at + SimDuration::from_millis(40);
            skewed.on_frame(1, 8);
            plain.on_frame(1, 8);
        }
        assert!(skewed.clock_offset_estimate_us().is_some());
        assert!(plain.clock_offset_estimate_us().is_some());
    }

    #[test]
    fn unit_loss_scale_is_bit_identical_to_default() {
        let mut scaled = TransportManager::new(true, window());
        scaled.set_loss_scale(1.0);
        let mut plain = TransportManager::new(true, window());
        let mut now = SimTime::ZERO;
        for _ in 0..100 {
            let a = scaled.send(80_000, now);
            let b = plain.send(80_000, now);
            assert_eq!(a, b, "loss_scale 1.0 must be the identity");
            now = a.delivered_at + SimDuration::from_millis(25);
            scaled.on_frame(1, 8);
            plain.on_frame(1, 8);
        }
    }

    #[test]
    fn lossy_link_slows_transfers_and_accrues_retransmits() {
        // Switching disabled pins both transports to WiFi, so the only
        // difference between them is the scaled loss.
        let registry = Registry::new();
        let mut lossy = TransportManager::new(false, window());
        lossy.set_loss_scale(5.0);
        lossy.attach_registry(&registry);
        let clean_registry = Registry::new();
        let mut clean = TransportManager::new(false, window());
        clean.attach_registry(&clean_registry);
        let mut now = SimTime::ZERO;
        for _ in 0..100 {
            let a = lossy.send(120_000, now);
            let b = clean.send(120_000, now);
            assert!(
                a.duration > b.duration,
                "excess losses must cost recovery time"
            );
            now = a.delivered_at.max(b.delivered_at) + SimDuration::from_millis(25);
            lossy.on_frame(1, 8);
            clean.on_frame(1, 8);
        }
        let lossy_retx = registry.snapshot().counter(names::net::RETRANSMITS);
        let clean_retx = clean_registry.snapshot().counter(names::net::RETRANSMITS);
        assert!(
            lossy_retx >= clean_retx * 4,
            "scaled loss must accrue ~5x retransmits: {lossy_retx} vs {clean_retx}"
        );
    }

    #[test]
    #[should_panic(expected = "loss scale")]
    fn sub_unit_loss_scale_panics() {
        TransportManager::new(true, window()).set_loss_scale(0.5);
    }

    #[test]
    fn inflight_frame_contexts_track_the_pipeline_window() {
        let mut t = TransportManager::new(true, window());
        assert_eq!(t.inflight_frames(), 0);
        for seq in 0..4u64 {
            t.begin_frame_transfer(TraceContext::new(7, seq, 1));
        }
        assert_eq!(t.inflight_frames(), 4);
        t.end_frame_transfer(0);
        t.end_frame_transfer(2);
        assert_eq!(t.inflight_frames(), 2);
        // Re-registering an open frame is idempotent.
        t.begin_frame_transfer(TraceContext::new(7, 3, 2));
        assert_eq!(t.inflight_frames(), 2);
        t.end_frame_transfer(1);
        t.end_frame_transfer(3);
        assert_eq!(t.inflight_frames(), 0);
        assert_eq!(t.inflight_peak(), 4);
    }

    #[test]
    fn forced_flap_surfaces_in_wake_counters() {
        let mut t = TransportManager::new(true, window());
        let before = t.switch_stats().wifi_wakes;
        t.force_flap(SimTime::from_secs(1), 4);
        assert_eq!(t.switch_stats().wifi_wakes, before + 4);
    }

    #[test]
    fn migration_transfers_are_paced_below_the_foreground_link() {
        for bytes in [10_000u64, 1_000_000, 50_000_000] {
            let fg = fabric_link_secs(bytes, 0.0);
            let bg = fabric_migration_secs(bytes, 0.0);
            assert!(
                bg > fg,
                "background pacing must slow the bulk flow: {bg} vs {fg} at {bytes}B"
            );
        }
        // Loss derates both the same way, and cost is monotone in size.
        assert!(fabric_migration_secs(1_000_000, 1.0) > fabric_migration_secs(1_000_000, 0.0));
        assert!(fabric_migration_secs(2_000_000, 0.0) > fabric_migration_secs(1_000_000, 0.0));
    }

    #[test]
    fn degraded_transfers_take_longer() {
        // Force a surge the predictor has never seen: the first send
        // after the wake decision rides Bluetooth degraded.
        let mut t = TransportManager::new(true, window());
        let mut now = SimTime::ZERO;
        // Train on quiet traffic.
        for _ in 0..40 {
            let x = t.send(5_000, now);
            now = x.delivered_at + SimDuration::from_millis(100);
            t.on_frame(0, 8);
        }
        // Sudden large burst in one window.
        let burst = t.send(2_000_000, now);
        // Either it rides BT (slow) or WiFi woke in time; both legal —
        // but the duration must reflect the route.
        if burst.degraded {
            assert!(burst.duration.as_millis_f64() > 100.0);
        }
    }
}
