//! Fixed-bucket latency histograms.
//!
//! Values (microseconds by convention, but any `u64` works) land in
//! log-linear buckets: exact below [`LINEAR_CUTOFF`], then 16 linear
//! sub-buckets per power of two. Bucketing is a pure function of the
//! value, so merging two histograms bucket-wise is *exactly* equivalent
//! to recording the union of their samples — the property the test
//! suite checks.
//!
//! Recording is a single atomic increment plus two atomic min/max
//! updates; no locks anywhere on the hot path.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use gbooster_sim::time::{SimDuration, SimTime};

/// Values below this land in 1-unit-wide exact buckets.
const LINEAR_CUTOFF: u64 = 128;

/// Sub-buckets per power of two above the linear region.
const SUB_BUCKETS: u64 = 16;

/// log2 of [`LINEAR_CUTOFF`].
const CUTOFF_BITS: u32 = 7;

/// Highest representable power of two (values above clamp to the last
/// bucket). 2^40 µs ≈ 12.7 days of sim time — far beyond any session.
const MAX_BITS: u32 = 40;

/// Total bucket count.
pub const BUCKETS: usize =
    LINEAR_CUTOFF as usize + ((MAX_BITS - CUTOFF_BITS) as usize) * SUB_BUCKETS as usize;

/// Maps a value to its bucket index.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_CUTOFF {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    if msb >= MAX_BITS {
        return BUCKETS - 1;
    }
    let sub = (v >> (msb - 4)) & (SUB_BUCKETS - 1);
    LINEAR_CUTOFF as usize + ((msb - CUTOFF_BITS) as usize) * SUB_BUCKETS as usize + sub as usize
}

/// Inclusive upper bound of a bucket (used as the quantile estimate).
fn bucket_upper(idx: usize) -> u64 {
    if idx < LINEAR_CUTOFF as usize {
        return idx as u64;
    }
    if idx == BUCKETS - 1 {
        // The overflow bucket absorbs everything above 2^40.
        return u64::MAX;
    }
    let rel = idx - LINEAR_CUTOFF as usize;
    let msb = CUTOFF_BITS + (rel / SUB_BUCKETS as usize) as u32;
    let sub = (rel % SUB_BUCKETS as usize) as u64;
    let width = 1u64 << (msb - 4);
    (1u64 << msb) + (sub + 1) * width - 1
}

/// The lock-free histogram core. Shared behind an `Arc` by
/// [`crate::registry::Histogram`] handles.
pub struct HistogramCore {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    min: AtomicU64,
    /// Worst tagged sample so far (exemplar value / tag / present flag).
    ex_value: AtomicU64,
    ex_tag: AtomicU64,
    ex_has: AtomicU64,
    /// Lowest / highest bucket index touched so far (`u64::MAX` / `0`
    /// while empty) — sparse snapshots walk only `[lo, hi]` instead of
    /// all [`BUCKETS`] slots, which is what keeps per-interval scrapes
    /// of hundreds of registries cheap.
    lo_bucket: AtomicU64,
    hi_bucket: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        Self::new()
    }
}

impl HistogramCore {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        HistogramCore {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            ex_value: AtomicU64::new(0),
            ex_tag: AtomicU64::new(0),
            ex_has: AtomicU64::new(0),
            lo_bucket: AtomicU64::new(u64::MAX),
            hi_bucket: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        let idx = bucket_index(v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.lo_bucket.fetch_min(idx as u64, Ordering::Relaxed);
        self.hi_bucket.fetch_max(idx as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
    }

    /// Records one sample carrying a trace exemplar tag (a frame seq).
    /// The histogram remembers the tag of the worst tagged sample seen
    /// over its lifetime — cumulative, *not* reset by snapshots, so a
    /// mid-run flight-recorder snapshot cannot erase the exemplar the
    /// end-of-session report will point at. Untagged [`Self::record`]
    /// calls never produce or displace an exemplar.
    pub fn record_tagged(&self, v: u64, tag: u64) {
        self.record(v);
        // Last-writer-wins races are acceptable: streams feeding tags
        // are recorded from the single engine thread.
        if self.ex_has.load(Ordering::Relaxed) == 0 || v >= self.ex_value.load(Ordering::Relaxed) {
            self.ex_value.store(v, Ordering::Relaxed);
            self.ex_tag.store(tag, Ordering::Relaxed);
            self.ex_has.store(1, Ordering::Relaxed);
        }
    }

    /// Takes a point-in-time copy in sparse form — the scrape-loop
    /// variant of [`HistogramCore::snapshot`]. The dense snapshot
    /// clones all [`BUCKETS`] slots (~8 KB) even though a latency
    /// stream touches a few dozen of them; this collects only the
    /// non-empty buckets, so scraping every histogram of every
    /// registry each interval stays cheap.
    pub fn snapshot_sparse(&self) -> SparseHistogram {
        let mut entries = Vec::new();
        let lo = self.lo_bucket.load(Ordering::Relaxed);
        if lo != u64::MAX {
            let hi = (self.hi_bucket.load(Ordering::Relaxed) as usize).min(BUCKETS - 1);
            for (i, b) in self
                .buckets
                .iter()
                .enumerate()
                .take(hi + 1)
                .skip(lo as usize)
            {
                let c = b.load(Ordering::Relaxed);
                if c > 0 {
                    entries.push((u32::try_from(i).expect("bucket index fits u32"), c));
                }
            }
        }
        SparseHistogram {
            entries,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            exemplar: if self.ex_has.load(Ordering::Relaxed) != 0 {
                Some(Exemplar {
                    value: self.ex_value.load(Ordering::Relaxed),
                    tag: self.ex_tag.load(Ordering::Relaxed),
                })
            } else {
                None
            },
        }
    }

    /// Takes a point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            exemplar: if self.ex_has.load(Ordering::Relaxed) != 0 {
                Some(Exemplar {
                    value: self.ex_value.load(Ordering::Relaxed),
                    tag: self.ex_tag.load(Ordering::Relaxed),
                })
            } else {
                None
            },
        }
    }
}

impl std::fmt::Debug for HistogramCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("HistogramCore")
            .field("count", &s.count)
            .field("p50", &s.quantile(0.50))
            .field("p99", &s.quantile(0.99))
            .field("max", &s.max())
            .finish()
    }
}

/// A trace exemplar: the worst tagged sample a histogram has seen and
/// the frame sequence number that produced it, so a regressed quantile
/// points at a concrete frame trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Exemplar {
    /// The sample value (µs by convention).
    pub value: u64,
    /// The tag recorded with it (a frame seq by convention).
    pub tag: u64,
}

/// An immutable copy of a histogram's state, with quantile queries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
    min: u64,
    exemplar: Option<Exemplar>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
            exemplar: None,
        }
    }
}

impl HistogramSnapshot {
    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum sample (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact minimum sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// The worst tagged sample and its frame tag, if any sample was
    /// recorded through [`HistogramCore::record_tagged`].
    pub fn exemplar(&self) -> Option<Exemplar> {
        self.exemplar
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile estimate, `q` in `[0, 1]`.
    ///
    /// Returns the upper bound of the bucket holding the `ceil(q·count)`-th
    /// sample, clamped to the exact observed extremes so that
    /// `min() ≤ quantile(q) ≤ max()` and quantiles are monotone in `q`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// p50 in milliseconds, treating samples as microseconds.
    pub fn p50_ms(&self) -> f64 {
        self.quantile(0.50) as f64 / 1000.0
    }

    /// p90 in milliseconds, treating samples as microseconds.
    pub fn p90_ms(&self) -> f64 {
        self.quantile(0.90) as f64 / 1000.0
    }

    /// p99 in milliseconds, treating samples as microseconds.
    pub fn p99_ms(&self) -> f64 {
        self.quantile(0.99) as f64 / 1000.0
    }

    /// Records one sample into this snapshot directly (the non-atomic
    /// twin of [`HistogramCore::record`], for single-owner state such as
    /// the slots of a [`WindowedHistogramCore`]).
    pub fn record_one(&mut self, v: u64) {
        if self.buckets.len() < BUCKETS {
            self.buckets.resize(BUCKETS, 0);
        }
        self.buckets[bucket_index(v)] += 1;
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
        self.min = self.min.min(v);
    }

    /// Samples strictly above `threshold`, at bucket resolution: counts
    /// every bucket past the one holding `threshold`. Samples sharing
    /// the threshold's bucket count as *not* over — the estimate is
    /// conservative by at most one bucket width (≤ 1/16 relative), and,
    /// being a pure function of the buckets, it is deterministic and
    /// merge-consistent like the quantiles.
    pub fn count_over(&self, threshold: u64) -> u64 {
        let cut = bucket_index(threshold);
        self.buckets.iter().skip(cut + 1).sum()
    }

    /// Merges `other` into `self`, bucket-wise. Because bucketing is a
    /// pure function of the value, the merge is exactly equivalent to
    /// having recorded the union of both sample sets — p50/p90/p99 of
    /// the merged snapshot equal the quantiles of a single combined
    /// recording, not just "within bucket resolution".
    ///
    /// Robust against snapshots from a different bucket layout (the
    /// longer layout wins) and against `count`/`sum` overflow
    /// (saturating), so merging a corrupted or future-versioned
    /// snapshot can never panic.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
        // The merged exemplar is the worse of the two sides' (an
        // untagged side contributes none), keeping "worst tagged
        // sample of the union" exact under any merge order.
        self.exemplar = match (self.exemplar, other.exemplar) {
            (Some(a), Some(b)) => Some(if b.value > a.value { b } else { a }),
            (a, b) => a.or(b),
        };
    }

    /// The sparse form of this snapshot (see [`SparseHistogram`]).
    #[must_use]
    pub fn to_sparse(&self) -> SparseHistogram {
        SparseHistogram {
            entries: self
                .buckets
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(i, &c)| (u32::try_from(i).expect("bucket index fits u32"), c))
                .collect(),
            count: self.count,
            sum: self.sum,
            max: self.max,
            min: self.min,
            exemplar: self.exemplar,
        }
    }

    /// The distribution of the samples recorded between `earlier` and
    /// `self`, where both are cumulative snapshots of the *same*
    /// histogram: bucket-wise subtraction, the inverse of
    /// [`HistogramSnapshot::merge`]. Because bucketing is a pure
    /// function of the value, `earlier.merge(&delta)` reproduces `self`
    /// bucket-for-bucket.
    ///
    /// The exact `min`/`max` of just the delta interval are not
    /// recoverable from cumulative state, so they are approximated by
    /// the bounds of the delta's outermost non-empty buckets (clamped
    /// to the cumulative `max`). Quantiles of the delta are still exact
    /// at bucket resolution — the property the TSDB's windowed
    /// `quantile()` queries rely on. The delta carries no exemplar.
    ///
    /// Subtraction saturates, so a mismatched pair (not actually
    /// snapshots of one histogram) degrades to a partial distribution
    /// rather than panicking.
    #[must_use]
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = vec![0u64; self.buckets.len().max(earlier.buckets.len())];
        for (i, slot) in buckets.iter_mut().enumerate() {
            let new = self.buckets.get(i).copied().unwrap_or(0);
            let old = earlier.buckets.get(i).copied().unwrap_or(0);
            *slot = new.saturating_sub(old);
        }
        let count = self.count.saturating_sub(earlier.count);
        let first = buckets.iter().position(|&c| c > 0);
        let last = buckets.iter().rposition(|&c| c > 0);
        let (min, max) = match (first, last, count) {
            (Some(f), Some(l), c) if c > 0 => (
                if f < LINEAR_CUTOFF as usize {
                    f as u64
                } else {
                    bucket_upper(f - 1).saturating_add(1)
                },
                bucket_upper(l).min(self.max),
            ),
            _ => (u64::MAX, 0),
        };
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.saturating_sub(earlier.sum),
            max,
            min,
            exemplar: None,
        }
    }
}

/// A histogram copy holding only the non-empty buckets, as
/// `(bucket index, count)` pairs in ascending index order.
///
/// This is the storage form the TSDB rings keep: the dense
/// [`HistogramSnapshot`] always carries all [`BUCKETS`] slots (~8 KB)
/// while a real latency stream populates a few dozen of them, and the
/// scrape loop takes one copy per histogram per registry per
/// interval. [`SparseHistogram::to_snapshot`] restores the dense form
/// bucket-for-bucket, so query-time quantiles and window deltas stay
/// exact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SparseHistogram {
    entries: Vec<(u32, u64)>,
    count: u64,
    sum: u64,
    max: u64,
    min: u64,
    exemplar: Option<Exemplar>,
}

impl SparseHistogram {
    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Non-empty `(bucket index, count)` pairs, index ascending.
    #[must_use]
    pub fn entries(&self) -> &[(u32, u64)] {
        &self.entries
    }

    /// Expands back to the dense form, reproducing what
    /// [`HistogramCore::snapshot`] would have returned at the same
    /// instant — same bucket layout, counts, extremes, and exemplar.
    #[must_use]
    pub fn to_snapshot(&self) -> HistogramSnapshot {
        let len = BUCKETS.max(self.entries.last().map_or(0, |&(i, _)| i as usize + 1));
        let mut buckets = vec![0u64; len];
        for &(i, c) in &self.entries {
            buckets[i as usize] = c;
        }
        HistogramSnapshot {
            buckets,
            count: self.count,
            sum: self.sum,
            max: self.max,
            min: self.min,
            exemplar: self.exemplar,
        }
    }
}

/// A histogram sliced into fixed-width sim-time slots, supporting
/// rolling-window snapshots: "the latency distribution over the last
/// 800 ms" rather than since the session began. The SLO burn-rate
/// evaluator ([`crate::slo`]) consumes these windows.
///
/// Slots rotate as time advances; the ring retains the last `retain`
/// non-empty slots, so a window query can reach back up to
/// `retain × slot_width`. An all-time merged view is kept alongside —
/// because bucket merging is exact (see [`HistogramSnapshot::merge`]),
/// merging every slot reproduces the merged view bit-for-bit, which the
/// consistency tests assert.
#[derive(Clone, Debug)]
pub struct WindowedHistogramCore {
    slot_width_us: u64,
    retain: usize,
    /// `(slot index, samples landed in that slot)`, oldest first.
    slots: VecDeque<(u64, HistogramSnapshot)>,
    merged: HistogramSnapshot,
}

impl WindowedHistogramCore {
    /// Creates an empty windowed histogram with `retain` slots of
    /// `slot_width` each (both forced to at least 1).
    pub fn new(slot_width: SimDuration, retain: usize) -> Self {
        WindowedHistogramCore {
            slot_width_us: slot_width.as_micros().max(1),
            retain: retain.max(1),
            slots: VecDeque::new(),
            merged: HistogramSnapshot::default(),
        }
    }

    /// Widest window a query can cover, `retain × slot_width`.
    pub fn span(&self) -> SimDuration {
        SimDuration::from_micros(self.slot_width_us * self.retain as u64)
    }

    /// Records one sample observed at sim time `at`. Timestamps are
    /// expected to be monotone (presentation order); a late sample folds
    /// into the newest slot rather than resurrecting an evicted one.
    pub fn record(&mut self, at: SimTime, v: u64) {
        let idx = at.as_micros() / self.slot_width_us;
        match self.slots.back() {
            Some(&(back, _)) if back >= idx => {}
            _ => {
                self.slots.push_back((idx, HistogramSnapshot::default()));
                while self.slots.len() > self.retain {
                    self.slots.pop_front();
                }
            }
        }
        self.slots
            .back_mut()
            .expect("slot pushed above")
            .1
            .record_one(v);
        self.merged.record_one(v);
    }

    /// Merged distribution of the samples whose slot intersects
    /// `(now − window, now]`. Slot granularity applies: a slot is
    /// included as soon as any part of it falls inside the window.
    pub fn window(&self, now: SimTime, window: SimDuration) -> HistogramSnapshot {
        let now_us = now.as_micros();
        let start_us = now_us.saturating_sub(window.as_micros());
        let mut out = HistogramSnapshot::default();
        for (idx, slot) in &self.slots {
            let slot_start = idx * self.slot_width_us;
            if slot_start + self.slot_width_us > start_us && slot_start <= now_us {
                out.merge(slot);
            }
        }
        out
    }

    /// The all-time merged view (every sample ever recorded, including
    /// ones whose slots have been evicted from the ring).
    pub fn merged(&self) -> &HistogramSnapshot {
        &self.merged
    }

    /// Merge of the retained slots only (what the widest window query
    /// can still see). Equals [`WindowedHistogramCore::merged`] while no
    /// slot has been evicted — the consistency property under test.
    pub fn retained(&self) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for (_, slot) in &self.slots {
            out.merge(slot);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_is_monotone_and_total() {
        let mut last = 0usize;
        for v in 0..100_000u64 {
            let idx = bucket_index(v);
            assert!(idx >= last, "bucket index regressed at {v}");
            assert!(v <= bucket_upper(idx), "value {v} above bucket bound");
            last = idx;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn sparse_snapshot_round_trips_exactly() {
        let h = HistogramCore::new();
        for v in [0u64, 1, 17, 127, 1_000, 65_000, u64::MAX] {
            h.record_tagged(v, v ^ 0xdead);
        }
        let dense = h.snapshot();
        let sparse = h.snapshot_sparse();
        assert_eq!(sparse.to_snapshot(), dense);
        assert_eq!(dense.to_sparse(), sparse);
        assert_eq!(sparse.count(), dense.count());
        assert!(sparse.entries().len() < BUCKETS / 10);
        assert!(sparse.entries().windows(2).all(|w| w[0].0 < w[1].0));
        // An empty histogram round-trips too (min stays at the
        // "nothing recorded" sentinel).
        let empty = HistogramCore::new();
        assert_eq!(empty.snapshot_sparse().to_snapshot(), empty.snapshot());
    }

    #[test]
    fn linear_region_is_exact() {
        let h = HistogramCore::new();
        for v in [0u64, 1, 17, 127] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.max(), 127);
        assert_eq!(s.min(), 0);
        assert_eq!(s.count(), 4);
        assert_eq!(s.sum(), 145);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = HistogramCore::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn quantiles_bound_large_values() {
        let h = HistogramCore::new();
        h.record(1_000_000); // 1 s in µs
        let s = h.snapshot();
        // Bucket bound relative error is at most 1/16.
        assert!(s.quantile(0.5) >= 1_000_000);
        assert!(s.quantile(0.5) <= 1_000_000 + 1_000_000 / 16 + 1);
    }

    #[test]
    fn merge_matches_union() {
        let a = HistogramCore::new();
        let b = HistogramCore::new();
        let union = HistogramCore::new();
        for v in [3u64, 900, 44_000, 7] {
            a.record(v);
            union.record(v);
        }
        for v in [88u64, 1_000_000, 2] {
            b.record(v);
            union.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, union.snapshot());
    }

    #[test]
    fn merged_quantiles_match_a_single_combined_recording() {
        // Two disjoint latency populations — a fast mode and a heavy
        // tail — recorded separately, then merged. The merged snapshot's
        // p50/p90/p99 must equal those of one histogram that saw every
        // sample, exactly (same buckets ⇒ same quantile estimates).
        let a = HistogramCore::new();
        let b = HistogramCore::new();
        let combined = HistogramCore::new();
        for i in 0..900u64 {
            let v = 500 + i; // ~0.5–1.4 ms
            a.record(v);
            combined.record(v);
        }
        for i in 0..100u64 {
            let v = 40_000 + i * 700; // 40–110 ms tail
            b.record(v);
            combined.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        let reference = combined.snapshot();
        for q in [0.50, 0.90, 0.99] {
            assert_eq!(merged.quantile(q), reference.quantile(q), "q={q}");
        }
        assert_eq!(merged.count(), reference.count());
        assert_eq!(merged.sum(), reference.sum());
        assert_eq!(merged.min(), reference.min());
        assert_eq!(merged.max(), reference.max());
        // Merge order doesn't matter.
        let mut flipped = b.snapshot();
        flipped.merge(&a.snapshot());
        assert_eq!(flipped, merged);
    }

    #[test]
    fn count_over_is_conservative_and_merge_consistent() {
        let h = HistogramCore::new();
        for v in [10u64, 50, 100, 5_000, 9_000, 40_000] {
            h.record(v);
        }
        let s = h.snapshot();
        // Linear region: exact.
        assert_eq!(s.count_over(100), 3);
        assert_eq!(s.count_over(99), 4);
        // Log region: conservative by at most the threshold's bucket.
        assert_eq!(s.count_over(9_500), 1);
        assert_eq!(s.count_over(u64::MAX), 0);
        // Splitting the samples across two histograms and merging gives
        // the same answer: count_over is a pure function of the buckets.
        let a = HistogramCore::new();
        let b = HistogramCore::new();
        for v in [10u64, 5_000, 40_000] {
            a.record(v);
        }
        for v in [50u64, 100, 9_000] {
            b.record(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count_over(100), s.count_over(100));
    }

    #[test]
    fn windowed_slots_rotate_and_queries_respect_the_window() {
        // 100 ms slots, plenty retained. Three bursts a slot apart.
        let mut w = WindowedHistogramCore::new(SimDuration::from_millis(100), 64);
        for i in 0..3u64 {
            let at = SimTime::from_micros(i * 100_000 + 50_000);
            for k in 0..10u64 {
                w.record(at, 1_000 * (i + 1) + k);
            }
        }
        let now = SimTime::from_micros(250_000);
        // A window reaching back only into the newest slot sees only
        // the newest burst.
        let last = w.window(now, SimDuration::from_millis(50));
        assert_eq!(last.count(), 10);
        assert!(last.min() >= 3_000);
        // A full-span window sees everything.
        let all = w.window(now, SimDuration::from_millis(300));
        assert_eq!(all.count(), 30);
        // Far in the future, every slot has aged out of the window.
        let later = w.window(SimTime::from_secs(10), SimDuration::from_millis(100));
        assert_eq!(later.count(), 0);
    }

    #[test]
    fn windowed_merge_matches_a_plain_histogram_of_the_same_samples() {
        // The merged-vs-windowed consistency contract: recording one
        // deterministic sample stream through the windowed core and
        // through a plain histogram must agree exactly — for the
        // all-time merged view, the retained-slot merge (no eviction
        // here), and a window query covering the whole stream.
        let mut w = WindowedHistogramCore::new(SimDuration::from_millis(50), 256);
        let plain = HistogramCore::new();
        let mut t_us = 0u64;
        for i in 0..2_000u64 {
            t_us += 3_000 + (i * 7) % 1_100;
            let v = 200 + (i * i) % 90_000;
            w.record(SimTime::from_micros(t_us), v);
            plain.record(v);
        }
        let reference = plain.snapshot();
        assert_eq!(w.merged(), &reference, "all-time merge must be exact");
        assert_eq!(w.retained(), reference, "slot merge must be exact");
        let windowed = w.window(
            SimTime::from_micros(t_us),
            SimDuration::from_micros(t_us + 1),
        );
        assert_eq!(windowed, reference, "full-span window must be exact");
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(windowed.quantile(q), reference.quantile(q), "q={q}");
        }
    }

    #[test]
    fn windowed_eviction_drops_old_slots_but_keeps_the_merged_view() {
        let mut w = WindowedHistogramCore::new(SimDuration::from_millis(10), 2);
        for i in 0..5u64 {
            w.record(SimTime::from_millis(i * 10), 100 + i);
        }
        // Only the last two slots are retained...
        assert_eq!(w.retained().count(), 2);
        // ...but the merged view still has all five samples.
        assert_eq!(w.merged().count(), 5);
        assert_eq!(w.merged().min(), 100);
    }

    #[test]
    fn merge_tolerates_foreign_bucket_layouts_and_saturates() {
        let mut short = HistogramSnapshot {
            buckets: vec![1, 2],
            count: 3,
            sum: u64::MAX - 1,
            max: 1,
            min: 0,
            exemplar: None,
        };
        let long = HistogramSnapshot {
            buckets: vec![0, 0, 0, 5],
            count: 5,
            sum: 10,
            max: 9,
            min: 2,
            exemplar: None,
        };
        short.merge(&long);
        assert_eq!(short.buckets, vec![1, 2, 0, 5]);
        assert_eq!(short.count, 8);
        assert_eq!(short.sum, u64::MAX, "sum must saturate, not wrap");
        assert_eq!(short.max(), 9);
        assert_eq!(short.min(), 0);
    }

    #[test]
    fn exemplar_tracks_the_worst_tagged_sample() {
        let h = HistogramCore::new();
        // Untagged samples never mint an exemplar.
        h.record(99_999);
        assert_eq!(h.snapshot().exemplar(), None);
        h.record_tagged(1_000, 7);
        h.record_tagged(5_000, 42);
        h.record_tagged(2_000, 8);
        let s = h.snapshot();
        let ex = s.exemplar().expect("exemplar set");
        assert_eq!((ex.value, ex.tag), (5_000, 42));
        // Snapshots do not reset it: the worst frame survives mid-run
        // flight-recorder snapshots.
        let again = h.snapshot().exemplar().expect("still set");
        assert_eq!(again.tag, 42);
    }

    #[test]
    fn exemplar_merge_keeps_the_worse_side() {
        let a = HistogramCore::new();
        let b = HistogramCore::new();
        a.record_tagged(10_000, 3);
        b.record_tagged(90_000, 11);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.exemplar().map(|e| e.tag), Some(11));
        // Order independence.
        let mut flipped = b.snapshot();
        flipped.merge(&a.snapshot());
        assert_eq!(flipped.exemplar(), m.exemplar());
        // Merging an untagged side preserves the exemplar.
        let untagged = HistogramCore::new();
        untagged.record(500_000);
        m.merge(&untagged.snapshot());
        assert_eq!(m.exemplar().map(|e| e.tag), Some(11));
    }
}
