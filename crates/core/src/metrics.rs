//! Evaluation metrics (Section VII-B).
//!
//! * **Median FPS** and **FPS stability** come from
//!   [`gbooster_sim::display::FpsRecorder`].
//! * **Average response time** follows Eq. 5: `t_r = 1000/FPS + t_p`,
//!   where `t_p` is the per-frame offloading overhead (network transfers
//!   and image decoding; encoding overlaps transmission tile-by-tile and
//!   service rendering overlaps the next frame's CPU work). For local
//!   execution `t_p = 0` and `t_r = 1000/FPS` exactly as the paper
//!   defines.

use gbooster_sim::time::SimDuration;

/// Accumulates the per-frame offloading overhead `t_p` of Eq. 5.
#[derive(Clone, Debug, Default)]
pub struct ResponseTracker {
    total_tp: SimDuration,
    frames: u64,
    degraded_frames: u64,
}

impl ResponseTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one frame's overhead components.
    pub fn record(
        &mut self,
        uplink: SimDuration,
        downlink: SimDuration,
        decode: SimDuration,
        degraded: bool,
    ) {
        self.total_tp += uplink + downlink + decode;
        self.frames += 1;
        if degraded {
            self.degraded_frames += 1;
        }
    }

    /// Mean `t_p` in milliseconds (0 when no frames were offloaded).
    pub fn mean_tp_ms(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.total_tp.as_millis_f64() / self.frames as f64
        }
    }

    /// Frames recorded.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Fraction of frames degraded by radio mispredictions.
    pub fn degraded_fraction(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.degraded_frames as f64 / self.frames as f64
        }
    }

    /// Eq. 5: response time in milliseconds at the given median FPS.
    pub fn response_time_ms(&self, median_fps: f64) -> f64 {
        if median_fps <= 0.0 {
            return f64::INFINITY;
        }
        1000.0 / median_fps + self.mean_tp_ms()
    }
}

/// CPU-utilization bookkeeping for the overhead analysis (Section VII-G).
#[derive(Clone, Debug, Default)]
pub struct CpuLedger {
    busy_core_secs: f64,
    cores: u32,
}

impl CpuLedger {
    /// Creates a ledger for a `cores`-core CPU.
    pub fn new(cores: u32) -> Self {
        CpuLedger {
            busy_core_secs: 0.0,
            cores,
        }
    }

    /// Adds `secs` of single-core busy time.
    ///
    /// Busy time cannot be negative; a negative argument indicates a
    /// caller bug (e.g. a reversed time subtraction), so it trips a debug
    /// assertion and is clamped to zero in release builds rather than
    /// silently draining the ledger.
    pub fn add_busy(&mut self, secs: f64) {
        debug_assert!(
            secs >= 0.0,
            "negative busy time {secs} — reversed duration subtraction?"
        );
        self.busy_core_secs += secs.max(0.0);
    }

    /// Whole-chip utilization over `elapsed_secs` of wall time, in [0, 1].
    pub fn utilization(&self, elapsed_secs: f64) -> f64 {
        if elapsed_secs <= 0.0 || self.cores == 0 {
            0.0
        } else {
            (self.busy_core_secs / (elapsed_secs * self.cores as f64)).clamp(0.0, 1.0)
        }
    }

    /// Total busy core-seconds.
    pub fn busy_core_secs(&self) -> f64 {
        self.busy_core_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_response_is_reciprocal_fps() {
        let t = ResponseTracker::new();
        assert!((t.response_time_ms(25.0) - 40.0).abs() < 1e-9);
        assert_eq!(t.mean_tp_ms(), 0.0);
    }

    #[test]
    fn tp_adds_on_top_of_frame_interval() {
        let mut t = ResponseTracker::new();
        t.record(
            SimDuration::from_millis(2),
            SimDuration::from_millis(5),
            SimDuration::from_millis(3),
            false,
        );
        assert!((t.mean_tp_ms() - 10.0).abs() < 1e-9);
        assert!((t.response_time_ms(40.0) - 35.0).abs() < 1e-9);
    }

    #[test]
    fn degraded_fraction_counts() {
        let mut t = ResponseTracker::new();
        t.record(
            SimDuration::ZERO,
            SimDuration::ZERO,
            SimDuration::ZERO,
            true,
        );
        t.record(
            SimDuration::ZERO,
            SimDuration::ZERO,
            SimDuration::ZERO,
            false,
        );
        assert!((t.degraded_fraction() - 0.5).abs() < 1e-9);
        assert_eq!(t.frames(), 2);
    }

    #[test]
    fn zero_fps_yields_infinite_response() {
        let t = ResponseTracker::new();
        assert!(t.response_time_ms(0.0).is_infinite());
    }

    #[test]
    fn cpu_ledger_utilization() {
        let mut c = CpuLedger::new(4);
        c.add_busy(10.0);
        assert!((c.utilization(10.0) - 0.25).abs() < 1e-9);
        assert_eq!(c.utilization(0.0), 0.0);
        assert!((c.busy_core_secs() - 10.0).abs() < 1e-12);
        // Saturates at 1.
        c.add_busy(1000.0);
        assert_eq!(c.utilization(1.0), 1.0);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "negative busy time"))]
    fn negative_busy_time_is_rejected() {
        let mut c = CpuLedger::new(4);
        c.add_busy(-1.0);
        // Release builds clamp instead of panicking: the ledger never
        // goes negative and utilization stays in [0, 1].
        assert_eq!(c.busy_core_secs(), 0.0);
        assert_eq!(c.utilization(10.0), 0.0);
    }
}
