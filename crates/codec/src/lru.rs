//! The LRU command cache (Section V-A).
//!
//! "The sequences of graphics commands to generate consecutive frames tend
//! to contain huge similarities. … We eliminate the redundancy by applying
//! the LRU caching algorithm; the system caches the latest and frequent
//! commands on the user device and the service device. Thereby, the user
//! device can skip transmitting the commands which are cached."
//!
//! [`CommandCache`] is a constant-time LRU keyed by a 64-bit hash of the
//! encoded command. The sender checks the cache before transmitting: a hit
//! becomes a tiny [`CacheToken::Ref`]; a miss inserts and sends the full
//! bytes. Because both ends apply the *same* deterministic update rule,
//! the receiver's cache stays synchronized and can expand references —
//! verified by the mirror tests below.

use std::collections::HashMap;

use gbooster_telemetry::{names, Counter, Registry};

/// What the sender should transmit for one command.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CacheToken {
    /// Receiver already holds these bytes: send only the 8-byte key.
    Ref(u64),
    /// New content: send the full payload (receiver will cache it too).
    Full(Vec<u8>),
}

impl CacheToken {
    /// Bytes this token costs on the wire (1 tag byte + body).
    pub fn wire_bytes(&self) -> usize {
        match self {
            CacheToken::Ref(_) => 1 + 8,
            CacheToken::Full(data) => 1 + 4 + data.len(),
        }
    }

    /// True when the cache replaced the body with a reference (a hit).
    pub fn is_ref(&self) -> bool {
        matches!(self, CacheToken::Ref(_))
    }
}

/// Doubly-linked-list node indices for O(1) LRU maintenance.
const NIL: usize = usize::MAX;

#[derive(Clone)]
struct Node {
    key: u64,
    value: Vec<u8>,
    prev: usize,
    next: usize,
}

/// A fixed-capacity LRU cache of encoded commands.
///
/// # Examples
///
/// ```
/// use gbooster_codec::lru::{CacheToken, CommandCache};
///
/// let mut sender = CommandCache::new(128);
/// let cmd = b"glUseProgram(3)".to_vec();
/// assert!(matches!(sender.offer(&cmd), CacheToken::Full(_)));
/// assert!(matches!(sender.offer(&cmd), CacheToken::Ref(_)));
/// ```
///
/// The cache is `Clone`: a rejoining service device is brought current
/// by copying a synchronized peer's cache state in one resync transfer
/// instead of replaying the whole token history.
#[derive(Clone)]
pub struct CommandCache {
    capacity: usize,
    map: HashMap<u64, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recent
    tail: usize, // least recent
    hits: u64,
    misses: u64,
    counters: Option<(Counter, Counter)>,
}

impl std::fmt::Debug for CommandCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommandCache")
            .field("capacity", &self.capacity)
            .field("len", &self.map.len())
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .finish()
    }
}

/// Stable 64-bit content hash (FNV-1a) used as the cache key.
pub fn content_key(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl CommandCache {
    /// Creates a cache holding at most `capacity` distinct commands.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be nonzero");
        CommandCache {
            capacity,
            map: HashMap::with_capacity(capacity),
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
            counters: None,
        }
    }

    /// Mirrors hit/miss events into `registry` (under
    /// [`names::forward::CACHE_HITS`] / `CACHE_MISSES`) from now on;
    /// prior events are backfilled so the counters always equal
    /// [`CommandCache::hits`] / [`CommandCache::misses`]. Attach only on
    /// the sender side — the receiver replays the same token stream and
    /// would double-count.
    pub fn attach_registry(&mut self, registry: &Registry) {
        let hits = registry.counter(names::forward::CACHE_HITS);
        let misses = registry.counter(names::forward::CACHE_MISSES);
        hits.add(self.hits);
        misses.add(self.misses);
        self.counters = Some((hits, misses));
    }

    /// Sender side: offers a command for transmission. Returns the token
    /// to put on the wire and updates the cache deterministically.
    pub fn offer(&mut self, encoded: &[u8]) -> CacheToken {
        gbooster_telemetry::prof_alloc_scope!(names::host::CACHE);
        let key = content_key(encoded);
        if let Some(&idx) = self.map.get(&key) {
            self.hits += 1;
            if let Some((hits, _)) = &self.counters {
                hits.inc();
            }
            self.touch(idx);
            CacheToken::Ref(key)
        } else {
            self.misses += 1;
            if let Some((_, misses)) = &self.counters {
                misses.inc();
            }
            self.insert(key, encoded.to_vec());
            CacheToken::Full(encoded.to_vec())
        }
    }

    /// Receiver side: accepts a token and returns the decoded bytes.
    ///
    /// Returns `None` for a [`CacheToken::Ref`] the receiver does not hold
    /// — a protocol desynchronization (impossible when both sides start
    /// empty and see the same token stream).
    pub fn accept(&mut self, token: &CacheToken) -> Option<Vec<u8>> {
        gbooster_telemetry::prof_alloc_scope!(names::host::CACHE);
        match token {
            CacheToken::Ref(key) => {
                let idx = *self.map.get(key)?;
                self.touch(idx);
                Some(self.nodes[idx].value.clone())
            }
            CacheToken::Full(data) => {
                let key = content_key(data);
                if let Some(&idx) = self.map.get(&key) {
                    self.touch(idx);
                } else {
                    self.insert(key, data.clone());
                }
                Some(data.clone())
            }
        }
    }

    /// Current number of cached commands.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]` (0 when nothing was offered).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Bytes resident in cached values (memory-overhead accounting).
    pub fn resident_bytes(&self) -> usize {
        self.map
            .values()
            .map(|&idx| self.nodes[idx].value.len())
            .sum()
    }

    fn insert(&mut self, key: u64, value: Vec<u8>) {
        if self.map.len() == self.capacity {
            self.evict_lru();
        }
        let idx = if let Some(idx) = self.free.pop() {
            self.nodes[idx] = Node {
                key,
                value,
                prev: NIL,
                next: NIL,
            };
            idx
        } else {
            self.nodes.push(Node {
                key,
                value,
                prev: NIL,
                next: NIL,
            });
            self.nodes.len() - 1
        };
        self.push_front(idx);
        self.map.insert(key, idx);
    }

    fn evict_lru(&mut self) {
        let tail = self.tail;
        if tail == NIL {
            return;
        }
        self.unlink(tail);
        let key = self.nodes[tail].key;
        self.map.remove(&key);
        self.nodes[tail].value = Vec::new();
        self.free.push(tail);
    }

    fn touch(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.push_front(idx);
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_offer_is_a_ref() {
        let mut c = CommandCache::new(4);
        let cmd = b"cmd".to_vec();
        assert!(matches!(c.offer(&cmd), CacheToken::Full(_)));
        let tok = c.offer(&cmd);
        assert_eq!(tok, CacheToken::Ref(content_key(&cmd)));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = CommandCache::new(2);
        c.offer(b"a");
        c.offer(b"b");
        c.offer(b"a"); // refresh a; b is now LRU
        c.offer(b"c"); // evicts b
        assert!(matches!(c.offer(b"a"), CacheToken::Ref(_)));
        assert!(matches!(c.offer(b"c"), CacheToken::Ref(_)));
        assert!(matches!(c.offer(b"b"), CacheToken::Full(_)), "b evicted");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn sender_and_receiver_stay_synchronized() {
        let mut sender = CommandCache::new(8);
        let mut receiver = CommandCache::new(8);
        // A realistic command mix: 20 distinct commands, heavy reuse,
        // enough distinct values to force evictions on both sides.
        let commands: Vec<Vec<u8>> = (0..20u8).map(|i| vec![i; 10]).collect();
        let mut order = Vec::new();
        for round in 0..10usize {
            for (i, cmd) in commands.iter().enumerate() {
                if (i + round) % 3 != 0 {
                    order.push(cmd.clone());
                }
            }
        }
        for cmd in &order {
            let token = sender.offer(cmd);
            let received = receiver
                .accept(&token)
                .expect("receiver must expand every token");
            assert_eq!(&received, cmd);
        }
        assert_eq!(sender.len(), receiver.len());
    }

    #[test]
    fn ref_for_unknown_key_is_detected() {
        let mut receiver = CommandCache::new(4);
        assert_eq!(receiver.accept(&CacheToken::Ref(0xdead)), None);
    }

    #[test]
    fn wire_bytes_reflect_savings() {
        let full = CacheToken::Full(vec![0u8; 1000]);
        let r = CacheToken::Ref(42);
        assert_eq!(full.wire_bytes(), 1005);
        assert_eq!(r.wire_bytes(), 9);
    }

    #[test]
    fn resident_bytes_bounded_by_capacity() {
        let mut c = CommandCache::new(3);
        for i in 0..100u32 {
            c.offer(&i.to_le_bytes());
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.resident_bytes(), 12);
    }

    #[test]
    fn hit_rate_on_frame_like_reuse_is_high() {
        // 50 commands per frame, 95% identical across frames: the paper's
        // "huge similarities" scenario.
        let mut c = CommandCache::new(256);
        let stable: Vec<Vec<u8>> = (0..48u8).map(|i| vec![i; 16]).collect();
        for frame in 0..100u32 {
            for cmd in &stable {
                c.offer(cmd);
            }
            // Two volatile commands per frame.
            c.offer(&frame.to_le_bytes());
            c.offer(&(frame * 7 + 1).to_le_bytes());
        }
        assert!(c.hit_rate() > 0.9, "hit rate {}", c.hit_rate());
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_panics() {
        let _ = CommandCache::new(0);
    }

    #[test]
    fn cloned_receiver_cache_tracks_the_sender_from_the_clone_point() {
        let mut sender = CommandCache::new(32);
        let mut receiver = CommandCache::new(32);
        for i in 0..20u8 {
            let token = sender.offer(&[i; 6]);
            receiver.accept(&token).unwrap();
        }
        // A late joiner cloned from the live receiver must expand every
        // subsequent token, including refs to pre-clone content.
        let mut joiner = receiver.clone();
        for i in 0..20u8 {
            let token = sender.offer(&[i; 6]);
            assert!(matches!(token, CacheToken::Ref(_)));
            assert_eq!(joiner.accept(&token).as_deref(), Some(&[i; 6][..]));
        }
        assert_eq!(joiner.len(), sender.len());
    }
}
