//! The compact trace context carried inside RUDP datagrams.
//!
//! Cross-device tracing needs every datagram to say which frame (and
//! which uplink attempt) it belongs to, so the service device can tag
//! its spans and the user device can stitch them back into the right
//! frame tree. [`TraceContext`] is the 20-byte little-endian triple
//! `(session id, frame id, span id)` that rides in each datagram
//! header. Retransmissions reuse the original datagram's context
//! verbatim — a retransmit is the *same* logical send, so it must
//! attach to the same span.

/// Identifies one frame's uplink within one session.
///
/// `session_id` disambiguates traces from concurrent or restarted
/// sessions, `frame_id` is the display sequence number the spans stitch
/// under, and `span_id` distinguishes multiple traced transfers within
/// one frame (uplink vs. downlink, or future parallel streams).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceContext {
    /// Session identity (derived from the session seed).
    pub session_id: u64,
    /// Frame display sequence, 0-based.
    pub frame_id: u64,
    /// Transfer index within the frame.
    pub span_id: u32,
}

impl TraceContext {
    /// The absent context: all zeros. Untraced datagrams carry this.
    pub const NONE: TraceContext = TraceContext {
        session_id: 0,
        frame_id: 0,
        span_id: 0,
    };

    /// Encoded size on the wire.
    pub const WIRE_BYTES: usize = 20;

    /// Creates a context for `frame_id` of `session_id`.
    pub fn new(session_id: u64, frame_id: u64, span_id: u32) -> Self {
        TraceContext {
            session_id,
            frame_id,
            span_id,
        }
    }

    /// True for the all-zero "no context" value.
    pub fn is_none(&self) -> bool {
        *self == Self::NONE
    }

    /// Serializes to the 20-byte wire form (all fields little-endian).
    pub fn encode(&self) -> [u8; Self::WIRE_BYTES] {
        let mut out = [0u8; Self::WIRE_BYTES];
        out[0..8].copy_from_slice(&self.session_id.to_le_bytes());
        out[8..16].copy_from_slice(&self.frame_id.to_le_bytes());
        out[16..20].copy_from_slice(&self.span_id.to_le_bytes());
        out
    }

    /// Parses the wire form; `None` if `bytes` is too short.
    pub fn decode(bytes: &[u8]) -> Option<TraceContext> {
        if bytes.len() < Self::WIRE_BYTES {
            return None;
        }
        Some(TraceContext {
            session_id: u64::from_le_bytes(bytes[0..8].try_into().ok()?),
            frame_id: u64::from_le_bytes(bytes[8..16].try_into().ok()?),
            span_id: u32::from_le_bytes(bytes[16..20].try_into().ok()?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trip_is_exact() {
        let ctx = TraceContext::new(0xDEAD_BEEF_0102_0304, 41, 2);
        let wire = ctx.encode();
        assert_eq!(wire.len(), TraceContext::WIRE_BYTES);
        assert_eq!(TraceContext::decode(&wire), Some(ctx));
    }

    #[test]
    fn decode_rejects_short_input() {
        let wire = TraceContext::new(1, 2, 3).encode();
        assert_eq!(TraceContext::decode(&wire[..19]), None);
        assert_eq!(TraceContext::decode(&[]), None);
    }

    #[test]
    fn decode_ignores_trailing_bytes() {
        let ctx = TraceContext::new(7, 8, 9);
        let mut wire = ctx.encode().to_vec();
        wire.extend_from_slice(&[0xAA; 4]);
        assert_eq!(TraceContext::decode(&wire), Some(ctx));
    }

    #[test]
    fn none_is_all_zeros_and_default() {
        assert!(TraceContext::NONE.is_none());
        assert!(TraceContext::default().is_none());
        assert_eq!(TraceContext::NONE.encode(), [0u8; 20]);
        assert!(!TraceContext::new(1, 0, 0).is_none());
    }
}
