//! Deterministic chaos matrix for the session-resilience path: the
//! health-monitored pool, rejoin-via-resync, and the local-render
//! fallback (docs/RESILIENCE.md).
//!
//! Three fault shapes — a node flap (kill then revive), a probe-link
//! partition window, and a total pool loss followed by recovery — each
//! across {1, 2, 4} service nodes, each run twice from the same seed.
//! Every scenario must present frames strictly in order with no gaps or
//! duplicates, keep the surviving-and-rejoined GL replicas
//! bit-identical, engage/release the fallback without oscillating, and
//! reproduce byte-for-byte on the second run. Run with
//! `--test-threads=1` in CI to keep failure output readable.

use gbooster::core::config::{
    ExecutionMode, FaultInjection, LinkPartition, NodeEvent, OffloadConfig, SessionConfig,
};
use gbooster::core::session::{Session, SessionReport};
use gbooster::sim::device::DeviceSpec;
use gbooster::telemetry::{names, Fault};
use gbooster::workload::games::GameTitle;

fn pool(nodes: usize) -> Vec<DeviceSpec> {
    let all = [
        DeviceSpec::nvidia_shield(),
        DeviceSpec::dell_optiplex_9010(),
        DeviceSpec::dell_m4600(),
        DeviceSpec::minix_neo_u1(),
    ];
    all[..nodes].to_vec()
}

fn scenario(nodes: usize, seed: u64, faults: FaultInjection) -> SessionConfig {
    SessionConfig::builder(GameTitle::g2_modern_combat(), DeviceSpec::nexus5())
        .duration_secs(6)
        .seed(seed)
        .mode(ExecutionMode::Offloaded(OffloadConfig {
            service_devices: pool(nodes),
            faults,
            ..OffloadConfig::default()
        }))
        .build()
}

/// A node drops off the network and comes back: probes detect the
/// death, the node rejoins via one state resync once it answers again.
fn flap(nodes: usize) -> FaultInjection {
    let victim = nodes - 1;
    FaultInjection {
        node_events: vec![
            NodeEvent::Kill {
                frame: 40,
                node: victim,
            },
            NodeEvent::Revive {
                frame: 120,
                node: victim,
            },
        ],
        ..FaultInjection::default()
    }
}

/// The node itself stays up but its probe link is partitioned for a
/// window: the health monitor must declare it dead (its stale GL state
/// is untrusted) and resync it when the partition heals.
fn partition(_nodes: usize) -> FaultInjection {
    FaultInjection {
        partitions: vec![LinkPartition {
            node: 0,
            from_frame: 40,
            until_frame: 110,
        }],
        ..FaultInjection::default()
    }
}

/// Every node dies at once, then the whole pool recovers: the engine
/// must flip to local rendering immediately, keep presenting, and
/// re-offload after the rejoins and the release hysteresis.
fn all_dead_then_recover(nodes: usize) -> FaultInjection {
    let mut node_events = Vec::new();
    for node in 0..nodes {
        node_events.push(NodeEvent::Kill { frame: 50, node });
        node_events.push(NodeEvent::Revive { frame: 150, node });
    }
    FaultInjection {
        node_events,
        ..FaultInjection::default()
    }
}

/// Every injected fault must correlate into exactly one incident of the
/// expected kind: the live-ops layer folds the detector fault, the
/// health transitions around it, and any concurrent alerts into a
/// single causally-ordered record (docs/OBSERVABILITY.md).
fn assert_incident(report: &SessionReport, expected_kind: &str, label: &str) {
    let kinds: Vec<&str> = report.ops.incidents.iter().map(|i| i.kind).collect();
    assert_eq!(
        kinds.len(),
        1,
        "{label}: exactly one correlated incident, got {kinds:?}"
    );
    let inc = &report.ops.incidents[0];
    assert_eq!(inc.kind, expected_kind, "{label}: incident kind");
    assert!(
        !inc.health_transitions().is_empty(),
        "{label}: the incident must link the health transitions around it"
    );
    assert!(
        !inc.attribution.is_empty(),
        "{label}: the attribution diff over the violation window must move"
    );
    assert!(
        inc.flight_fault().is_some(),
        "{label}: the flight dump must land on the incident timeline"
    );
}

/// Invariants every chaos scenario must uphold.
fn assert_invariants(report: &SessionReport, label: &str) {
    assert!(report.frames > 0, "{label}: session must present frames");

    // Every frame presented exactly once, in order, with no gaps: the
    // trace log records frames in display order.
    let seqs: Vec<u64> = report.trace.frames().iter().map(|f| f.seq).collect();
    assert_eq!(
        seqs.len() as u64,
        report.frames,
        "{label}: one trace per frame"
    );
    for (i, &seq) in seqs.iter().enumerate() {
        assert_eq!(
            seq, i as u64,
            "{label}: presentation must be gapless, in order, duplicate-free"
        );
    }

    // Surviving and rejoined replicas end bit-identical: the resync
    // path must hand back exactly the reference state.
    assert!(report.state_consistent, "{label}: GL replicas must agree");

    // The fallback never oscillates: at most one engagement per fault
    // shape (hysteresis + release dwell).
    assert!(
        report
            .telemetry
            .counter(names::health::FALLBACK_ENGAGEMENTS)
            <= 1,
        "{label}: fallback must not oscillate"
    );
}

fn assert_reproducible(a: &SessionReport, b: &SessionReport, label: &str) {
    assert_eq!(
        a.frame_trace_jsonl(),
        b.frame_trace_jsonl(),
        "{label}: frame traces must be byte-identical across runs"
    );
    assert_eq!(a.frames, b.frames, "{label}");
    assert_eq!(a.per_device_requests, b.per_device_requests, "{label}");
    assert_eq!(a.median_fps.to_bits(), b.median_fps.to_bits(), "{label}");
    assert_eq!(a.uplink_bytes, b.uplink_bytes, "{label}");
    assert_eq!(a.downlink_bytes, b.downlink_bytes, "{label}");
    assert_eq!(
        a.telemetry.counter(names::health::REJOINS),
        b.telemetry.counter(names::health::REJOINS),
        "{label}"
    );
    assert_eq!(
        a.telemetry.counter(names::session::FRAMES_LOCAL),
        b.telemetry.counter(names::session::FRAMES_LOCAL),
        "{label}"
    );
    assert_eq!(
        a.incidents_jsonl(),
        b.incidents_jsonl(),
        "{label}: incident records must be byte-identical across runs"
    );
    assert_eq!(
        a.ops_events_jsonl(),
        b.ops_events_jsonl(),
        "{label}: the ops journal must be byte-identical across runs"
    );
}

fn run_twice(nodes: usize, seed: u64, faults: FaultInjection, label: &str) -> SessionReport {
    let config = scenario(nodes, seed, faults);
    let first = Session::run(&config);
    assert_invariants(&first, label);
    let second = Session::run(&config);
    assert_reproducible(&first, &second, label);
    first
}

#[test]
fn node_flap_is_detected_rejoined_and_reproducible() {
    for (i, nodes) in [1usize, 2, 4].into_iter().enumerate() {
        let label = format!("flap, {nodes} node(s)");
        let report = run_twice(nodes, 11_000 + i as u64, flap(nodes), &label);
        // Killing the only node is a total pool loss; with survivors it
        // is a single-node loss. Either way: exactly one incident.
        let expected = if nodes == 1 {
            "all_nodes_lost"
        } else {
            "node_loss"
        };
        assert_incident(&report, expected, &label);
        assert!(
            report.telemetry.counter(names::sched::NODE_FAILURES) >= 1,
            "{label}: the kill must be detected"
        );
        assert_eq!(
            report.telemetry.counter(names::health::REJOINS),
            1,
            "{label}: the revived node must resync exactly once"
        );
        assert!(
            report.telemetry.counter(names::health::RESYNC_BYTES) > 0,
            "{label}: the resync must cost wire bytes"
        );
        if nodes == 1 {
            // Killing the only node empties the pool: frames must keep
            // presenting from the phone GPU until the rejoin.
            assert!(
                report.telemetry.counter(names::session::FRAMES_LOCAL) > 0,
                "{label}: fallback must carry the outage"
            );
        } else {
            assert_eq!(
                report
                    .telemetry
                    .counter(names::health::FALLBACK_ENGAGEMENTS),
                0,
                "{label}: survivors must absorb the load without fallback"
            );
        }
    }
}

#[test]
fn probe_partition_window_evicts_then_resyncs_the_node() {
    for (i, nodes) in [1usize, 2, 4].into_iter().enumerate() {
        let label = format!("partition, {nodes} node(s)");
        let report = run_twice(nodes, 12_000 + i as u64, partition(nodes), &label);
        let expected = if nodes == 1 {
            "all_nodes_lost"
        } else {
            "node_loss"
        };
        assert_incident(&report, expected, &label);
        assert!(
            report.telemetry.counter(names::sched::NODE_FAILURES) >= 1,
            "{label}: the probe misses must evict the node"
        );
        assert!(
            report.telemetry.counter(names::health::PROBE_TIMEOUTS) >= 3,
            "{label}: the eviction must come from the probe walk"
        );
        assert_eq!(
            report.telemetry.counter(names::health::REJOINS),
            1,
            "{label}: the healed node must resync exactly once"
        );
    }
}

#[test]
fn total_pool_loss_falls_back_locally_and_recovers() {
    for (i, nodes) in [1usize, 2, 4].into_iter().enumerate() {
        let label = format!("all-dead, {nodes} node(s)");
        let report = run_twice(
            nodes,
            13_000 + i as u64,
            all_dead_then_recover(nodes),
            &label,
        );
        assert!(
            report.telemetry.counter(names::session::FRAMES_LOCAL) > 0,
            "{label}: the outage must be carried by local rendering"
        );
        assert_eq!(
            report
                .telemetry
                .counter(names::health::FALLBACK_ENGAGEMENTS),
            1,
            "{label}: one engagement, one release — no oscillation"
        );
        assert_eq!(
            report.telemetry.counter(names::health::REJOINS),
            nodes as u64,
            "{label}: every node must rejoin via resync"
        );
        // Offloading must actually resume after the recovery: local
        // frames cover the outage, not the remainder of the session.
        assert!(
            report.telemetry.counter(names::session::FRAMES_LOCAL) < report.frames,
            "{label}: offloading must resume after recovery"
        );
        // The highest-ranked fault wins the first dump: a total pool
        // loss, not the per-node losses it subsumes.
        let dump = report
            .flight
            .as_ref()
            .expect("total pool loss must trigger a flight dump");
        assert_eq!(
            dump.fault,
            Fault::AllNodesLost,
            "{label}: total loss must outrank its symptoms"
        );
        assert!(
            report.telemetry.gauge(names::health::FALLBACK_SECS) > 0.0,
            "{label}: time-in-fallback must be accounted"
        );
        assert_incident(&report, "all_nodes_lost", &label);
    }
}

#[test]
fn capability_brownout_opens_a_node_degraded_incident() {
    let faults = FaultInjection {
        node_events: vec![NodeEvent::Degrade {
            frame: 40,
            node: 0,
            factor: 0.5,
        }],
        ..FaultInjection::default()
    };
    let label = "degrade, 2 nodes";
    let report = run_twice(2, 14_000, faults, label);
    let kinds: Vec<&str> = report.ops.incidents.iter().map(|i| i.kind).collect();
    assert_eq!(
        kinds.len(),
        1,
        "{label}: exactly one correlated incident, got {kinds:?}"
    );
    // A brownout moves no health state (the node stays responsive), so
    // the incident carries no transitions — just the degradation event
    // and whatever the burn windows did around it.
    assert_eq!(report.ops.incidents[0].kind, "node_degraded", "{label}");
    assert!(
        !report.ops.incidents[0].attribution.is_empty(),
        "{label}: attribution must move over the violation window"
    );
}

/// Fabric chaos: kill a pool node with 64 sessions in flight. Every
/// session either re-dispatches its orphaned work to a survivor or
/// falls back to its own GPU, exactly one incident is opened per
/// admitted tenant, presentation stays gapless everywhere, and the
/// whole disaster replays byte-for-byte.
#[test]
fn node_kill_under_sixty_four_sessions_recovers_every_tenant() {
    use gbooster::core::fabric::{FabricConfig, PoolEvent, SessionManager};
    use gbooster::sim::time::{SimDuration, SimTime};

    let mut cfg = FabricConfig::uniform(
        64,
        vec![
            DeviceSpec::nvidia_shield(),
            DeviceSpec::dell_optiplex_9010(),
        ],
        64_001,
    );
    cfg.duration = SimDuration::from_secs(4);
    // Light streams so a two-node pool admits all 64 sessions.
    for t in &mut cfg.tenants {
        t.fps = 10.0;
    }
    cfg.events.push(PoolEvent::Kill {
        at: SimTime::from_secs(2),
        node: 0,
    });
    let label = "fabric kill, 64 sessions";

    let report = SessionManager::run(&cfg).unwrap();
    let replay = SessionManager::run(&cfg).unwrap();
    assert_eq!(
        report.slo_json(),
        replay.slo_json(),
        "{label}: chaos must replay byte-for-byte"
    );

    assert_eq!(report.admitted, 64, "{label}: the pool must admit all 64");
    // Exactly one incident per admitted tenant, all node-loss.
    assert_eq!(report.incidents.len(), 64, "{label}");
    for t in &report.tenants {
        assert_eq!(t.incidents, 1, "{label}: t{} incident count", t.tenant);
    }
    assert!(
        report
            .incidents
            .iter()
            .all(|i| i.kind == "node_loss" && i.at == SimTime::from_secs(2)),
        "{label}: a survivor remains, so incidents are node-loss"
    );
    assert_eq!(
        report.telemetry.counter(names::fabric::INCIDENTS),
        64,
        "{label}"
    );

    // Every orphaned frame re-dispatched (one node: at most one frame
    // was in service at the kill) and every session stayed gapless —
    // remotely on the survivor or locally on its own GPU.
    assert!(report.redispatches >= 1, "{label}: orphan must re-dispatch");
    for t in &report.tenants {
        assert_eq!(
            t.frames_presented, t.frames_issued,
            "{label}: t{} dropped frames",
            t.tenant
        );
        assert!(t.gapless, "{label}: t{} presented out of order", t.tenant);
    }
    let total_local: u64 = report.tenants.iter().map(|t| t.frames_local).sum();
    let total_remote: u64 = report.frames_presented - total_local;
    assert!(
        total_remote > 0,
        "{label}: the surviving node must keep serving"
    );
}

/// Fabric chaos, total pool loss: killing every node flips all 64
/// sessions to local rendering with a pool-lost incident each, and the
/// pool's recovery lets sessions resume remote service.
#[test]
fn total_pool_loss_flips_every_fabric_session_local_then_recovers() {
    use gbooster::core::fabric::{FabricConfig, PoolEvent, SessionManager};
    use gbooster::sim::time::{SimDuration, SimTime};

    let mut cfg = FabricConfig::uniform(
        64,
        vec![
            DeviceSpec::nvidia_shield(),
            DeviceSpec::dell_optiplex_9010(),
        ],
        64_002,
    );
    cfg.duration = SimDuration::from_secs(4);
    for t in &mut cfg.tenants {
        t.fps = 10.0;
    }
    cfg.events.push(PoolEvent::Kill {
        at: SimTime::from_secs(1),
        node: 0,
    });
    cfg.events.push(PoolEvent::Kill {
        at: SimTime::from_secs(1),
        node: 1,
    });
    cfg.events.push(PoolEvent::Revive {
        at: SimTime::from_secs(2),
        node: 0,
    });
    let label = "fabric pool loss, 64 sessions";

    let report = SessionManager::run(&cfg).unwrap();
    let replay = SessionManager::run(&cfg).unwrap();
    assert_eq!(report.slo_json(), replay.slo_json(), "{label}");

    // Two kills → two incidents per tenant; the second is pool-lost.
    assert_eq!(report.incidents.len(), 128, "{label}");
    assert!(
        report.incidents.iter().any(|i| i.kind == "pool_lost"),
        "{label}: the second kill empties the pool"
    );
    for t in &report.tenants {
        assert_eq!(t.incidents, 2, "{label}: t{}", t.tenant);
        assert_eq!(
            t.frames_presented, t.frames_issued,
            "{label}: t{}",
            t.tenant
        );
        assert!(t.gapless, "{label}: t{}", t.tenant);
        assert!(
            t.frames_local > 0,
            "{label}: t{} must bridge the outage locally",
            t.tenant
        );
    }
    // Remote service resumes after the revival.
    let total_local: u64 = report.tenants.iter().map(|t| t.frames_local).sum();
    assert!(
        report.frames_presented > total_local,
        "{label}: offloading must resume once node 0 rejoins"
    );
}

/// A two-node 64-session fabric config shared by the migration chaos
/// matrix: light 10 fps streams so admission takes everyone.
fn migration_fabric(seed: u64) -> gbooster::core::fabric::FabricConfig {
    use gbooster::core::fabric::FabricConfig;
    use gbooster::sim::time::SimDuration;
    let mut cfg = FabricConfig::uniform(
        64,
        vec![
            DeviceSpec::nvidia_shield(),
            DeviceSpec::dell_optiplex_9010(),
        ],
        seed,
    );
    cfg.duration = SimDuration::from_secs(4);
    for t in &mut cfg.tenants {
        t.fps = 10.0;
    }
    cfg
}

/// Migration acceptance: force-drain the busiest node of a 64-session
/// three-node fabric mid-run. Every homed session live-migrates to the
/// survivors with zero presented-frame gaps, every migrated tenant
/// still meets its SLO, and the whole run replays byte-for-byte.
#[test]
fn forced_drain_of_the_busiest_node_migrates_every_session_gapless() {
    use gbooster::core::fabric::{FabricConfig, SessionManager};
    use gbooster::sim::time::{SimDuration, SimTime};

    let mut cfg = FabricConfig::uniform(
        64,
        vec![
            DeviceSpec::nvidia_shield(),
            DeviceSpec::dell_optiplex_9010(),
            DeviceSpec::dell_m4600(),
        ],
        64_003,
    );
    cfg.duration = SimDuration::from_secs(4);
    for t in &mut cfg.tenants {
        t.fps = 10.0;
    }
    // Node 0 (the Shield) is the pool's fastest and therefore busiest.
    cfg.drain_node(SimTime::from_secs(2), 0);
    let label = "fabric drain, 64 sessions";

    let report = SessionManager::run(&cfg).unwrap();
    let replay = SessionManager::run(&cfg).unwrap();
    assert_eq!(report.slo_json(), replay.slo_json(), "{label}");

    assert_eq!(report.admitted, 64, "{label}");
    assert!(
        !report.migrations.is_empty(),
        "{label}: the drained node must hand off its homed sessions"
    );
    for m in &report.migrations {
        assert_eq!(m.from, 0, "{label}");
        assert_ne!(m.to, 0, "{label}: nothing may land back on the drain");
        assert!(m.completed.is_some() && !m.aborted, "{label}: {m:?}");
        assert_eq!(m.reason, "operator_drain", "{label}");
    }
    // Max-min fair assignment spreads the wave over both survivors.
    for dest in [1usize, 2] {
        assert!(
            report.migrations.iter().any(|m| m.to == dest),
            "{label}: survivor {dest} must absorb part of the wave"
        );
    }
    assert_eq!(
        report.migration_blackout_ms, 0.0,
        "{label}: cutover must not black out presentation"
    );
    assert!(report.migrate_bytes > 0, "{label}: snapshots ship bytes");
    for t in &report.tenants {
        assert_eq!(
            t.frames_presented, t.frames_issued,
            "{label}: t{}",
            t.tenant
        );
        assert!(t.gapless, "{label}: t{}", t.tenant);
    }
    let migrated: Vec<u32> = report.migrations.iter().map(|m| m.tenant).collect();
    for t in report
        .tenants
        .iter()
        .filter(|t| migrated.contains(&t.tenant))
    {
        assert!(
            t.slo_met,
            "{label}: migrated t{} must stay at SLO",
            t.tenant
        );
    }
    // A planned drain opens no incidents and folds nothing.
    assert!(report.incidents.is_empty(), "{label}");
    assert_eq!(report.incidents_folded, 0, "{label}");
    // Migration bytes ride the uplink: per-tenant sums still reconcile.
    let up: u64 = report.tenants.iter().map(|t| t.uplink_bytes).sum();
    assert_eq!(up, report.pool_uplink_bytes, "{label}");
}

/// Migrate under loss: the same drain on a lossy link. Transfers eat
/// retransmission bursts but still cut over, presentation stays
/// gapless, and the lossy run replays byte-for-byte.
#[test]
fn migration_under_loss_still_cuts_over_gapless_and_reproducibly() {
    use gbooster::core::fabric::SessionManager;
    use gbooster::sim::time::SimTime;

    let mut cfg = migration_fabric(64_004);
    cfg.loss_scale = 1.0;
    cfg.drain_node(SimTime::from_secs(2), 0);
    let label = "fabric drain under loss";

    let report = SessionManager::run(&cfg).unwrap();
    let replay = SessionManager::run(&cfg).unwrap();
    assert_eq!(report.slo_json(), replay.slo_json(), "{label}");

    assert!(!report.migrations.is_empty(), "{label}");
    for m in &report.migrations {
        assert!(m.completed.is_some() && !m.aborted, "{label}: {m:?}");
    }
    assert_eq!(report.migration_blackout_ms, 0.0, "{label}");
    for t in &report.tenants {
        assert_eq!(
            t.frames_presented, t.frames_issued,
            "{label}: t{}",
            t.tenant
        );
        assert!(t.gapless, "{label}: t{}", t.tenant);
    }
}

/// Migrate during fallback recovery: the pool dies entirely (all
/// sessions flip local), revives, then one node is drained. Sessions
/// re-home onto the revived pool and the drain migrates all of them to
/// the other node without a gap.
#[test]
fn drain_after_total_loss_recovery_migrates_the_rehomed_sessions() {
    use gbooster::core::fabric::{PoolEvent, SessionManager};
    use gbooster::sim::time::SimTime;

    let mut cfg = migration_fabric(64_005);
    cfg.events.push(PoolEvent::Kill {
        at: SimTime::from_secs(1),
        node: 0,
    });
    cfg.events.push(PoolEvent::Kill {
        at: SimTime::from_secs(1),
        node: 1,
    });
    cfg.events.push(PoolEvent::Revive {
        at: SimTime::from_secs(2),
        node: 0,
    });
    cfg.events.push(PoolEvent::Revive {
        at: SimTime::from_secs(2),
        node: 1,
    });
    cfg.drain_node(SimTime::from_secs(3), 0);
    let label = "drain after pool recovery";

    let report = SessionManager::run(&cfg).unwrap();
    let replay = SessionManager::run(&cfg).unwrap();
    assert_eq!(report.slo_json(), replay.slo_json(), "{label}");

    // Every session re-homed onto node 0 at its revival, so the drain
    // must move all 64 to node 1.
    assert_eq!(report.migrations.len(), 64, "{label}");
    for m in &report.migrations {
        assert_eq!((m.from, m.to), (0, 1), "{label}");
        assert!(m.completed.is_some() && !m.aborted, "{label}: {m:?}");
    }
    assert_eq!(report.migration_blackout_ms, 0.0, "{label}");
    for t in &report.tenants {
        assert_eq!(
            t.frames_presented, t.frames_issued,
            "{label}: t{}",
            t.tenant
        );
        assert!(t.gapless, "{label}: t{}", t.tenant);
        // The two kills opened exactly two incidents; the planned
        // drain added none.
        assert_eq!(t.incidents, 2, "{label}: t{}", t.tenant);
    }
}

/// Kill the destination mid-migration with a third node standing by:
/// in-flight transfers retarget to the remaining survivor, re-ship the
/// snapshot, and still cut over gapless.
#[test]
fn killing_the_destination_mid_migration_retargets_to_a_survivor() {
    use gbooster::core::fabric::{FabricConfig, PoolEvent, SessionManager};
    use gbooster::sim::time::{SimDuration, SimTime};

    let mut cfg = FabricConfig::uniform(
        48,
        vec![
            DeviceSpec::nvidia_shield(),
            DeviceSpec::dell_optiplex_9010(),
            DeviceSpec::dell_m4600(),
        ],
        64_006,
    );
    cfg.duration = SimDuration::from_secs(4);
    for t in &mut cfg.tenants {
        t.fps = 10.0;
    }
    cfg.drain_node(SimTime::from_secs(2), 0);
    // Same instant as the drain, but a later event index: the drain
    // processes first, so the kill lands while every transfer headed
    // to node 1 is still in flight.
    cfg.events.push(PoolEvent::Kill {
        at: SimTime::from_secs(2),
        node: 1,
    });
    let label = "destination killed mid-migration";

    let report = SessionManager::run(&cfg).unwrap();
    let replay = SessionManager::run(&cfg).unwrap();
    assert_eq!(report.slo_json(), replay.slo_json(), "{label}");

    assert!(
        report.migrate_retargets > 0,
        "{label}: transfers toward node 1 must retarget"
    );
    assert_eq!(report.migrate_aborted, 0, "{label}: node 2 absorbs them");
    for m in &report.migrations {
        assert!(m.completed.is_some() && !m.aborted, "{label}: {m:?}");
        assert_ne!(m.to, 1, "{label}: nothing may land on the dead node");
    }
    assert_eq!(report.migration_blackout_ms, 0.0, "{label}");
    for t in &report.tenants {
        assert_eq!(
            t.frames_presented, t.frames_issued,
            "{label}: t{}",
            t.tenant
        );
        assert!(t.gapless, "{label}: t{}", t.tenant);
    }
}

/// Kill the only destination mid-migration: with no survivor left the
/// migration stalls — sessions stay homed on the source, the aborted
/// counter ticks, and the flight recorder emits a `MigrationStalled`
/// postmortem. Presentation still never gaps: the source keeps serving.
#[test]
fn killing_the_only_destination_stalls_the_migration_with_a_postmortem() {
    use gbooster::core::fabric::{PoolEvent, SessionManager};
    use gbooster::sim::time::SimTime;

    let mut cfg = migration_fabric(64_007);
    cfg.drain_node(SimTime::from_secs(2), 0);
    // Same instant, later event index: the kill fires while all 64
    // transfers to the pool's only other node are in flight.
    cfg.events.push(PoolEvent::Kill {
        at: SimTime::from_secs(2),
        node: 1,
    });
    let label = "destination killed, no survivor";

    let report = SessionManager::run(&cfg).unwrap();
    let replay = SessionManager::run(&cfg).unwrap();
    assert_eq!(report.slo_json(), replay.slo_json(), "{label}");

    assert!(report.migrate_aborted > 0, "{label}: migrations must stall");
    assert!(
        report.migrations.iter().all(|m| m.completed.is_none()),
        "{label}: no cutover may fire after the destination died"
    );
    assert_eq!(
        report.flight.len(),
        1,
        "{label}: the stall emits one postmortem"
    );
    assert_eq!(report.flight[0].fault, Fault::MigrationStalled, "{label}");
    for t in &report.tenants {
        assert_eq!(
            t.frames_presented, t.frames_issued,
            "{label}: t{}",
            t.tenant
        );
        assert!(t.gapless, "{label}: t{}", t.tenant);
    }
}

/// Satellite audit, exactly-one-incident: a thermal brownout opens one
/// `node_degraded` incident per admitted tenant; the rebalancer's
/// subsequent drain-and-migrate folds into that incident instead of
/// opening one per migrated tenant.
#[test]
fn rebalancer_drain_folds_into_the_open_degradation_incident() {
    use gbooster::core::fabric::{PoolEvent, SessionManager};
    use gbooster::core::rebalance::RebalancePolicy;
    use gbooster::sim::time::SimTime;

    let mut cfg = migration_fabric(64_008);
    // A 20x brownout pins the Shield near 77 % duty at this workload;
    // set the thermal gate below that so the policy loop fires.
    cfg.rebalance = Some(RebalancePolicy {
        thermal_enter: 0.70,
        thermal_exit: 0.50,
        ..RebalancePolicy::default()
    });
    cfg.events.push(PoolEvent::Degrade {
        at: SimTime::from_secs(1),
        node: 0,
        factor: 0.05,
    });
    let label = "degrade then rebalance";

    let report = SessionManager::run(&cfg).unwrap();
    let replay = SessionManager::run(&cfg).unwrap();
    assert_eq!(report.slo_json(), replay.slo_json(), "{label}");

    // The brownout pins node 0's duty cycle; the policy loop must
    // notice and drain it.
    assert!(
        !report.migrations.is_empty(),
        "{label}: the rebalancer must drain the throttling node"
    );
    for m in &report.migrations {
        assert_eq!(m.from, 0, "{label}");
        assert_eq!(m.reason, "rebalance", "{label}");
        assert!(m.completed.is_some() && !m.aborted, "{label}: {m:?}");
    }
    // Exactly one incident per admitted tenant — the degradation. The
    // migration wave folded into it.
    assert_eq!(report.incidents.len(), 64, "{label}");
    assert!(
        report.incidents.iter().all(|i| i.kind == "node_degraded"),
        "{label}"
    );
    for t in &report.tenants {
        assert_eq!(t.incidents, 1, "{label}: t{}", t.tenant);
        assert_eq!(
            t.frames_presented, t.frames_issued,
            "{label}: t{}",
            t.tenant
        );
        assert!(t.gapless, "{label}: t{}", t.tenant);
    }
    assert_eq!(
        report.incidents_folded,
        report.migrations.len() as u64,
        "{label}: every rebalance migration folds into the open incident"
    );
    assert_eq!(report.migration_blackout_ms, 0.0, "{label}");
}
