//! Deterministic scaling matrix for the multi-tenant service fabric
//! (docs/FABRIC.md): {1, 8, 64, 256} offered sessions × {1, 2, 4} pool
//! nodes × {clean, lossy} links, every cell run twice from the same
//! seed with byte-identity asserted on the aggregate SLO report.
//!
//! Beyond determinism the matrix checks the fabric's contract at every
//! scale: admission never overbooks the pool, per-tenant wire
//! attribution sums exactly to the pool counters, admitted sessions
//! present every issued frame in order, and at the 256-session /
//! 4-node corner every admitted session still meets its p99 SLO.

use gbooster::core::fabric::{CacheMode, FabricConfig, SessionManager};
use gbooster::sim::device::DeviceSpec;
use gbooster::sim::time::SimDuration;
use gbooster::telemetry::names;

fn pool(nodes: usize) -> Vec<DeviceSpec> {
    let all = [
        DeviceSpec::nvidia_shield(),
        DeviceSpec::dell_optiplex_9010(),
        DeviceSpec::dell_m4600(),
        DeviceSpec::minix_neo_u1(),
    ];
    all[..nodes].to_vec()
}

fn matrix_config(sessions: usize, nodes: usize, lossy: bool) -> FabricConfig {
    let mut cfg = FabricConfig::uniform(sessions, pool(nodes), 20_170_605);
    cfg.duration = SimDuration::from_secs(3);
    cfg.loss_scale = if lossy { 1.0 } else { 0.0 };
    cfg
}

/// The full matrix. Each cell: double-run byte-identity on the SLO
/// report plus the structural invariants that must hold at any scale.
#[test]
fn scaling_matrix_is_deterministic_and_within_contract() {
    for &sessions in &[1usize, 8, 64, 256] {
        for &nodes in &[1usize, 2, 4] {
            for &lossy in &[false, true] {
                let cfg = matrix_config(sessions, nodes, lossy);
                let a = SessionManager::run(&cfg).unwrap();
                let b = SessionManager::run(&cfg).unwrap();
                let cell = format!("{sessions}s/{nodes}n/lossy={lossy}");

                // Double-run byte-identity on the aggregate report and
                // the labelled Prometheus exposition.
                assert_eq!(a.slo_json(), b.slo_json(), "{cell}: SLO report diverged");
                assert_eq!(a.prometheus(), b.prometheus(), "{cell}: export diverged");

                // Admission accounting.
                assert_eq!(a.admitted + a.rejected, sessions, "{cell}");
                assert!(a.admitted >= 1, "{cell}: pool admitted nobody");
                assert!(
                    a.admitted_load <= a.load_cap + 1e-9,
                    "{cell}: admitted load {} exceeds cap {}",
                    a.admitted_load,
                    a.load_cap
                );

                // Per-tenant attribution sums exactly to the pool wire
                // counters — nothing double-counted, nothing dropped.
                let up: u64 = a.tenants.iter().map(|t| t.uplink_bytes).sum();
                let down: u64 = a.tenants.iter().map(|t| t.downlink_bytes).sum();
                assert_eq!(up, a.pool_uplink_bytes, "{cell}: uplink attribution");
                assert_eq!(down, a.pool_downlink_bytes, "{cell}: downlink attribution");
                assert_eq!(
                    up,
                    a.telemetry.counter(names::fabric::UPLINK_BYTES),
                    "{cell}: registry uplink"
                );

                // Every admitted session is gapless and whole; rejected
                // sessions never issue a frame.
                for t in &a.tenants {
                    if t.admitted {
                        assert_eq!(t.frames_presented, t.frames_issued, "{cell} t{}", t.tenant);
                        assert!(t.gapless, "{cell} t{} left gaps", t.tenant);
                        assert!(t.frames_issued > 0, "{cell} t{} never issued", t.tenant);
                    } else {
                        assert_eq!(t.frames_issued, 0, "{cell} t{} rejected yet ran", t.tenant);
                        assert_eq!(t.uplink_bytes, 0, "{cell} t{}", t.tenant);
                    }
                }

                // Fair-share audit windows cover the admitted workload.
                let audited: f64 = a.windows.iter().map(|w| w.pool_busy_secs).sum();
                let scheduled: f64 = a.tenants.iter().map(|t| t.service_secs).sum();
                assert!(
                    (audited - scheduled).abs() < 1e-6,
                    "{cell}: windows audit {audited} != scheduled {scheduled}"
                );
            }
        }
    }
}

/// The headline corner: 256 offered sessions over 4 nodes completes
/// deterministically and every admitted session meets its p99 SLO.
#[test]
fn two_hundred_fifty_six_sessions_on_four_nodes_meet_slo() {
    let cfg = matrix_config(256, 4, false);
    let report = SessionManager::run(&cfg).unwrap();
    assert!(
        report.admitted >= 64,
        "4-node pool should host at least 64 of 256 sessions, got {}",
        report.admitted
    );
    assert!(report.rejected > 0, "256 sessions must overload 4 nodes");
    for t in report.tenants.iter().filter(|t| t.admitted) {
        assert!(
            t.slo_met,
            "t{} admitted but missed SLO: p99 {} µs vs {} ms",
            t.tenant, t.p99_us, t.slo_ms
        );
    }
    assert_eq!(report.sessions_at_slo, report.admitted);
    assert!(report.sessions_per_node_at_slo >= 16.0);
    // The gated scaling metric is the gauge the bench ladder commits.
    let gauge = report
        .telemetry
        .gauge(names::fabric::SESSIONS_PER_NODE_AT_SLO);
    assert!((gauge - report.sessions_per_node_at_slo).abs() < 1e-9);
}

/// Rejected-admission rate is monotone in offered load and exported
/// through the gated gauge.
#[test]
fn rejected_rate_grows_with_offered_load_and_is_exported() {
    let mut last = -1.0;
    for &sessions in &[8usize, 64, 256] {
        let cfg = matrix_config(sessions, 2, false);
        let report = SessionManager::run(&cfg).unwrap();
        assert!(
            report.rejected_rate >= last,
            "{sessions} sessions: rate {} fell below {last}",
            report.rejected_rate
        );
        last = report.rejected_rate;
        let gauge = report.telemetry.gauge(names::fabric::REJECTED_RATE);
        assert!((gauge - report.rejected_rate).abs() < 1e-9);
    }
    assert!(last > 0.0, "256 sessions on 2 nodes must see rejections");
}

/// Shared-segment caches strictly reduce total uplink bytes versus
/// partitioned caches for a title-heavy mix, and the saving is exactly
/// the counter the fabric exports.
#[test]
fn shared_segments_reduce_uplink_across_the_matrix() {
    let mut shared = matrix_config(64, 2, false);
    shared.cache_mode = CacheMode::SharedSegments;
    let mut partitioned = shared.clone();
    partitioned.cache_mode = CacheMode::Partitioned;
    let s = SessionManager::run(&shared).unwrap();
    let p = SessionManager::run(&partitioned).unwrap();
    assert!(s.shared_segment_bytes_saved > 0);
    assert_eq!(
        p.pool_uplink_bytes,
        s.pool_uplink_bytes + s.shared_segment_bytes_saved
    );
}
