//! Double-buffered display with vsync, plus FPS sampling.
//!
//! Android's display system is double-buffered (Section IV-C of the paper,
//! ref \[21\]): the application renders into a back buffer and
//! `eglSwapBuffers` flips it at the next vsync. The default refresh rate is
//! 60 Hz, which is also why Fig. 7's multi-device speedup saturates — the
//! graphics engine caps request generation at the display rate.
//!
//! [`Display`] models buffer flips against a vsync grid; [`FpsRecorder`]
//! converts presentation timestamps into the paper's two FPS metrics
//! (median FPS and FPS stability — Section VII-B).

use crate::time::{SimDuration, SimTime};

/// A fixed-refresh, double-buffered display.
///
/// # Examples
///
/// ```
/// use gbooster_sim::display::Display;
/// use gbooster_sim::time::SimTime;
///
/// let mut d = Display::new(60, 1280, 720);
/// // A frame finishing at 3 ms is presented at the next vsync (16.67 ms).
/// let shown = d.present(SimTime::from_millis(3));
/// assert_eq!(shown.as_micros(), 16_666);
/// ```
#[derive(Clone, Debug)]
pub struct Display {
    refresh_hz: u32,
    width: u32,
    height: u32,
    last_vsync_presented: Option<u64>,
}

impl Display {
    /// Creates a display with the given refresh rate and resolution.
    ///
    /// # Panics
    ///
    /// Panics if `refresh_hz` is zero.
    pub fn new(refresh_hz: u32, width: u32, height: u32) -> Self {
        assert!(refresh_hz > 0, "refresh rate must be nonzero");
        Display {
            refresh_hz,
            width,
            height,
            last_vsync_presented: None,
        }
    }

    /// The vsync period.
    pub fn vsync_period(&self) -> SimDuration {
        SimDuration::from_micros(1_000_000 / self.refresh_hz as u64)
    }

    /// Refresh rate in Hz.
    pub fn refresh_hz(&self) -> u32 {
        self.refresh_hz
    }

    /// Panel resolution in pixels.
    pub fn resolution(&self) -> (u32, u32) {
        (self.width, self.height)
    }

    /// Pixels per frame.
    pub fn pixels(&self) -> u64 {
        self.width as u64 * self.height as u64
    }

    /// Presents a frame that became ready at `ready`: returns the instant
    /// it actually appears on screen (the next free vsync edge).
    ///
    /// With double buffering, at most one new frame appears per vsync; a
    /// frame racing an already-claimed vsync slips to the following one.
    pub fn present(&mut self, ready: SimTime) -> SimTime {
        let period = self.vsync_period().as_micros();
        // Next vsync edge strictly after `ready`.
        let mut slot = ready.as_micros() / period + 1;
        if let Some(last) = self.last_vsync_presented {
            if slot <= last {
                slot = last + 1;
            }
        }
        self.last_vsync_presented = Some(slot);
        SimTime::from_micros(slot * period)
    }

    /// Forgets presentation history (e.g., between experiment runs).
    pub fn reset(&mut self) {
        self.last_vsync_presented = None;
    }
}

/// Accumulates frame presentation times and derives the paper's FPS
/// metrics.
///
/// * **Median FPS** — the median of per-second frame-rate samples;
///   "naturally omits fringe results, for instance 0 FPS or 60 FPS which
///   commonly occur during a game's loading screens" (Section VII-B).
/// * **FPS stability** — the fraction of samples within ±20 % of the
///   median.
#[derive(Clone, Debug, Default)]
pub struct FpsRecorder {
    present_times: Vec<SimTime>,
}

impl FpsRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one frame presented at `at`. Times must be non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the previously recorded frame.
    pub fn record(&mut self, at: SimTime) {
        if let Some(&last) = self.present_times.last() {
            assert!(at >= last, "frame times must be non-decreasing");
        }
        self.present_times.push(at);
    }

    /// Number of frames recorded.
    pub fn frame_count(&self) -> usize {
        self.present_times.len()
    }

    /// Frame rate sampled over each whole second of the session.
    ///
    /// Seconds with zero frames yield a 0 sample (loading screens in the
    /// paper's terminology).
    pub fn per_second_samples(&self) -> Vec<u32> {
        let Some(&last) = self.present_times.last() else {
            return Vec::new();
        };
        let secs = last.as_secs_f64().ceil() as usize;
        let mut samples = vec![0u32; secs.max(1)];
        for &t in &self.present_times {
            let idx = (t.as_secs_f64().floor() as usize).min(samples.len() - 1);
            samples[idx] += 1;
        }
        samples
    }

    /// Median of the per-second FPS samples.
    pub fn median_fps(&self) -> f64 {
        let mut samples = self.per_second_samples();
        if samples.is_empty() {
            return 0.0;
        }
        samples.sort_unstable();
        let n = samples.len();
        if n % 2 == 1 {
            samples[n / 2] as f64
        } else {
            (samples[n / 2 - 1] as f64 + samples[n / 2] as f64) / 2.0
        }
    }

    /// Fraction of per-second samples within ±20 % of the median
    /// (the paper's *FPS stability*, Section VII-B), in `[0, 1]`.
    pub fn stability(&self) -> f64 {
        let samples = self.per_second_samples();
        if samples.is_empty() {
            return 0.0;
        }
        let median = self.median_fps();
        if median == 0.0 {
            return 0.0;
        }
        let lo = median * 0.8;
        let hi = median * 1.2;
        let within = samples
            .iter()
            .filter(|&&s| (s as f64) >= lo && (s as f64) <= hi)
            .count();
        within as f64 / samples.len() as f64
    }

    /// Standard deviation of the inter-frame interval, in milliseconds —
    /// the "FPS jitter" the paper says leads to poor gaming experience
    /// (Section VII-B). 0 for fewer than three frames.
    pub fn interval_jitter_ms(&self) -> f64 {
        if self.present_times.len() < 3 {
            return 0.0;
        }
        let intervals: Vec<f64> = self
            .present_times
            .windows(2)
            .map(|w| (w[1] - w[0]).as_millis_f64())
            .collect();
        let mean = intervals.iter().sum::<f64>() / intervals.len() as f64;
        let var = intervals
            .iter()
            .map(|i| (i - mean) * (i - mean))
            .sum::<f64>()
            / intervals.len() as f64;
        var.sqrt()
    }

    /// Mean FPS over the whole session.
    pub fn mean_fps(&self) -> f64 {
        let Some(&last) = self.present_times.last() else {
            return 0.0;
        };
        let secs = last.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.present_times.len() as f64 / secs
        }
    }

    /// Clears all recorded frames.
    pub fn reset(&mut self) {
        self.present_times.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn present_aligns_to_next_vsync() {
        let mut d = Display::new(60, 1920, 1080);
        assert_eq!(d.present(SimTime::ZERO).as_micros(), 16_666);
        assert_eq!(d.vsync_period().as_micros(), 16_666);
    }

    #[test]
    fn double_buffering_skips_claimed_vsync() {
        let mut d = Display::new(60, 1920, 1080);
        let a = d.present(SimTime::from_millis(1));
        let b = d.present(SimTime::from_millis(2));
        assert!(b > a);
        assert_eq!(b.as_micros() - a.as_micros(), 16_666);
    }

    #[test]
    fn steady_30fps_measures_30() {
        let mut rec = FpsRecorder::new();
        // 30 FPS for 10 seconds.
        for i in 0..300 {
            rec.record(SimTime::from_micros(i * 33_333));
        }
        let m = rec.median_fps();
        assert!((m - 30.0).abs() <= 1.0, "median {m}");
        assert!(rec.stability() > 0.9);
    }

    #[test]
    fn median_ignores_loading_screen_fringe() {
        let mut rec = FpsRecorder::new();
        let mut t = 0u64;
        // 2 s of loading at 1 FPS.
        for _ in 0..2 {
            rec.record(SimTime::from_micros(t));
            t += 1_000_000;
        }
        // 20 s of gameplay at 40 FPS.
        for _ in 0..800 {
            rec.record(SimTime::from_micros(t));
            t += 25_000;
        }
        let m = rec.median_fps();
        assert!((m - 40.0).abs() <= 1.0, "median {m}");
    }

    #[test]
    fn jittery_session_has_low_stability() {
        let mut rec = FpsRecorder::new();
        let mut t = 0u64;
        for sec in 0..30 {
            // Alternate 60 FPS and 15 FPS seconds: jitter.
            let fps = if sec % 2 == 0 { 60 } else { 15 };
            for _ in 0..fps {
                rec.record(SimTime::from_micros(t));
                t += 1_000_000 / fps;
            }
            t = (sec + 1) * 1_000_000;
        }
        assert!(rec.stability() < 0.7, "stability {}", rec.stability());
    }

    #[test]
    fn empty_recorder_reports_zero() {
        let rec = FpsRecorder::new();
        assert_eq!(rec.median_fps(), 0.0);
        assert_eq!(rec.stability(), 0.0);
        assert_eq!(rec.mean_fps(), 0.0);
        assert_eq!(rec.interval_jitter_ms(), 0.0);
    }

    #[test]
    fn steady_cadence_has_zero_jitter() {
        let mut rec = FpsRecorder::new();
        for i in 0..100u64 {
            rec.record(SimTime::from_micros(i * 16_666));
        }
        assert!(rec.interval_jitter_ms() < 0.01);
    }

    #[test]
    fn irregular_cadence_has_positive_jitter() {
        let mut rec = FpsRecorder::new();
        let mut t = 0u64;
        for i in 0..100u64 {
            t += if i % 2 == 0 { 10_000 } else { 40_000 };
            rec.record(SimTime::from_micros(t));
        }
        assert!(rec.interval_jitter_ms() > 10.0);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn out_of_order_frames_panic() {
        let mut rec = FpsRecorder::new();
        rec.record(SimTime::from_millis(10));
        rec.record(SimTime::from_millis(5));
    }

    #[test]
    fn reset_clears_state() {
        let mut rec = FpsRecorder::new();
        rec.record(SimTime::from_millis(1));
        rec.reset();
        assert_eq!(rec.frame_count(), 0);
        let mut d = Display::new(60, 10, 10);
        d.present(SimTime::ZERO);
        d.reset();
        assert_eq!(d.present(SimTime::ZERO).as_micros(), 16_666);
    }
}
