//! The command forwarder: deferred resolution → wire encoding → LRU
//! cache → LZ4 (Sections IV-B and V-A), plus the service-side receiver.
//!
//! Per-frame wire layout:
//!
//! ```text
//! u32 token_stream_len | lz4(token stream)
//!   token := 0x00 u64 cache_key            (command cached on both ends)
//!          | 0x01 u32 len bytes[len]       (full encoded command)
//! ```
//!
//! Both ends run the *same* deterministic [`CommandCache`] update rule, so
//! the receiver can always expand a `Ref` token; a miss is a protocol
//! violation surfaced as [`GBoosterError::CacheDesync`].

use gbooster_codec::lru::{CacheToken, CommandCache};
use gbooster_codec::lz4::{self, Lz4Frame};
use gbooster_gles::command::{ClientMemory, GlCommand};
use gbooster_gles::serialize::{
    command_category, decode_command, encode_command, DeferredResolver,
};
use gbooster_telemetry::{names, AttributionLog, Counter, Registry, UplinkFrameEntry};

use crate::error::GBoosterError;

/// Default cache capacity on each end (identical on both, by protocol).
pub const CACHE_CAPACITY: usize = 4096;

/// Result of forwarding one frame.
#[derive(Clone, Debug)]
pub struct ForwardedFrame {
    /// Bytes to hand to the transport.
    pub wire: Vec<u8>,
    /// Serialized command bytes before caching/compression.
    pub raw_bytes: usize,
    /// Token-stream bytes after caching, before LZ4.
    pub token_bytes: usize,
    /// Commands in the frame after deferred resolution.
    pub command_count: usize,
    /// Cache hits this frame.
    pub cache_hits: u64,
    /// Cache misses this frame.
    pub cache_misses: u64,
    /// LZ4 input/output accounting for the token stream.
    pub lz4: Lz4Frame,
}

impl ForwardedFrame {
    /// Overall compression ratio (wire ÷ raw); lower is better.
    ///
    /// Convention: a frame with no serialized command bytes reports `1.0`
    /// ("nothing gained, nothing lost") rather than dividing by zero. An
    /// empty frame still carries the 4-byte wire header, so any other
    /// definition would return `NaN` or `inf` and poison downstream
    /// averages.
    pub fn ratio(&self) -> f64 {
        if self.raw_bytes == 0 {
            1.0
        } else {
            self.wire.len() as f64 / self.raw_bytes as f64
        }
    }
}

/// Pre-resolved registry handles for the forwarder counters.
#[derive(Clone, Debug)]
struct ForwardCounters {
    raw_bytes: Counter,
    token_bytes: Counter,
    wire_bytes: Counter,
    commands: Counter,
}

/// The user-device forwarder.
///
/// # Examples
///
/// ```
/// use gbooster_core::forward::{CommandForwarder, ServiceReceiver};
/// use gbooster_gles::command::{ClientMemory, GlCommand};
///
/// let mem = ClientMemory::new();
/// let mut tx = CommandForwarder::new();
/// let mut rx = ServiceReceiver::new();
/// let frame = vec![GlCommand::clear_all(), GlCommand::SwapBuffers];
/// let fwd = tx.forward_frame(&frame, &mem)?;
/// assert_eq!(rx.receive(&fwd.wire)?, frame);
/// # Ok::<(), gbooster_core::GBoosterError>(())
/// ```
#[derive(Debug)]
pub struct CommandForwarder {
    resolver: DeferredResolver,
    cache: CommandCache,
    counters: Option<ForwardCounters>,
    attr: Option<AttributionLog>,
}

impl Default for CommandForwarder {
    fn default() -> Self {
        Self::new()
    }
}

impl CommandForwarder {
    /// Creates a forwarder with the default cache capacity.
    pub fn new() -> Self {
        CommandForwarder {
            resolver: DeferredResolver::new(),
            cache: CommandCache::new(CACHE_CAPACITY),
            counters: None,
            attr: None,
        }
    }

    /// Attributes every forwarded frame's wire bytes along
    /// `GL category × cache outcome` into `log`. Like
    /// [`Self::attach_registry`], purely observational: wire output and
    /// cache state are unchanged.
    pub fn attach_attribution(&mut self, log: AttributionLog) {
        self.attr = Some(log);
    }

    /// Mirrors per-frame forwarding statistics into `registry`
    /// (`forward.*` byte/command counters plus the LRU cache's
    /// `cache.hits` / `cache.misses`). Attach once, on the sender side.
    pub fn attach_registry(&mut self, registry: &Registry) {
        self.cache.attach_registry(registry);
        self.counters = Some(ForwardCounters {
            raw_bytes: registry.counter(names::forward::RAW_BYTES),
            token_bytes: registry.counter(names::forward::TOKEN_BYTES),
            wire_bytes: registry.counter(names::forward::WIRE_BYTES),
            commands: registry.counter(names::forward::COMMANDS),
        });
    }

    /// Serializes one frame of intercepted commands into wire bytes.
    ///
    /// # Errors
    ///
    /// Returns wire/client-memory errors from deferred resolution or
    /// encoding.
    pub fn forward_frame(
        &mut self,
        commands: &[GlCommand],
        mem: &ClientMemory,
    ) -> Result<ForwardedFrame, GBoosterError> {
        gbooster_telemetry::prof_scope!(names::host::FORWARD);
        let hits_before = self.cache.hits();
        let misses_before = self.cache.misses();
        let mut tokens = Vec::new();
        let mut raw_bytes = 0usize;
        let mut command_count = 0usize;
        // Per-(category, outcome) accounting for the attribution tap;
        // first-seen order keeps apportionment deterministic.
        let mut attr_entries: Vec<UplinkFrameEntry> = Vec::new();
        for cmd in commands {
            for resolved in self.resolver.push(cmd.clone(), mem)? {
                let mut encoded = Vec::new();
                encode_command(&resolved, &mut encoded)?;
                raw_bytes += encoded.len();
                command_count += 1;
                let token = self.cache.offer(&encoded);
                let cache_hit = token.is_ref();
                let token_len = token.wire_bytes();
                match token {
                    CacheToken::Ref(key) => {
                        tokens.push(0x00);
                        tokens.extend_from_slice(&key.to_le_bytes());
                    }
                    CacheToken::Full(bytes) => {
                        tokens.push(0x01);
                        tokens.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                        tokens.extend_from_slice(&bytes);
                    }
                }
                if self.attr.is_some() {
                    let category = command_category(&resolved);
                    let entry = match attr_entries
                        .iter_mut()
                        .find(|e| e.category == category && e.cache_hit == cache_hit)
                    {
                        Some(entry) => entry,
                        None => {
                            attr_entries.push(UplinkFrameEntry {
                                category,
                                cache_hit,
                                commands: 0,
                                raw_bytes: 0,
                                token_bytes: 0,
                            });
                            attr_entries.last_mut().unwrap()
                        }
                    };
                    entry.commands += 1;
                    entry.raw_bytes += encoded.len() as u64;
                    entry.token_bytes += token_len as u64;
                }
            }
        }
        let token_bytes = tokens.len();
        let (compressed, lz4_frame) = lz4::compress_framed(&tokens);
        let mut wire = Vec::with_capacity(compressed.len() + 4);
        wire.extend_from_slice(&(token_bytes as u32).to_le_bytes());
        wire.extend_from_slice(&compressed);
        if let Some(c) = &self.counters {
            c.raw_bytes.add(raw_bytes as u64);
            c.token_bytes.add(token_bytes as u64);
            c.wire_bytes.add(wire.len() as u64);
            c.commands.add(command_count as u64);
        }
        if let Some(attr) = &self.attr {
            attr.record_uplink_frame(&attr_entries, wire.len() as u64);
        }
        Ok(ForwardedFrame {
            wire,
            raw_bytes,
            token_bytes,
            command_count,
            cache_hits: self.cache.hits() - hits_before,
            cache_misses: self.cache.misses() - misses_before,
            lz4: lz4_frame,
        })
    }

    /// Lifetime cache hit rate.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// Bytes resident in the sender cache (memory-overhead accounting).
    pub fn cache_resident_bytes(&self) -> usize {
        self.cache.resident_bytes()
    }
}

/// The service-device receiver: the inverse pipeline.
///
/// `Clone` supports node rejoin: every synchronized receiver holds the
/// same deterministic cache state, so a rejoining device is brought
/// current by copying a live peer's receiver (or the sender-side mirror)
/// instead of replaying the token history it missed.
#[derive(Clone, Debug)]
pub struct ServiceReceiver {
    cache: CommandCache,
}

impl Default for ServiceReceiver {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceReceiver {
    /// Creates a receiver with the protocol cache capacity.
    pub fn new() -> Self {
        ServiceReceiver {
            cache: CommandCache::new(CACHE_CAPACITY),
        }
    }

    /// Decodes one wire frame back into commands.
    ///
    /// # Errors
    ///
    /// Returns [`GBoosterError`] on corrupt input or cache
    /// desynchronization.
    pub fn receive(&mut self, wire: &[u8]) -> Result<Vec<GlCommand>, GBoosterError> {
        gbooster_telemetry::prof_scope!(names::host::GLES_DECODE);
        if wire.len() < 4 {
            return Err(GBoosterError::Codec("frame shorter than header".into()));
        }
        let token_len = u32::from_le_bytes([wire[0], wire[1], wire[2], wire[3]]) as usize;
        let tokens = lz4::decompress(&wire[4..], token_len)
            .map_err(|e| GBoosterError::Codec(e.to_string()))?;
        if tokens.len() != token_len {
            return Err(GBoosterError::Codec(format!(
                "token stream {} bytes, header said {token_len}",
                tokens.len()
            )));
        }
        let mut commands = Vec::new();
        let mut i = 0usize;
        while i < tokens.len() {
            let tag = tokens[i];
            i += 1;
            let encoded = match tag {
                0x00 => {
                    let bytes = tokens
                        .get(i..i + 8)
                        .ok_or_else(|| GBoosterError::Codec("truncated ref token".into()))?;
                    i += 8;
                    let key = u64::from_le_bytes(bytes.try_into().expect("slice is 8 bytes"));
                    self.cache
                        .accept(&CacheToken::Ref(key))
                        .ok_or(GBoosterError::CacheDesync(key))?
                }
                0x01 => {
                    let len_bytes = tokens
                        .get(i..i + 4)
                        .ok_or_else(|| GBoosterError::Codec("truncated full token".into()))?;
                    let len = u32::from_le_bytes(len_bytes.try_into().expect("slice is 4 bytes"))
                        as usize;
                    i += 4;
                    let body = tokens
                        .get(i..i + len)
                        .ok_or_else(|| GBoosterError::Codec("truncated command body".into()))?
                        .to_vec();
                    i += len;
                    self.cache
                        .accept(&CacheToken::Full(body))
                        .expect("full tokens always decode")
                }
                other => return Err(GBoosterError::Codec(format!("unknown token tag {other}"))),
            };
            let (cmd, used) = decode_command(&encoded)?;
            if used != encoded.len() {
                return Err(GBoosterError::Codec("trailing bytes after command".into()));
            }
            commands.push(cmd);
        }
        Ok(commands)
    }

    /// Bytes resident in the receiver cache.
    pub fn cache_resident_bytes(&self) -> usize {
        self.cache.resident_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbooster_gles::command::VertexSource;
    use gbooster_gles::types::{AttribType, Primitive, ProgramId};
    use gbooster_workload::genre::GenreProfile;
    use gbooster_workload::tracegen::TraceGenerator;

    fn pipeline() -> (CommandForwarder, ServiceReceiver, ClientMemory) {
        (
            CommandForwarder::new(),
            ServiceReceiver::new(),
            ClientMemory::new(),
        )
    }

    #[test]
    fn empty_frame_round_trips() {
        let (mut tx, mut rx, mem) = pipeline();
        let fwd = tx.forward_frame(&[], &mem).unwrap();
        assert_eq!(rx.receive(&fwd.wire).unwrap(), Vec::new());
    }

    #[test]
    fn simple_frame_round_trips() {
        let (mut tx, mut rx, mem) = pipeline();
        let frame = vec![
            GlCommand::UseProgram(ProgramId(0)),
            GlCommand::clear_all(),
            GlCommand::SwapBuffers,
        ];
        let fwd = tx.forward_frame(&frame, &mem).unwrap();
        assert_eq!(rx.receive(&fwd.wire).unwrap(), frame);
    }

    #[test]
    fn deferred_pointer_is_materialized_in_transit() {
        let (mut tx, mut rx, mut mem) = pipeline();
        let mem_ref = {
            let ptr = mem.alloc(vec![0u8; 48]);
            vec![
                GlCommand::VertexAttribPointer {
                    index: 0,
                    size: 2,
                    ty: AttribType::F32,
                    normalized: false,
                    stride: 0,
                    source: VertexSource::ClientMemory(ptr),
                },
                GlCommand::DrawArrays {
                    mode: Primitive::Triangles,
                    first: 0,
                    count: 3,
                },
                GlCommand::SwapBuffers,
            ]
        };
        let fwd = tx.forward_frame(&mem_ref, &mem).unwrap();
        let received = rx.receive(&fwd.wire).unwrap();
        assert_eq!(received.len(), 3);
        let GlCommand::VertexAttribPointer {
            source: VertexSource::Materialized(data),
            ..
        } = &received[0]
        else {
            panic!("pointer not materialized: {:?}", received[0]);
        };
        assert_eq!(data.len(), 24);
    }

    #[test]
    fn repeated_frames_shrink_dramatically() {
        // The Section V-A claim: caching + LZ4 collapses the redundant
        // portion of consecutive frames.
        let (mut tx, mut rx, _mem) = pipeline();
        let mut gen = TraceGenerator::new(GenreProfile::action(), 1.0, 640, 360, 3);
        let setup = gen.setup_trace();
        let first = tx
            .forward_frame(&setup.commands, gen.client_memory())
            .unwrap();
        rx.receive(&first.wire).unwrap();
        let mut first_frame_wire = 0usize;
        let mut later_wire = 0usize;
        let mut later_raw = 0usize;
        for i in 0..30 {
            let frame = gen.next_frame(1.0 / 30.0);
            let fwd = tx
                .forward_frame(&frame.commands, gen.client_memory())
                .unwrap();
            let decoded = rx.receive(&fwd.wire).unwrap();
            assert_eq!(decoded.len(), fwd.command_count);
            if i == 0 {
                first_frame_wire = fwd.wire.len();
            } else if i >= 10 {
                later_wire += fwd.wire.len();
                later_raw += fwd.raw_bytes;
            }
        }
        let avg_later = later_wire / 20;
        assert!(
            avg_later * 2 < first_frame_wire,
            "steady-state {avg_later} vs first {first_frame_wire}"
        );
        let ratio = later_wire as f64 / later_raw as f64;
        assert!(
            ratio < 0.7,
            "combined ratio {ratio} exceeds the paper's 70%"
        );
    }

    #[test]
    fn receiver_detects_desync() {
        let (mut tx, _, mem) = pipeline();
        let frame = vec![GlCommand::clear_all()];
        // Prime the sender cache, then replay only the *second* (Ref)
        // encoding against a fresh receiver.
        tx.forward_frame(&frame, &mem).unwrap();
        let second = tx.forward_frame(&frame, &mem).unwrap();
        let mut fresh_rx = ServiceReceiver::new();
        let err = fresh_rx.receive(&second.wire).unwrap_err();
        assert!(matches!(err, GBoosterError::CacheDesync(_)));
    }

    #[test]
    fn cloned_receiver_rejoins_where_a_fresh_one_desyncs() {
        let (mut tx, mut rx, mem) = pipeline();
        let frame = vec![GlCommand::clear_all(), GlCommand::SwapBuffers];
        let first = tx.forward_frame(&frame, &mem).unwrap();
        rx.receive(&first.wire).unwrap();
        // Resync-by-clone: the rejoining receiver copies the live peer's
        // cache and expands the all-Ref second frame a fresh receiver
        // cannot.
        let mut rejoined = rx.clone();
        let second = tx.forward_frame(&frame, &mem).unwrap();
        assert!(matches!(
            ServiceReceiver::new().receive(&second.wire).unwrap_err(),
            GBoosterError::CacheDesync(_)
        ));
        assert_eq!(rejoined.receive(&second.wire).unwrap(), frame);
    }

    #[test]
    fn corrupt_wire_is_rejected() {
        let (mut tx, mut rx, mem) = pipeline();
        let fwd = tx.forward_frame(&[GlCommand::clear_all()], &mem).unwrap();
        assert!(rx.receive(&fwd.wire[..2]).is_err());
        let mut corrupted = fwd.wire.clone();
        let last = corrupted.len() - 1;
        corrupted[last] ^= 0xff;
        // Either a codec error or (rarely) a decode error — never a panic.
        let _ = rx.receive(&corrupted);
    }

    #[test]
    fn hit_rate_grows_over_a_session() {
        let (mut tx, _, _) = pipeline();
        let mut gen = TraceGenerator::new(GenreProfile::puzzle(), 1.0, 320, 240, 5);
        let setup = gen.setup_trace();
        tx.forward_frame(&setup.commands, gen.client_memory())
            .unwrap();
        for _ in 0..50 {
            let frame = gen.next_frame(1.0 / 60.0);
            tx.forward_frame(&frame.commands, gen.client_memory())
                .unwrap();
        }
        assert!(
            tx.cache_hit_rate() > 0.6,
            "hit rate {}",
            tx.cache_hit_rate()
        );
    }

    #[test]
    fn zero_command_frame_has_finite_unit_ratio() {
        // A real empty frame (not a hand-built struct): the wire still
        // carries the 4-byte header while raw_bytes is 0, so ratio() must
        // fall back to the documented 1.0 convention instead of inf/NaN.
        let (mut tx, _, mem) = pipeline();
        let fwd = tx.forward_frame(&[], &mem).unwrap();
        assert_eq!(fwd.raw_bytes, 0);
        assert_eq!(fwd.command_count, 0);
        assert!(!fwd.wire.is_empty(), "header is always present");
        assert!(fwd.ratio().is_finite());
        assert_eq!(fwd.ratio(), 1.0);
    }

    #[test]
    fn registry_counters_mirror_forwarded_frames() {
        let registry = Registry::new();
        let (mut tx, _, mem) = pipeline();
        tx.attach_registry(&registry);
        let frame = vec![
            GlCommand::UseProgram(ProgramId(0)),
            GlCommand::clear_all(),
            GlCommand::SwapBuffers,
        ];
        let a = tx.forward_frame(&frame, &mem).unwrap();
        let b = tx.forward_frame(&frame, &mem).unwrap();
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter(names::forward::RAW_BYTES),
            (a.raw_bytes + b.raw_bytes) as u64
        );
        assert_eq!(
            snap.counter(names::forward::WIRE_BYTES),
            (a.wire.len() + b.wire.len()) as u64
        );
        assert_eq!(
            snap.counter(names::forward::COMMANDS),
            (a.command_count + b.command_count) as u64
        );
        assert_eq!(
            snap.counter(names::forward::CACHE_HITS),
            a.cache_hits + b.cache_hits
        );
        assert_eq!(
            snap.counter(names::forward::CACHE_MISSES),
            a.cache_misses + b.cache_misses
        );
        // Second identical frame is all hits, so the derived rate is real.
        assert!(snap.cache_hit_rate() > 0.0);
    }

    #[test]
    fn ratio_reports_one_for_empty() {
        let f = ForwardedFrame {
            wire: Vec::new(),
            raw_bytes: 0,
            token_bytes: 0,
            command_count: 0,
            cache_hits: 0,
            cache_misses: 0,
            lz4: Lz4Frame::default(),
        };
        assert_eq!(f.ratio(), 1.0);
    }

    #[test]
    fn attribution_reconciles_with_wire_and_cache_counters() {
        let mem = ClientMemory::new();
        let log = AttributionLog::new();
        let mut tx = CommandForwarder::new();
        tx.attach_attribution(log.clone());
        let frame = vec![
            GlCommand::UseProgram(ProgramId(1)),
            GlCommand::clear_all(),
            GlCommand::clear_all(),
            GlCommand::SwapBuffers,
        ];
        let mut wire_total = 0u64;
        let mut raw_total = 0u64;
        let mut token_total = 0u64;
        let mut hits = 0u64;
        let mut misses = 0u64;
        for _ in 0..3 {
            let fwd = tx.forward_frame(&frame, &mem).unwrap();
            wire_total += fwd.wire.len() as u64;
            raw_total += fwd.raw_bytes as u64;
            token_total += fwd.token_bytes as u64;
            hits += fwd.cache_hits;
            misses += fwd.cache_misses;
            assert_eq!(fwd.lz4.output_bytes + 4, fwd.wire.len() as u64);
            assert_eq!(fwd.lz4.input_bytes, fwd.token_bytes as u64);
        }
        let snap = log.snapshot();
        // Apportioned wire bytes sum exactly to the frames' wire bytes.
        assert_eq!(snap.uplink_wire_total(), wire_total);
        let raw: u64 = snap.uplink.values().map(|c| c.raw_bytes).sum();
        let tok: u64 = snap.uplink.values().map(|c| c.token_bytes).sum();
        assert_eq!(raw, raw_total);
        assert_eq!(tok, token_total);
        // Per-outcome command counts match the cache's own hit/miss view.
        let hit_cmds: u64 = snap
            .uplink
            .iter()
            .filter(|((_, o), _)| o == "hit")
            .map(|(_, c)| c.commands)
            .sum();
        let miss_cmds: u64 = snap
            .uplink
            .iter()
            .filter(|((_, o), _)| o == "miss")
            .map(|(_, c)| c.commands)
            .sum();
        assert_eq!(hit_cmds, hits);
        assert_eq!(miss_cmds, misses);
        // Repeated frames hit the cache, so hit rows must exist.
        assert!(hit_cmds > 0);
    }

    #[test]
    fn attribution_tap_does_not_change_wire_output() {
        let mem = ClientMemory::new();
        let mut plain = CommandForwarder::new();
        let mut tapped = CommandForwarder::new();
        tapped.attach_attribution(AttributionLog::new());
        let frame = vec![
            GlCommand::UseProgram(ProgramId(2)),
            GlCommand::clear_all(),
            GlCommand::SwapBuffers,
        ];
        for _ in 0..3 {
            let a = plain.forward_frame(&frame, &mem).unwrap();
            let b = tapped.forward_frame(&frame, &mem).unwrap();
            assert_eq!(a.wire, b.wire);
        }
    }
}
