//! Fixed-bucket latency histograms.
//!
//! Values (microseconds by convention, but any `u64` works) land in
//! log-linear buckets: exact below [`LINEAR_CUTOFF`], then 16 linear
//! sub-buckets per power of two. Bucketing is a pure function of the
//! value, so merging two histograms bucket-wise is *exactly* equivalent
//! to recording the union of their samples — the property the test
//! suite checks.
//!
//! Recording is a single atomic increment plus two atomic min/max
//! updates; no locks anywhere on the hot path.

use std::sync::atomic::{AtomicU64, Ordering};

/// Values below this land in 1-unit-wide exact buckets.
const LINEAR_CUTOFF: u64 = 128;

/// Sub-buckets per power of two above the linear region.
const SUB_BUCKETS: u64 = 16;

/// log2 of [`LINEAR_CUTOFF`].
const CUTOFF_BITS: u32 = 7;

/// Highest representable power of two (values above clamp to the last
/// bucket). 2^40 µs ≈ 12.7 days of sim time — far beyond any session.
const MAX_BITS: u32 = 40;

/// Total bucket count.
pub const BUCKETS: usize =
    LINEAR_CUTOFF as usize + ((MAX_BITS - CUTOFF_BITS) as usize) * SUB_BUCKETS as usize;

/// Maps a value to its bucket index.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_CUTOFF {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    if msb >= MAX_BITS {
        return BUCKETS - 1;
    }
    let sub = (v >> (msb - 4)) & (SUB_BUCKETS - 1);
    LINEAR_CUTOFF as usize + ((msb - CUTOFF_BITS) as usize) * SUB_BUCKETS as usize + sub as usize
}

/// Inclusive upper bound of a bucket (used as the quantile estimate).
fn bucket_upper(idx: usize) -> u64 {
    if idx < LINEAR_CUTOFF as usize {
        return idx as u64;
    }
    if idx == BUCKETS - 1 {
        // The overflow bucket absorbs everything above 2^40.
        return u64::MAX;
    }
    let rel = idx - LINEAR_CUTOFF as usize;
    let msb = CUTOFF_BITS + (rel / SUB_BUCKETS as usize) as u32;
    let sub = (rel % SUB_BUCKETS as usize) as u64;
    let width = 1u64 << (msb - 4);
    (1u64 << msb) + (sub + 1) * width - 1
}

/// The lock-free histogram core. Shared behind an `Arc` by
/// [`crate::registry::Histogram`] handles.
pub struct HistogramCore {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    min: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        Self::new()
    }
}

impl HistogramCore {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        HistogramCore {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
    }

    /// Takes a point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for HistogramCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("HistogramCore")
            .field("count", &s.count)
            .field("p50", &s.quantile(0.50))
            .field("p99", &s.quantile(0.99))
            .field("max", &s.max())
            .finish()
    }
}

/// An immutable copy of a histogram's state, with quantile queries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
    min: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }
}

impl HistogramSnapshot {
    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum sample (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact minimum sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile estimate, `q` in `[0, 1]`.
    ///
    /// Returns the upper bound of the bucket holding the `ceil(q·count)`-th
    /// sample, clamped to the exact observed extremes so that
    /// `min() ≤ quantile(q) ≤ max()` and quantiles are monotone in `q`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// p50 in milliseconds, treating samples as microseconds.
    pub fn p50_ms(&self) -> f64 {
        self.quantile(0.50) as f64 / 1000.0
    }

    /// p90 in milliseconds, treating samples as microseconds.
    pub fn p90_ms(&self) -> f64 {
        self.quantile(0.90) as f64 / 1000.0
    }

    /// p99 in milliseconds, treating samples as microseconds.
    pub fn p99_ms(&self) -> f64 {
        self.quantile(0.99) as f64 / 1000.0
    }

    /// Merges `other` into `self`, bucket-wise. Because bucketing is a
    /// pure function of the value, the merge is exactly equivalent to
    /// having recorded the union of both sample sets — p50/p90/p99 of
    /// the merged snapshot equal the quantiles of a single combined
    /// recording, not just "within bucket resolution".
    ///
    /// Robust against snapshots from a different bucket layout (the
    /// longer layout wins) and against `count`/`sum` overflow
    /// (saturating), so merging a corrupted or future-versioned
    /// snapshot can never panic.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_is_monotone_and_total() {
        let mut last = 0usize;
        for v in 0..100_000u64 {
            let idx = bucket_index(v);
            assert!(idx >= last, "bucket index regressed at {v}");
            assert!(v <= bucket_upper(idx), "value {v} above bucket bound");
            last = idx;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn linear_region_is_exact() {
        let h = HistogramCore::new();
        for v in [0u64, 1, 17, 127] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.max(), 127);
        assert_eq!(s.min(), 0);
        assert_eq!(s.count(), 4);
        assert_eq!(s.sum(), 145);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = HistogramCore::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn quantiles_bound_large_values() {
        let h = HistogramCore::new();
        h.record(1_000_000); // 1 s in µs
        let s = h.snapshot();
        // Bucket bound relative error is at most 1/16.
        assert!(s.quantile(0.5) >= 1_000_000);
        assert!(s.quantile(0.5) <= 1_000_000 + 1_000_000 / 16 + 1);
    }

    #[test]
    fn merge_matches_union() {
        let a = HistogramCore::new();
        let b = HistogramCore::new();
        let union = HistogramCore::new();
        for v in [3u64, 900, 44_000, 7] {
            a.record(v);
            union.record(v);
        }
        for v in [88u64, 1_000_000, 2] {
            b.record(v);
            union.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, union.snapshot());
    }

    #[test]
    fn merged_quantiles_match_a_single_combined_recording() {
        // Two disjoint latency populations — a fast mode and a heavy
        // tail — recorded separately, then merged. The merged snapshot's
        // p50/p90/p99 must equal those of one histogram that saw every
        // sample, exactly (same buckets ⇒ same quantile estimates).
        let a = HistogramCore::new();
        let b = HistogramCore::new();
        let combined = HistogramCore::new();
        for i in 0..900u64 {
            let v = 500 + i; // ~0.5–1.4 ms
            a.record(v);
            combined.record(v);
        }
        for i in 0..100u64 {
            let v = 40_000 + i * 700; // 40–110 ms tail
            b.record(v);
            combined.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        let reference = combined.snapshot();
        for q in [0.50, 0.90, 0.99] {
            assert_eq!(merged.quantile(q), reference.quantile(q), "q={q}");
        }
        assert_eq!(merged.count(), reference.count());
        assert_eq!(merged.sum(), reference.sum());
        assert_eq!(merged.min(), reference.min());
        assert_eq!(merged.max(), reference.max());
        // Merge order doesn't matter.
        let mut flipped = b.snapshot();
        flipped.merge(&a.snapshot());
        assert_eq!(flipped, merged);
    }

    #[test]
    fn merge_tolerates_foreign_bucket_layouts_and_saturates() {
        let mut short = HistogramSnapshot {
            buckets: vec![1, 2],
            count: 3,
            sum: u64::MAX - 1,
            max: 1,
            min: 0,
        };
        let long = HistogramSnapshot {
            buckets: vec![0, 0, 0, 5],
            count: 5,
            sum: 10,
            max: 9,
            min: 2,
        };
        short.merge(&long);
        assert_eq!(short.buckets, vec![1, 2, 0, 5]);
        assert_eq!(short.count, 8);
        assert_eq!(short.sum, u64::MAX, "sum must saturate, not wrap");
        assert_eq!(short.max(), 9);
        assert_eq!(short.min(), 0);
    }
}
