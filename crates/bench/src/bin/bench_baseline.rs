//! Regenerates the committed bench baselines: deterministic multi-seed
//! runs of the `fig5` and `traffic` benches, written as
//! `BENCH_fig5.json` and `BENCH_traffic.json` in the working directory
//! (the repo root, when run via `run_experiments.sh`).
//!
//! The committed baselines are collected under `GBOOSTER_BENCH_SMOKE=1`
//! so the CI gate compares like for like; `benchdiff` refuses to compare
//! across a smoke-mode mismatch. See docs/OBSERVABILITY.md for the
//! baseline refresh policy.

use gbooster_bench::baseline::{baseline_seeds, collect, Baseline};
use gbooster_bench::{header, smoke};

fn main() {
    for bench in ["fig5", "traffic"] {
        header(&format!(
            "collecting {bench} baseline (seeds {:?}, smoke={})",
            baseline_seeds(),
            smoke()
        ));
        let run = collect(bench);
        let base = Baseline::from_run(&run);
        for (name, m) in &base.metrics {
            println!(
                "  {name:<24} mean {:>12.4}  sd {:>10.4}  ci95 ±{:>10.4}  [{}{}]",
                m.mean,
                m.sd,
                m.ci95,
                m.direction.tag(),
                if m.gated { ", gated" } else { "" },
            );
        }
        let path = format!("BENCH_{bench}.json");
        std::fs::write(&path, base.to_json()).expect("write baseline");
        println!("\nwrote {path}");
        println!("{}", run.attribution.render_top(5));
    }
}
