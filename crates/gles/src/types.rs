//! Strongly-typed OpenGL ES 2.0 vocabulary.
//!
//! The C API traffics in opaque `GLuint`/`GLenum` integers; here each kind
//! of object handle is a distinct newtype and each enumeration a real Rust
//! enum, so a buffer handle can never be bound where a texture handle is
//! expected.

use core::fmt;

macro_rules! handle {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// The reserved null handle (object 0 in GL).
            pub const NULL: $name = $name(0);

            /// Raw numeric value.
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// True for the null handle.
            pub const fn is_null(self) -> bool {
                self.0 == 0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}({})", stringify!($name), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                $name(raw)
            }
        }
    };
}

handle!(
    /// A texture object handle (`glGenTextures`).
    TextureId
);
handle!(
    /// A buffer object handle (`glGenBuffers`).
    BufferId
);
handle!(
    /// A shader object handle (`glCreateShader`).
    ShaderId
);
handle!(
    /// A program object handle (`glCreateProgram`).
    ProgramId
);
handle!(
    /// A framebuffer object handle (`glGenFramebuffers`).
    FramebufferId
);
handle!(
    /// A uniform location within a linked program.
    UniformLocation
);

/// Buffer binding targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BufferTarget {
    /// `GL_ARRAY_BUFFER` — vertex attributes.
    Array,
    /// `GL_ELEMENT_ARRAY_BUFFER` — vertex indices.
    ElementArray,
}

/// Buffer data usage hints.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BufferUsage {
    /// `GL_STATIC_DRAW`.
    StaticDraw,
    /// `GL_DYNAMIC_DRAW`.
    DynamicDraw,
    /// `GL_STREAM_DRAW`.
    StreamDraw,
}

/// Shader stages of the ES 2.0 pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ShaderKind {
    /// Vertex shader.
    Vertex,
    /// Fragment shader.
    Fragment,
}

/// Texture binding targets (ES 2.0 subset).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TextureTarget {
    /// `GL_TEXTURE_2D`.
    Texture2D,
    /// `GL_TEXTURE_CUBE_MAP`.
    CubeMap,
}

/// Texel formats (ES 2.0 subset).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PixelFormat {
    /// 8-bit red/green/blue/alpha.
    Rgba8,
    /// 8-bit red/green/blue.
    Rgb8,
    /// Single 8-bit channel (`GL_LUMINANCE`).
    Luminance,
    /// 16-bit 5-6-5 packed RGB.
    Rgb565,
}

impl PixelFormat {
    /// Bytes per texel.
    pub const fn bytes_per_pixel(self) -> usize {
        match self {
            PixelFormat::Rgba8 => 4,
            PixelFormat::Rgb8 => 3,
            PixelFormat::Luminance => 1,
            PixelFormat::Rgb565 => 2,
        }
    }
}

/// Primitive assembly modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Primitive {
    /// `GL_POINTS`.
    Points,
    /// `GL_LINES`.
    Lines,
    /// `GL_TRIANGLES`.
    Triangles,
    /// `GL_TRIANGLE_STRIP`.
    TriangleStrip,
    /// `GL_TRIANGLE_FAN`.
    TriangleFan,
}

impl Primitive {
    /// Number of primitives assembled from `vertex_count` vertices.
    pub fn primitive_count(self, vertex_count: u32) -> u32 {
        match self {
            Primitive::Points => vertex_count,
            Primitive::Lines => vertex_count / 2,
            Primitive::Triangles => vertex_count / 3,
            Primitive::TriangleStrip | Primitive::TriangleFan => vertex_count.saturating_sub(2),
        }
    }
}

/// Index element types for `glDrawElements`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IndexType {
    /// `GL_UNSIGNED_BYTE`.
    U8,
    /// `GL_UNSIGNED_SHORT`.
    U16,
}

impl IndexType {
    /// Bytes per index element.
    pub const fn size(self) -> usize {
        match self {
            IndexType::U8 => 1,
            IndexType::U16 => 2,
        }
    }
}

/// Vertex attribute component types (ES 2.0 subset).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AttribType {
    /// `GL_FLOAT`.
    F32,
    /// `GL_UNSIGNED_BYTE`.
    U8,
    /// `GL_SHORT`.
    I16,
}

impl AttribType {
    /// Bytes per component.
    pub const fn size(self) -> usize {
        match self {
            AttribType::F32 => 4,
            AttribType::U8 => 1,
            AttribType::I16 => 2,
        }
    }
}

/// Server-side capabilities toggled with `glEnable`/`glDisable`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Capability {
    /// `GL_BLEND`.
    Blend,
    /// `GL_DEPTH_TEST`.
    DepthTest,
    /// `GL_CULL_FACE`.
    CullFace,
    /// `GL_SCISSOR_TEST`.
    ScissorTest,
    /// `GL_DITHER`.
    Dither,
}

/// Blend factors (common subset).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BlendFactor {
    /// `GL_ZERO`.
    Zero,
    /// `GL_ONE`.
    One,
    /// `GL_SRC_ALPHA`.
    SrcAlpha,
    /// `GL_ONE_MINUS_SRC_ALPHA`.
    OneMinusSrcAlpha,
}

/// Depth comparison functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DepthFunc {
    /// `GL_LESS`.
    Less,
    /// `GL_LEQUAL`.
    LessEqual,
    /// `GL_ALWAYS`.
    Always,
}

/// Buffers selectable in `glClear`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct ClearMask {
    /// Clear the color buffer.
    pub color: bool,
    /// Clear the depth buffer.
    pub depth: bool,
    /// Clear the stencil buffer.
    pub stencil: bool,
}

impl ClearMask {
    /// Color + depth + stencil.
    pub const ALL: ClearMask = ClearMask {
        color: true,
        depth: true,
        stencil: true,
    };

    /// Color buffer only.
    pub const COLOR: ClearMask = ClearMask {
        color: true,
        depth: false,
        stencil: false,
    };
}

/// Errors raised by the simulated GL state machine / executor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GlError {
    /// A handle referenced an object that was never created or was deleted.
    InvalidHandle(String),
    /// An operation was issued in an invalid state (e.g. drawing with no
    /// program bound).
    InvalidOperation(String),
    /// A parameter value was out of range.
    InvalidValue(String),
}

impl fmt::Display for GlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GlError::InvalidHandle(m) => write!(f, "invalid handle: {m}"),
            GlError::InvalidOperation(m) => write!(f, "invalid operation: {m}"),
            GlError::InvalidValue(m) => write!(f, "invalid value: {m}"),
        }
    }
}

impl std::error::Error for GlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_distinct_types() {
        // This is a compile-time property; spot-check values and traits.
        let t = TextureId(3);
        let b = BufferId(3);
        assert_eq!(t.raw(), b.raw());
        assert!(TextureId::NULL.is_null());
        assert!(!t.is_null());
        assert_eq!(TextureId::from(7), TextureId(7));
    }

    #[test]
    fn pixel_format_sizes() {
        assert_eq!(PixelFormat::Rgba8.bytes_per_pixel(), 4);
        assert_eq!(PixelFormat::Rgb8.bytes_per_pixel(), 3);
        assert_eq!(PixelFormat::Luminance.bytes_per_pixel(), 1);
        assert_eq!(PixelFormat::Rgb565.bytes_per_pixel(), 2);
    }

    #[test]
    fn primitive_counts() {
        assert_eq!(Primitive::Triangles.primitive_count(9), 3);
        assert_eq!(Primitive::TriangleStrip.primitive_count(5), 3);
        assert_eq!(Primitive::TriangleFan.primitive_count(2), 0);
        assert_eq!(Primitive::Lines.primitive_count(7), 3);
        assert_eq!(Primitive::Points.primitive_count(4), 4);
    }

    #[test]
    fn index_and_attrib_sizes() {
        assert_eq!(IndexType::U8.size(), 1);
        assert_eq!(IndexType::U16.size(), 2);
        assert_eq!(AttribType::F32.size(), 4);
        assert_eq!(AttribType::I16.size(), 2);
    }

    #[test]
    fn error_display_is_lowercase_prose() {
        let e = GlError::InvalidOperation("no program bound".into());
        assert_eq!(e.to_string(), "invalid operation: no program bound");
    }

    #[test]
    fn clear_mask_constants() {
        const { assert!(ClearMask::ALL.depth) };
        const { assert!(!ClearMask::COLOR.depth) };
        const { assert!(ClearMask::COLOR.color) };
    }
}
