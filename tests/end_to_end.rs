//! End-to-end integration tests spanning every crate: the paper's
//! headline claims, exercised through the full session engine.

use gbooster::core::config::{CloudConfig, ExecutionMode, OffloadConfig, SessionConfig};
use gbooster::core::session::{Session, SessionReport};
use gbooster::sim::device::DeviceSpec;
use gbooster::telemetry::names;
use gbooster::workload::apps::AppTitle;
use gbooster::workload::games::GameTitle;

const SECS: u64 = 30;

fn local(game: GameTitle, dev: DeviceSpec) -> SessionReport {
    Session::run(
        &SessionConfig::builder(game, dev)
            .duration_secs(SECS)
            .seed(99)
            .build(),
    )
}

fn offloaded(game: GameTitle, dev: DeviceSpec) -> SessionReport {
    Session::run(
        &SessionConfig::builder(game, dev)
            .duration_secs(SECS)
            .seed(99)
            .mode(ExecutionMode::Offloaded(OffloadConfig::default()))
            .build(),
    )
}

#[test]
fn abstract_claim_fps_boost_up_to_85_percent() {
    // "it can boost applications' frame rates by up to 85%"
    let mut best = 0.0f64;
    for game in [
        GameTitle::g1_gta_san_andreas(),
        GameTitle::g2_modern_combat(),
    ] {
        let l = local(game.clone(), DeviceSpec::nexus5());
        let o = offloaded(game, DeviceSpec::nexus5());
        best = best.max(o.median_fps / l.median_fps - 1.0);
    }
    assert!(
        best > 0.5,
        "best action boost {best:.2}, paper reports up to 0.85"
    );
}

#[test]
fn abstract_claim_energy_saving() {
    // "GBooster can preserve up to 70% energy compared with local
    // execution" — our simulated stack preserves >= 40%.
    let l = local(GameTitle::g2_modern_combat(), DeviceSpec::nexus5());
    let o = offloaded(GameTitle::g2_modern_combat(), DeviceSpec::nexus5());
    let saving = 1.0 - o.normalized_energy(&l);
    assert!(saving > 0.4, "action energy saving {saving:.2}");
}

#[test]
fn genre_ordering_of_benefit() {
    // Action gains the most FPS, puzzle the least (Section VII-B).
    let gain = |game: GameTitle| {
        let l = local(game.clone(), DeviceSpec::nexus5());
        let o = offloaded(game, DeviceSpec::nexus5());
        o.median_fps - l.median_fps
    };
    let action = gain(GameTitle::g2_modern_combat());
    let rpg = gain(GameTitle::g3_star_wars());
    let puzzle = gain(GameTitle::g5_candy_crush());
    assert!(
        action > puzzle + 5.0,
        "action {action:.1} vs puzzle {puzzle:.1}"
    );
    assert!(rpg > puzzle, "rpg {rpg:.1} vs puzzle {puzzle:.1}");
}

#[test]
fn offloading_restores_fps_stability() {
    // Local action play destabilizes once the GPU throttles; the
    // actively-cooled service device does not (Section VII-B).
    let l = local(GameTitle::g1_gta_san_andreas(), DeviceSpec::nexus5());
    let o = offloaded(GameTitle::g1_gta_san_andreas(), DeviceSpec::nexus5());
    assert!(
        l.stability < 0.80,
        "local stability {:.2} (paper: 60%)",
        l.stability
    );
    assert!(
        o.stability > l.stability + 0.05,
        "offloaded stability {:.2} must beat local {:.2} (paper: 75% vs 60%)",
        o.stability,
        l.stability
    );
}

#[test]
fn new_generation_phone_barely_benefits() {
    let l = local(GameTitle::g2_modern_combat(), DeviceSpec::lg_g5());
    let o = offloaded(GameTitle::g2_modern_combat(), DeviceSpec::lg_g5());
    assert!(
        (o.median_fps - l.median_fps).abs() < 8.0,
        "LG G5: {:.1} -> {:.1}",
        l.median_fps,
        o.median_fps
    );
    assert!(
        o.response_time_ms > l.response_time_ms,
        "response must rise when there is no FPS headroom to win back"
    );
}

#[test]
fn response_time_stays_below_human_threshold() {
    // "the average response time for human being is generally above
    // 100 ms" — every offloaded game must stay well below it.
    for game in GameTitle::corpus() {
        let o = offloaded(game.clone(), DeviceSpec::nexus5());
        assert!(
            o.response_time_ms < 60.0,
            "{} response {:.1} ms",
            game.id,
            o.response_time_ms
        );
    }
}

#[test]
fn cloud_baseline_matches_section_7f() {
    let report = Session::run(
        &SessionConfig::builder(GameTitle::g1_gta_san_andreas(), DeviceSpec::nexus5())
            .duration_secs(SECS)
            .seed(99)
            .mode(ExecutionMode::Cloud(CloudConfig::default()))
            .build(),
    );
    assert!(
        (report.median_fps - 30.0).abs() <= 2.0,
        "fps {}",
        report.median_fps
    );
    assert!(
        (120.0..=260.0).contains(&report.response_time_ms),
        "cloud response {:.0} ms (paper ~150)",
        report.response_time_ms
    );
}

#[test]
fn interface_switching_saves_radio_energy() {
    let game = GameTitle::g3_star_wars(); // borderline demand: switching matters
    let with = offloaded(game.clone(), DeviceSpec::nexus5());
    let without = Session::run(
        &SessionConfig::builder(game, DeviceSpec::nexus5())
            .duration_secs(SECS)
            .seed(99)
            .mode(ExecutionMode::Offloaded(OffloadConfig {
                interface_switching: false,
                ..OffloadConfig::default()
            }))
            .build(),
    );
    assert!(
        without.energy.radio_joules() > with.energy.radio_joules(),
        "switching {:.1} J vs always-wifi {:.1} J",
        with.energy.radio_joules(),
        without.energy.radio_joules()
    );
    assert!(with.bt_bytes > 0, "switching must actually use Bluetooth");
}

#[test]
fn multi_device_scaling_saturates_at_buffer_depth() {
    let fps_at = |n: usize| {
        let pool = [
            DeviceSpec::nvidia_shield(),
            DeviceSpec::dell_optiplex_9010(),
            DeviceSpec::dell_m4600(),
            DeviceSpec::minix_neo_u1(),
        ];
        let report = Session::run(
            &SessionConfig::builder(GameTitle::g1_gta_san_andreas(), DeviceSpec::nexus5())
                .duration_secs(SECS)
                .seed(99)
                .mode(ExecutionMode::Offloaded(OffloadConfig {
                    service_devices: pool[..n].to_vec(),
                    ..OffloadConfig::default()
                }))
                .build(),
        );
        assert!(report.state_consistent);
        report.median_fps
    };
    let one = fps_at(1);
    let three = fps_at(3);
    let four = fps_at(4);
    assert!(
        three > one,
        "3 devices {three:.1} must beat 1 device {one:.1}"
    );
    assert!(
        (four - three).abs() <= 4.0,
        "4th device must not help: {three:.1} vs {four:.1}"
    );
}

#[test]
fn non_gaming_apps_table3() {
    for app in AppTitle::all() {
        let l = Session::run(
            &SessionConfig::builder(app.clone(), DeviceSpec::nexus5())
                .duration_secs(SECS)
                .seed(99)
                .build(),
        );
        let o = Session::run(
            &SessionConfig::builder(app.clone(), DeviceSpec::nexus5())
                .duration_secs(SECS)
                .seed(99)
                .mode(ExecutionMode::Offloaded(OffloadConfig::default()))
                .build(),
        );
        assert!(
            (o.median_fps - l.median_fps).abs() < 6.0,
            "{}: no FPS boost expected",
            app.name
        );
        let norm = o.normalized_energy(&l);
        assert!(
            (0.80..1.0).contains(&norm),
            "{}: normalized energy {norm:.2} (paper ~0.92-0.94)",
            app.name
        );
    }
}

#[test]
fn sessions_are_bit_deterministic() {
    let cfg = SessionConfig::builder(GameTitle::g4_final_fantasy(), DeviceSpec::nexus5())
        .duration_secs(20)
        .seed(1234)
        .mode(ExecutionMode::Offloaded(OffloadConfig::default()))
        .build();
    let a = Session::run(&cfg);
    let b = Session::run(&cfg);
    assert_eq!(a.median_fps, b.median_fps);
    assert_eq!(a.uplink_bytes, b.uplink_bytes);
    assert_eq!(a.downlink_bytes, b.downlink_bytes);
    assert_eq!(a.frames, b.frames);
    assert!((a.energy.total_joules() - b.energy.total_joules()).abs() < 1e-9);
}

#[test]
fn different_seeds_vary_but_stay_in_band() {
    let fps: Vec<f64> = (0..4)
        .map(|seed| {
            Session::run(
                &SessionConfig::builder(GameTitle::g2_modern_combat(), DeviceSpec::nexus5())
                    .duration_secs(20)
                    .seed(seed)
                    .mode(ExecutionMode::Offloaded(OffloadConfig::default()))
                    .build(),
            )
            .median_fps
        })
        .collect();
    let min = fps.iter().cloned().fold(f64::MAX, f64::min);
    let max = fps.iter().cloned().fold(f64::MIN, f64::max);
    assert!(max - min < 10.0, "seed variance too high: {fps:?}");
    assert!(min > 30.0, "all seeds must show a solid boost: {fps:?}");
}

#[test]
fn offloaded_run_emits_one_root_span_per_displayed_frame() {
    let o = offloaded(GameTitle::g1_gta_san_andreas(), DeviceSpec::nexus5());
    assert_eq!(
        o.trace.len() as u64 + o.trace.dropped(),
        o.frames,
        "exactly one span tree per displayed frame"
    );
    assert!(!o.trace.is_empty());
    for frame in o.trace.frames() {
        let root = &frame.root;
        assert_eq!(root.name, names::stage::FRAME);
        // Eleven user-device stages plus the stitched remote subtree.
        assert_eq!(
            root.children.len(),
            names::stage::PIPELINE.len() + 1,
            "frame {} has {} stages",
            frame.seq,
            root.children.len()
        );
        for stage in names::stage::PIPELINE {
            let child = root
                .child(stage)
                .unwrap_or_else(|| panic!("frame {} missing stage {stage}", frame.seq));
            // Every stage nests inside its frame's root interval.
            assert!(child.start >= root.start && child.end <= root.end);
        }
        let remote = root
            .child(names::remote::SUBTREE)
            .unwrap_or_else(|| panic!("frame {} missing the remote subtree", frame.seq));
        assert_eq!(remote.children.len(), names::remote::STAGES.len());
        for span in &remote.children {
            assert!(span.start >= root.start && span.end <= root.end);
        }
    }
    // Sequence numbers are the display order, 0-based and strictly rising.
    for (i, frame) in o.trace.frames().iter().enumerate() {
        assert_eq!(frame.seq, i as u64);
    }
}

#[test]
fn telemetry_report_covers_the_acceptance_metrics() {
    let o = offloaded(GameTitle::g2_modern_combat(), DeviceSpec::nexus5());
    // The registry snapshot must expose every headline metric.
    let snap = &o.telemetry;
    assert!(
        snap.cache_hit_rate() > 0.5,
        "hit rate {}",
        snap.cache_hit_rate()
    );
    let ratio = snap.compression_ratio();
    assert!(ratio > 0.0 && ratio < 0.7, "compression ratio {ratio}");
    assert!(snap.retransmit_count() > 0, "expected-loss retransmits");
    for stage in names::stage::PIPELINE {
        let h = snap
            .histogram(stage)
            .unwrap_or_else(|| panic!("no histogram for {stage}"));
        assert_eq!(h.count(), o.frames, "{stage} must record every frame");
        assert!(h.p50_ms() <= h.p90_ms() && h.p90_ms() <= h.p99_ms());
    }
    // JSONL trace: one line per retained frame, each a frame object.
    let jsonl = o.frame_trace_jsonl();
    assert_eq!(jsonl.lines().count(), o.trace.len());
    assert!(jsonl.starts_with("{\"seq\":0,"));
    // Human-readable report mentions the derived metrics.
    let report = o.telemetry_report();
    for needle in [
        "cache hit rate",
        "compression ratio",
        "retransmits",
        "radio mispredictions",
        names::stage::UPLINK,
    ] {
        assert!(
            report.contains(needle),
            "report missing {needle:?}:\n{report}"
        );
    }
}

#[test]
fn exporters_render_both_devices_from_one_session() {
    let o = offloaded(GameTitle::g2_modern_combat(), DeviceSpec::nexus5());
    let chrome = gbooster::telemetry::chrome_trace(&o.trace);
    // Both device timelines are present: user spans on pid 1, the
    // stitched service spans on pid 2.
    assert!(chrome.contains("\"name\":\"user-device\""));
    assert!(chrome.contains("\"name\":\"service-device\""));
    assert!(chrome.contains("\"name\":\"stage.uplink\",\"ph\":\"X\""));
    assert!(chrome.contains("\"name\":\"remote.replay\",\"ph\":\"X\""));
    assert!(chrome.ends_with("\"displayTimeUnit\":\"ms\"}"));
    let prom = gbooster::telemetry::prometheus_text(&o.telemetry);
    for metric in [
        "# TYPE gbooster_trace_stitched_frames counter",
        "# TYPE gbooster_trace_clock_offset_us gauge",
        "# TYPE gbooster_remote_replay summary",
        "gbooster_remote_encode{quantile=\"0.99\"}",
        "gbooster_stage_uplink_count",
    ] {
        assert!(prom.contains(metric), "prometheus text missing {metric}");
    }
}

#[test]
fn memory_overhead_is_tens_of_megabytes() {
    let o = offloaded(GameTitle::g1_gta_san_andreas(), DeviceSpec::nexus5());
    assert!(
        (10.0..=100.0).contains(&o.extra_memory_mb),
        "memory {:.1} MB (paper 47.8 MB)",
        o.extra_memory_mb
    );
}
