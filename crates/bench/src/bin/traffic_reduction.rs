//! Section V-A: traffic-redundancy elimination.
//!
//! Paper datapoints: unoptimized traffic ≈200 Mbps even at 600×480@25;
//! LZ4 reaches a 70 % compression ratio on command streams; Turbo encodes
//! at up to 90 MP/s with ratios up to 25:1 while x264 on ARM manages only
//! ~1 MP/s (vs the ~7 MP/s needed for real time).

use std::time::Instant;

use gbooster_bench::{compare, header, write_bench_json};
use gbooster_codec::stats::megapixels_per_sec;
use gbooster_codec::turbo::TurboEncoder;
use gbooster_codec::video::{EncoderHost, VideoEncoderModel};
use gbooster_codec::{lz4, CommandCache};
use gbooster_core::forward::CommandForwarder;
use gbooster_gles::serialize::encode_stream;
use gbooster_sim::rng::derived;
use gbooster_telemetry::{names, Registry};
use gbooster_workload::genre::GenreProfile;
use gbooster_workload::tracegen::TraceGenerator;
use rand::Rng;

fn main() {
    header("Section V-A: unoptimized traffic volume");
    // The paper's low-quality setting: 600x480 at 25 FPS.
    let (w, h, fps) = (600u32, 480u32, 25u64);
    let mut gen = TraceGenerator::new(GenreProfile::action(), 1.0, w, h, 3);
    gen.setup_trace();
    let mut raw_cmd_bytes = 0usize;
    let frames = fps * 4;
    for _ in 0..frames {
        let frame = gen.next_frame(1.0 / fps as f64);
        raw_cmd_bytes += frame.payload_bytes();
    }
    // Raw frames going back: RGBA at full rate.
    let raw_image_bytes = (w as u64 * h as u64 * 4 * frames) as usize;
    let raw_mbps = (raw_cmd_bytes + raw_image_bytes) as f64 * 8.0 / 4.0 / 1e6;
    println!("raw commands + raw frames at 600x480@25: {raw_mbps:.0} Mbps");
    compare(
        "unoptimized traffic",
        "~200 Mbps",
        &format!("{raw_mbps:.0} Mbps"),
    );

    header("LZ4 on command streams");
    let mut gen = TraceGenerator::new(GenreProfile::action(), 1.0, 1280, 720, 5);
    gen.setup_trace();
    let mut total_raw = 0usize;
    let mut total_lz4 = 0usize;
    for _ in 0..60 {
        let frame = gen.next_frame(1.0 / 30.0);
        // Encode through the real wire format, then LZ4 alone (no cache),
        // matching the paper's isolated LZ4 measurement.
        let resolved: Vec<_> = frame
            .commands
            .iter()
            .filter(|c| !c.has_unresolved_pointer())
            .cloned()
            .collect();
        let encoded = encode_stream(&resolved).expect("resolved commands encode");
        total_raw += encoded.len();
        total_lz4 += lz4::compress(&encoded).len();
    }
    let lz4_ratio = total_lz4 as f64 / total_raw as f64;
    println!("command stream: {total_raw} B -> {total_lz4} B (ratio {lz4_ratio:.2})");
    compare(
        "LZ4 compression ratio",
        "70%",
        &format!("{:.0}%", lz4_ratio * 100.0),
    );
    // Within a couple of points of the paper's 70% — the exact value
    // tracks the generated command mix, which varies with the RNG stream.
    assert!(lz4_ratio <= 0.75, "lz4 ratio {lz4_ratio:.3}");

    header("LRU command cache + LZ4 (the full uplink pipeline)");
    // Numbers come from the telemetry registry the forwarder mirrors
    // into — the same counters the session engine reports.
    let registry = Registry::new();
    let mut gen = TraceGenerator::new(GenreProfile::action(), 1.0, 1280, 720, 5);
    let mut fw = CommandForwarder::new();
    fw.attach_registry(&registry);
    let setup = gen.setup_trace();
    fw.forward_frame(&setup.commands, gen.client_memory())
        .unwrap();
    let setup_snap = registry.snapshot();
    let (setup_raw, setup_wire) = (
        setup_snap.counter(names::forward::RAW_BYTES),
        setup_snap.counter(names::forward::WIRE_BYTES),
    );
    for _ in 0..60 {
        let frame = gen.next_frame(1.0 / 30.0);
        fw.forward_frame(&frame.commands, gen.client_memory())
            .unwrap();
    }
    let snap = registry.snapshot();
    let pipe_raw = snap.counter(names::forward::RAW_BYTES) - setup_raw;
    let pipe_wire = snap.counter(names::forward::WIRE_BYTES) - setup_wire;
    println!(
        "cache+lz4: {pipe_raw} B -> {pipe_wire} B (ratio {:.2}, hit rate {:.0}%, {} commands)",
        pipe_wire as f64 / pipe_raw as f64,
        snap.cache_hit_rate() * 100.0,
        snap.counter(names::forward::COMMANDS),
    );

    header("Turbo image encoder vs x264 on ARM");
    // Real measurement: encode a moving scene with the real Turbo codec.
    let (tw, th) = (320u32, 240u32);
    let turbo_registry = Registry::new();
    let mut enc = TurboEncoder::new(tw, th, 80);
    enc.attach_registry(&turbo_registry);
    let mut rng = derived(9, "turbo-bench");
    let mut frame_data = vec![40u8; (tw * th * 4) as usize];
    enc.encode(&frame_data);
    let keyframe_snap = turbo_registry.snapshot();
    let start = Instant::now();
    let mut pixels = 0u64;
    for step in 0..40u32 {
        // Move a 32x32 block across the frame.
        for px in frame_data.chunks_exact_mut(4) {
            px[0] = px[0].wrapping_sub(px[0] / 32);
        }
        for y in (step % 200)..(step % 200 + 32).min(th) {
            for x in (step * 7 % 280)..(step * 7 % 280 + 32).min(tw) {
                let i = ((y * tw + x) * 4) as usize;
                frame_data[i] = 250;
                frame_data[i + 1] = rng.gen();
            }
        }
        enc.encode(&frame_data);
        pixels += (tw * th) as u64;
    }
    let turbo_mps = megapixels_per_sec(pixels, start.elapsed());
    // Delta-phase byte totals from the registry (keyframe excluded).
    let turbo_snap = turbo_registry.snapshot();
    let raw_bytes = turbo_snap.counter(names::service::TURBO_RAW_BYTES)
        - keyframe_snap.counter(names::service::TURBO_RAW_BYTES);
    let encoded_bytes = turbo_snap.counter(names::service::TURBO_ENCODED_BYTES)
        - keyframe_snap.counter(names::service::TURBO_ENCODED_BYTES);
    let turbo_ratio = raw_bytes as f64 / encoded_bytes as f64;
    let x264 = VideoEncoderModel::for_host(EncoderHost::Arm);
    println!(
        "turbo: {turbo_mps:.0} MP/s, ratio {turbo_ratio:.0}:1, changed tiles {:.0}% | x264/ARM model: {:.0} MP/s",
        turbo_snap.turbo_changed_tile_fraction() * 100.0,
        x264.speed_mpixels_per_sec
    );
    compare(
        "Turbo throughput",
        "up to 90 MP/s",
        &format!("{turbo_mps:.0} MP/s"),
    );
    compare("Turbo ratio", "up to 25:1", &format!("{turbo_ratio:.0}:1"));
    compare("x264 on ARM", "~1 MP/s (< 7 MP/s needed)", "1 MP/s (model)");
    assert!(!x264.is_realtime_for(7.0));

    header("TCP vs reliable-UDP (Section IV-B transport choice)");
    use gbooster_net::channel::ChannelModel;
    use gbooster_net::rudp::{simulate_transfer_traced, RudpConfig};
    use gbooster_net::tcp::TcpModel;
    let mut ch = ChannelModel::wifi_80211n();
    ch.loss_rate = 0.0;
    let batch = 20_000;
    let rudp_registry = Registry::new();
    let rudp = simulate_transfer_traced(batch, &ch, RudpConfig::default(), 1, Some(&rudp_registry));
    let tcp = TcpModel::new(ch).transfer_time(batch);
    let rudp_snap = rudp_registry.snapshot();
    println!(
        "one 20 KB command batch: rudp {:.2} ms ({} datagrams, {} retransmits, rtt p50 {:.2} ms), tcp {:.2} ms",
        rudp.completion.as_millis_f64(),
        rudp_snap.counter(names::net::RUDP_DATAGRAMS),
        rudp_snap.counter(names::net::RUDP_RETRANSMITS),
        rudp_snap
            .histogram(names::net::RUDP_RTT)
            .map_or(0.0, |h| h.p50_ms()),
        tcp.as_millis_f64()
    );
    compare(
        "TCP inherent delay",
        "~40 ms",
        &format!("{:.0} ms floor", tcp.as_millis_f64()),
    );
    compare(
        "RUDP delivery",
        "fast delivery",
        &format!("{:.1} ms", rudp.completion.as_millis_f64()),
    );

    // Cache-savings sanity: repeated command bytes become 9-byte refs.
    let mut cache = CommandCache::new(64);
    let cmd = vec![7u8; 120];
    cache.offer(&cmd);
    let token = cache.offer(&cmd);
    println!(
        "\nrepeat command: {} B -> {} B token",
        cmd.len() + 5,
        token.wire_bytes()
    );

    // Machine-readable artifact for the CI smoke gate.
    write_bench_json(
        "traffic_reduction",
        &[
            ("raw_traffic_mbps", raw_mbps),
            ("lz4_ratio", lz4_ratio),
            ("pipeline_ratio", pipe_wire as f64 / pipe_raw as f64),
            ("cache_hit_rate", snap.cache_hit_rate()),
            ("turbo_mpixels_per_sec", turbo_mps),
            ("turbo_ratio", turbo_ratio),
            ("rudp_completion_ms", rudp.completion.as_millis_f64()),
            ("tcp_completion_ms", tcp.as_millis_f64()),
        ],
    )
    .expect("write BENCH_traffic_reduction.json");
}
