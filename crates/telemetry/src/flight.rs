//! The fault-triggered flight recorder.
//!
//! Like an aircraft's, the recorder runs continuously and cheaply — a
//! bounded ring of the last N fully-stitched frame traces — and only
//! *emits* anything when a fault fires. The dump is a structured
//! postmortem: the fault, when it fired, the retained frame traces, and
//! a full registry snapshot. A one-shot latch guarantees **exactly
//! one** dump per recorder no matter how many faults follow the first,
//! so a storm of secondary faults cannot bury the primary evidence.

use std::collections::VecDeque;

use gbooster_sim::time::SimTime;

use crate::incident::{OpsEventKind, OpsLog};
use crate::report::TelemetrySnapshot;
use crate::trace::FrameTrace;

/// The fault classes the session engine detects.
///
/// The engine's detector chain ranks these by severity when several
/// symptoms coincide on one frame: pool-wide loss outranks a single
/// node's death, which outranks the fallback flip it caused, which
/// outranks the rejoin that healed it, which outranks the transport
/// symptoms (storm, timeout, flap) that ride along as side effects.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Fault {
    /// A burst of datagram retransmissions above the storm threshold.
    LossStorm,
    /// A frame's dispatch wait exceeded the timeout budget.
    DispatchTimeout,
    /// The WiFi interface flapped (rapid off/on cycling).
    InterfaceFlap,
    /// A service node stopped responding and its in-flight frames were
    /// re-dispatched.
    NodeLoss,
    /// Every service node is dead: the session has no remote pool left.
    AllNodesLost,
    /// The engine flipped SwapBuffers to the local-render path (pool
    /// empty or SLO breached for K consecutive frames).
    FallbackEngaged,
    /// A dead node completed its state resync and re-entered the pool.
    NodeRejoined,
    /// A live migration could not complete: the destination died
    /// mid-transfer and no survivor was left to retarget to
    /// (docs/MIGRATION.md).
    MigrationStalled,
}

impl Fault {
    /// Stable machine-readable name, used in dump headers.
    pub fn as_str(&self) -> &'static str {
        match self {
            Fault::LossStorm => "loss_storm",
            Fault::DispatchTimeout => "dispatch_timeout",
            Fault::InterfaceFlap => "interface_flap",
            Fault::NodeLoss => "node_loss",
            Fault::AllNodesLost => "all_nodes_lost",
            Fault::FallbackEngaged => "fallback_engaged",
            Fault::NodeRejoined => "node_rejoined",
            Fault::MigrationStalled => "migration_stalled",
        }
    }
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One emitted postmortem.
#[derive(Clone, Debug)]
pub struct FlightDump {
    /// What fired.
    pub fault: Fault,
    /// Sim time of the trigger.
    pub at: SimTime,
    /// The last-N stitched frame traces, oldest first.
    pub frames: Vec<FrameTrace>,
    /// Registry snapshot taken at trigger time.
    pub snapshot: TelemetrySnapshot,
}

impl FlightDump {
    /// Serializes the dump as JSON Lines: a fault header, one line per
    /// retained frame (same schema as the session trace JSONL), and a
    /// snapshot trailer.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"fault\":\"{}\",\"at_us\":{},\"frames\":{}}}\n",
            self.fault.as_str(),
            self.at.as_micros(),
            self.frames.len()
        ));
        for f in &self.frames {
            out.push_str(&format!("{{\"seq\":{},\"span\":", f.seq));
            f.root.write_json(&mut out);
            out.push_str("}\n");
        }
        out.push_str("{\"snapshot\":");
        out.push_str(&self.snapshot.to_json());
        out.push_str("}\n");
        out
    }
}

/// The always-on ring + one-shot trigger.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    ring: VecDeque<FrameTrace>,
    depth: usize,
    fired: bool,
    faults_seen: u64,
    dumps: Vec<FlightDump>,
    ops: Option<OpsLog>,
}

impl FlightRecorder {
    /// Creates a recorder retaining the last `depth` frames (minimum 1).
    pub fn new(depth: usize) -> Self {
        FlightRecorder {
            ring: VecDeque::with_capacity(depth.max(1)),
            depth: depth.max(1),
            fired: false,
            faults_seen: 0,
            dumps: Vec::new(),
            ops: None,
        }
    }

    /// Journals the one-shot dump emission into `ops`, so incident
    /// timelines can link the postmortem that fired inside them.
    pub fn attach_ops(&mut self, ops: OpsLog) {
        self.ops = Some(ops);
    }

    /// Ring depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Records a stitched frame trace, evicting the oldest past `depth`.
    pub fn on_frame(&mut self, trace: &FrameTrace) {
        if self.ring.len() == self.depth {
            self.ring.pop_front();
        }
        self.ring.push_back(trace.clone());
    }

    /// Reports a fault. The first call emits a dump and returns `true`;
    /// every later call only bumps [`FlightRecorder::faults_seen`] —
    /// the latch keeps the dump describing the *primary* fault.
    pub fn trigger(&mut self, fault: Fault, at: SimTime, snapshot: TelemetrySnapshot) -> bool {
        self.faults_seen += 1;
        if self.fired {
            return false;
        }
        self.fired = true;
        if let Some(ops) = &self.ops {
            ops.push(
                at,
                OpsEventKind::FlightDump {
                    fault: fault.as_str(),
                },
            );
        }
        self.dumps.push(FlightDump {
            fault,
            at,
            frames: self.ring.iter().cloned().collect(),
            snapshot,
        });
        true
    }

    /// True once a dump has been emitted.
    pub fn has_fired(&self) -> bool {
        self.fired
    }

    /// Faults reported, including latched-out ones.
    pub fn faults_seen(&self) -> u64 {
        self.faults_seen
    }

    /// The emitted dumps (length 0 or 1 by construction).
    pub fn dumps(&self) -> &[FlightDump] {
        &self.dumps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names;
    use crate::trace::SpanNode;

    fn frame(seq: u64) -> FrameTrace {
        FrameTrace {
            seq,
            root: SpanNode::new(
                names::stage::FRAME,
                SimTime::from_micros(seq * 1_000),
                SimTime::from_micros(seq * 1_000 + 900),
            ),
        }
    }

    #[test]
    fn ring_keeps_only_the_last_n() {
        let mut rec = FlightRecorder::new(3);
        for seq in 0..10 {
            rec.on_frame(&frame(seq));
        }
        assert!(rec.trigger(
            Fault::LossStorm,
            SimTime::from_micros(99),
            TelemetrySnapshot::default()
        ));
        let dump = &rec.dumps()[0];
        let seqs: Vec<u64> = dump.frames.iter().map(|f| f.seq).collect();
        assert_eq!(seqs, [7, 8, 9]);
    }

    #[test]
    fn latch_emits_exactly_one_dump() {
        let mut rec = FlightRecorder::new(2);
        rec.on_frame(&frame(0));
        assert!(rec.trigger(
            Fault::DispatchTimeout,
            SimTime::from_micros(5),
            TelemetrySnapshot::default()
        ));
        assert!(!rec.trigger(
            Fault::LossStorm,
            SimTime::from_micros(6),
            TelemetrySnapshot::default()
        ));
        assert!(!rec.trigger(
            Fault::InterfaceFlap,
            SimTime::from_micros(7),
            TelemetrySnapshot::default()
        ));
        assert_eq!(rec.dumps().len(), 1);
        assert_eq!(rec.dumps()[0].fault, Fault::DispatchTimeout);
        assert_eq!(rec.faults_seen(), 3);
        assert!(rec.has_fired());
    }

    #[test]
    fn dump_jsonl_has_header_frames_and_trailer() {
        let mut rec = FlightRecorder::new(4);
        for seq in 0..2 {
            rec.on_frame(&frame(seq));
        }
        rec.trigger(
            Fault::InterfaceFlap,
            SimTime::from_micros(2_500),
            TelemetrySnapshot::default(),
        );
        let jsonl = rec.dumps()[0].to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4); // header + 2 frames + snapshot
        assert_eq!(
            lines[0],
            "{\"fault\":\"interface_flap\",\"at_us\":2500,\"frames\":2}"
        );
        assert!(lines[1].starts_with("{\"seq\":0,\"span\":{\"name\":\"frame\""));
        assert!(lines[3].starts_with("{\"snapshot\":{\"counters\""));
    }

    #[test]
    fn trigger_journals_the_dump_once_into_an_attached_ops_log() {
        let ops = OpsLog::new();
        let mut rec = FlightRecorder::new(2);
        rec.attach_ops(ops.clone());
        rec.trigger(
            Fault::NodeLoss,
            SimTime::from_micros(1_000),
            TelemetrySnapshot::default(),
        );
        rec.trigger(
            Fault::LossStorm,
            SimTime::from_micros(2_000),
            TelemetrySnapshot::default(),
        );
        // One dump, one journal entry — the latch gates both.
        let events = ops.events();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].kind,
            OpsEventKind::FlightDump { fault: "node_loss" }
        );
        assert_eq!(events[0].at, SimTime::from_micros(1_000));
    }

    #[test]
    fn zero_depth_is_promoted_to_one() {
        let mut rec = FlightRecorder::new(0);
        assert_eq!(rec.depth(), 1);
        rec.on_frame(&frame(0));
        rec.on_frame(&frame(1));
        rec.trigger(
            Fault::LossStorm,
            SimTime::ZERO,
            TelemetrySnapshot::default(),
        );
        assert_eq!(rec.dumps()[0].frames.len(), 1);
        assert_eq!(rec.dumps()[0].frames[0].seq, 1);
    }
}
