//! End-to-end attribution reconciliation: the resource-attribution
//! tables in a session report must agree with the aggregate telemetry
//! counters the pipeline already kept — byte-for-byte on the wire axes,
//! microsecond-for-microsecond on the stage axis, and to within 0.1 %
//! on energy (float summation order is the only slack).

use gbooster_core::config::{ExecutionMode, OffloadConfig, SessionConfig};
use gbooster_core::session::{Session, SessionReport};
use gbooster_sim::device::DeviceSpec;
use gbooster_telemetry::names;
use gbooster_workload::games::GameTitle;

fn offloaded_report() -> SessionReport {
    Session::run(
        &SessionConfig::builder(GameTitle::g1_gta_san_andreas(), DeviceSpec::nexus5())
            .duration_secs(10)
            .seed(77)
            .mode(ExecutionMode::Offloaded(OffloadConfig::default()))
            .build(),
    )
}

#[test]
fn attribution_reconciles_with_aggregate_counters() {
    let report = offloaded_report();
    let attr = &report.attribution;
    assert!(!attr.is_empty(), "offloaded session must attribute");

    // Uplink: the per-(category, outcome) wire bytes were apportioned
    // from the same frames the forwarder's counter summed — exact.
    assert_eq!(
        attr.uplink_wire_total(),
        report.telemetry.counter(names::forward::WIRE_BYTES),
        "uplink attribution vs forward.wire_bytes"
    );
    let raw_total: u64 = attr.uplink.values().map(|c| c.raw_bytes).sum();
    assert_eq!(
        raw_total,
        report.telemetry.counter(names::forward::RAW_BYTES),
        "uplink raw bytes vs forward.raw_bytes"
    );

    // Link table: every radio transfer was tapped where the transport
    // counted it — exact per direction.
    assert_eq!(
        attr.link_bytes(names::attr::DIR_UPLINK),
        report.uplink_bytes,
        "link uplink bytes vs net.uplink_bytes"
    );
    assert_eq!(
        attr.link_bytes(names::attr::DIR_DOWNLINK),
        report.downlink_bytes,
        "link downlink bytes vs net.downlink_bytes"
    );

    // Downlink kinds: every received byte belongs to one presented
    // frame, keyframe or tile delta — exact in a fault-free session.
    assert_eq!(
        attr.downlink_total(),
        report.downlink_bytes,
        "downlink kind attribution vs net.downlink_bytes"
    );
    let key_frames = attr
        .downlink
        .get(names::attr::KIND_KEYFRAME)
        .map_or(0, |c| c.frames);
    let delta_frames = attr
        .downlink
        .get(names::attr::KIND_TILE_DELTA)
        .map_or(0, |c| c.frames);
    assert!(key_frames >= 1, "at least the first frame is a keyframe");
    assert!(delta_frames > key_frames, "steady state is tile deltas");
    assert_eq!(report.frames, key_frames + delta_frames);

    // Stage time: attribution mirrors the per-stage histograms sample
    // for sample, adding node and interface — sums must match exactly.
    for stage in names::stage::PIPELINE {
        let hist_sum = report.telemetry.histogram(stage).map_or(0, |h| h.sum());
        assert_eq!(
            attr.stage_micros(stage),
            hist_sum,
            "stage micros vs histogram sum for {stage}"
        );
    }

    // Energy: the component split re-buckets the meter's joules along
    // stage x node x iface; only float summation order may differ.
    let meter_total = report.energy.total_joules();
    let attr_total = attr.energy_total();
    assert!(
        (attr_total - meter_total).abs() <= meter_total * 0.001,
        "energy attribution {attr_total} vs meter {meter_total}"
    );

    // The human-readable top-N tables actually render the data.
    let rendered = report.attribution_report();
    for needle in [
        "uplink bytes by GL category",
        names::attr::KIND_TILE_DELTA,
        names::stage::RENDER,
        names::attr::IFACE_WIFI,
    ] {
        assert!(rendered.contains(needle), "report missing {needle:?}");
    }
}

#[test]
fn attribution_snapshot_round_trips_and_diffs_clean() {
    let report = offloaded_report();
    let attr = &report.attribution;
    let parsed = gbooster_telemetry::AttributionSnapshot::from_json(&attr.to_json())
        .expect("attribution JSON parses back");
    assert_eq!(&parsed, attr, "JSON round trip preserves every cell");
    assert!(
        gbooster_telemetry::attribution_diff(attr, &parsed).is_empty(),
        "identical snapshots diff empty"
    );
}

#[test]
fn local_sessions_report_no_attribution() {
    let report = Session::run(
        &SessionConfig::builder(GameTitle::g1_gta_san_andreas(), DeviceSpec::nexus5())
            .duration_secs(5)
            .seed(77)
            .build(),
    );
    assert!(report.attribution.is_empty());
}
