//! Stitching service-device spans into the user-device frame tree.
//!
//! Remote spans arrive in service-clock µs ([`crate::remote`]); the
//! stitcher rebases them onto the user clock with the estimated offset
//! (`user = service − offset`), orders them by the canonical remote
//! pipeline, and grafts them under the frame root as one
//! [`crate::names::remote::SUBTREE`] child. Because the offset is an
//! *estimate*, a rebased span can poke slightly outside the root's
//! `[start, end]` or invert against its neighbor; the stitcher clamps
//! both ways — the output timeline is always monotone and nested — and
//! counts every clamp so estimation error stays visible.

use gbooster_sim::time::SimTime;

use crate::names;
use crate::remote::RemoteSpan;
use crate::trace::SpanNode;

/// What one stitch did, for the session-level counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StitchOutcome {
    /// Remote spans grafted under the frame root.
    pub stitched: u32,
    /// Spans whose rebased interval needed clamping (root bounds or
    /// monotonicity against the previous sibling).
    pub clamped: u32,
}

fn pipeline_rank(name: &str) -> usize {
    names::remote::STAGES
        .iter()
        .position(|&s| s == name)
        .unwrap_or(names::remote::STAGES.len())
}

/// Rebases `spans` onto the user clock and grafts them under `root` as
/// a single `remote` subtree. No-op (returning zeros) when `spans` is
/// empty.
///
/// `offset_us` is the estimated (service − user) clock offset; it may
/// be negative. Spans are sorted by canonical stage order, then start.
pub fn stitch_remote(root: &mut SpanNode, spans: &[RemoteSpan], offset_us: i64) -> StitchOutcome {
    if spans.is_empty() {
        return StitchOutcome::default();
    }
    let mut ordered: Vec<&RemoteSpan> = spans.iter().collect();
    ordered.sort_by_key(|s| (pipeline_rank(s.name), s.start_us));

    let (lo, hi) = (root.start, root.end);
    let mut outcome = StitchOutcome::default();
    let mut subtree = SpanNode::new(names::remote::SUBTREE, hi, lo.max(hi));
    let mut floor = lo;
    for span in ordered {
        let raw_start = rebase(span.start_us, offset_us);
        let raw_end = rebase(span.end_us, offset_us);
        // Clamp into the root interval, then enforce monotone ordering
        // against the previous sibling (floor).
        let start = raw_start.clamp(lo, hi).max(floor);
        let end = raw_end.clamp(lo, hi).max(start);
        if start != raw_start || end != raw_end {
            outcome.clamped += 1;
        }
        floor = start;
        subtree.stage(span.name, start, end);
        outcome.stitched += 1;
    }
    subtree.start = subtree.children.iter().map(|c| c.start).min().unwrap_or(lo);
    subtree.end = subtree
        .children
        .iter()
        .map(|c| c.end)
        .max()
        .unwrap_or(subtree.start)
        .max(subtree.start);
    root.push(subtree);
    outcome
}

/// Service-clock µs → user-clock [`SimTime`], clamping below zero.
fn rebase(service_us: i64, offset_us: i64) -> SimTime {
    let user = service_us - offset_us;
    SimTime::from_micros(user.max(0) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::TraceContext;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn span(name: &'static str, start_us: i64, end_us: i64) -> RemoteSpan {
        RemoteSpan {
            ctx: TraceContext::new(1, 0, 0),
            name,
            start_us,
            end_us,
        }
    }

    #[test]
    fn exact_offset_stitches_without_clamping() {
        let mut root = SpanNode::new(names::stage::FRAME, t(1_000), t(20_000));
        // Service clock runs +5 ms ahead; spans at user-time 2..8 ms.
        let off = 5_000i64;
        let spans = [
            span(names::remote::REPLAY, 4_000 + off, 6_000 + off),
            span(names::remote::DISPATCH_WAIT, 2_000 + off, 4_000 + off),
            span(names::remote::ENCODE, 6_000 + off, 8_000 + off),
        ];
        let out = stitch_remote(&mut root, &spans, off);
        assert_eq!(
            out,
            StitchOutcome {
                stitched: 3,
                clamped: 0
            }
        );
        let sub = root.child(names::remote::SUBTREE).unwrap();
        assert_eq!(sub.start, t(2_000));
        assert_eq!(sub.end, t(8_000));
        // Canonical order despite shuffled input.
        let kids: Vec<&str> = sub.children.iter().map(|c| c.name).collect();
        assert_eq!(
            kids,
            [
                names::remote::DISPATCH_WAIT,
                names::remote::REPLAY,
                names::remote::ENCODE,
            ]
        );
        // Monotone, nested.
        let mut prev = sub.start;
        for c in &sub.children {
            assert!(c.start >= prev && c.end >= c.start && c.end <= root.end);
            prev = c.start;
        }
    }

    #[test]
    fn offset_error_is_clamped_into_the_root() {
        let mut root = SpanNode::new(names::stage::FRAME, t(10_000), t(12_000));
        // Estimated offset is 3 ms short: rebased spans land after root end.
        let spans = [span(names::remote::ENCODE, 14_000, 16_000)];
        let out = stitch_remote(&mut root, &spans, 0);
        assert_eq!(out.clamped, 1);
        let sub = root.child(names::remote::SUBTREE).unwrap();
        assert_eq!(sub.children[0].start, t(12_000));
        assert_eq!(sub.children[0].end, t(12_000));
    }

    #[test]
    fn negative_rebased_time_clamps_to_zero_then_root_start() {
        let mut root = SpanNode::new(names::stage::FRAME, t(100), t(500));
        // Huge positive offset drives user time negative.
        let spans = [span(names::remote::REPLAY, 50, 80)];
        let out = stitch_remote(&mut root, &spans, 1_000_000);
        assert_eq!(out.clamped, 1);
        let c = &root.child(names::remote::SUBTREE).unwrap().children[0];
        assert_eq!(c.start, t(100));
    }

    #[test]
    fn inverted_siblings_are_forced_monotone() {
        let mut root = SpanNode::new(names::stage::FRAME, t(0), t(10_000));
        let spans = [
            span(names::remote::DISPATCH_WAIT, 5_000, 6_000),
            span(names::remote::REPLAY, 1_000, 2_000), // starts before its predecessor
        ];
        let out = stitch_remote(&mut root, &spans, 0);
        assert_eq!(out.stitched, 2);
        assert!(out.clamped >= 1);
        let sub = root.child(names::remote::SUBTREE).unwrap();
        assert!(sub.children[1].start >= sub.children[0].start);
    }

    #[test]
    fn empty_input_adds_nothing() {
        let mut root = SpanNode::new(names::stage::FRAME, t(0), t(100));
        let out = stitch_remote(&mut root, &[], 0);
        assert_eq!(out, StitchOutcome::default());
        assert!(root.child(names::remote::SUBTREE).is_none());
    }
}
