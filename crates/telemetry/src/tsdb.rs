//! Embedded ring-buffer time-series database.
//!
//! The windowed streams answer "the distribution over the last N ms"
//! and then forget; everything older than the retention window is
//! gone by the time an operator asks "what was t042's p99 during the
//! drain at t=8 s?". The [`Tsdb`] keeps that history: a fixed number
//! of slots per series, fed from periodic [`TelemetrySnapshot`]
//! scrapes (pool-level and per-tenant with a `tenant="tNNN"` label)
//! and from recording rules that persist the burn-rate inputs
//! [`crate::slo::SloObjective::evaluate`] computes.
//!
//! Storage is deliberately simple and deterministic: series keyed by
//! a canonical `name\x1fk\x1ev…` string (labels sorted), where
//! scalars (counters, gauges, rule outputs) keep `(sim µs, f64)`
//! points and histograms keep cumulative [`SparseHistogram`] copies —
//! dense-restorable bucket-for-bucket, so range queries still take
//! exact deltas without the ring paying ~8 KB per point. When a ring
//! is full
//! the oldest point is evicted and counted. The query layer on top
//! lives in [`crate::query`].
//!
//! The write path is on the fabric's scrape cadence (every registry,
//! every interval), so it must not allocate per sample: the canonical
//! key is formatted into a scratch buffer reused across records, and
//! owned strings are built only the first time a series appears.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

use gbooster_sim::time::SimTime;

use crate::hist::{HistogramSnapshot, SparseHistogram};
use crate::report::TelemetrySnapshot;
use crate::slo::BurnState;

/// Default per-series ring capacity.
pub const DEFAULT_SLOTS: usize = 64;

/// The points of one series: scalar samples or cumulative histogram
/// snapshots, oldest first, timestamps strictly increasing.
#[derive(Clone, Debug, PartialEq)]
pub enum SeriesData {
    /// `(sim µs, value)` samples.
    Scalar(VecDeque<(u64, f64)>),
    /// `(sim µs, cumulative sparse snapshot)` samples.
    Hist(VecDeque<(u64, SparseHistogram)>),
}

impl SeriesData {
    /// Number of stored points.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            SeriesData::Scalar(v) => v.len(),
            SeriesData::Hist(v) => v.len(),
        }
    }

    /// Whether the ring holds no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One stored series: its identity plus the ring of points.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    name: String,
    labels: Vec<(String, String)>,
    data: SeriesData,
}

impl Series {
    /// Metric name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sorted label pairs.
    #[must_use]
    pub fn labels(&self) -> &[(String, String)] {
        &self.labels
    }

    /// The stored points.
    #[must_use]
    pub fn data(&self) -> &SeriesData {
        &self.data
    }
}

/// Fixed-slot ring-buffer TSDB. See the module docs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Tsdb {
    slots: usize,
    /// Canonical key (see [`write_key`]) → series. The map is ordered,
    /// so iteration — and therefore every query answer — is
    /// deterministic.
    series: BTreeMap<String, Series>,
    /// Reused key-formatting buffer; always left empty between calls
    /// so derived equality and clones stay value-based.
    scratch: String,
    ingested: u64,
    evicted: u64,
}

/// Separators for the canonical key encoding: units 0x1f/0x1e never
/// appear in metric names or label text.
const KEY_SEP: char = '\u{1f}';
const KV_SEP: char = '\u{1e}';

/// Formats the canonical series key into `out` (cleared first). Labels
/// are almost always pre-sorted (`[]` or a single `tenant` pair on the
/// scrape path); the rare unsorted multi-label call pays one small
/// sort of borrowed pairs, never string allocations.
fn write_key(out: &mut String, name: &str, labels: &[(&str, &str)]) {
    out.clear();
    out.push_str(name);
    let sorted = labels.windows(2).all(|w| w[0] <= w[1]);
    if sorted {
        for (k, v) in labels {
            let _ = write!(out, "{KEY_SEP}{k}{KV_SEP}{v}");
        }
    } else {
        let mut pairs: Vec<&(&str, &str)> = labels.iter().collect();
        pairs.sort();
        for (k, v) in pairs {
            let _ = write!(out, "{KEY_SEP}{k}{KV_SEP}{v}");
        }
    }
}

/// Owned, sorted label pairs for a series' first appearance.
fn owned_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut l: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
        .collect();
    l.sort();
    l
}

impl Tsdb {
    /// Creates a TSDB retaining at most `slots` points per series.
    #[must_use]
    pub fn new(slots: usize) -> Self {
        Tsdb {
            slots: slots.max(1),
            series: BTreeMap::new(),
            scratch: String::new(),
            ingested: 0,
            evicted: 0,
        }
    }

    /// Ring capacity per series.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Number of distinct series.
    #[must_use]
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Total points accepted over the TSDB's lifetime.
    #[must_use]
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    /// Points evicted because a ring was full.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The series for `(name, labels)`, created empty via `make` on
    /// first sight. Allocation-free for existing series.
    fn series_mut(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        make: fn() -> SeriesData,
    ) -> &mut SeriesData {
        let mut scratch = std::mem::take(&mut self.scratch);
        write_key(&mut scratch, name, labels);
        if !self.series.contains_key(scratch.as_str()) {
            self.series.insert(
                scratch.clone(),
                Series {
                    name: name.to_string(),
                    labels: owned_labels(labels),
                    data: make(),
                },
            );
        }
        let entry = self
            .series
            .get_mut(scratch.as_str())
            .expect("series just ensured");
        scratch.clear();
        self.scratch = scratch;
        &mut entry.data
    }

    /// Records one scalar point. A point at a timestamp the series
    /// already holds overwrites in place (re-scrape of the same
    /// instant), keeping timestamps strictly increasing.
    pub fn record(&mut self, at: SimTime, name: &str, labels: &[(&str, &str)], value: f64) {
        let slots = self.slots;
        let entry = self.series_mut(name, labels, || SeriesData::Scalar(VecDeque::new()));
        let SeriesData::Scalar(ring) = entry else {
            debug_assert!(false, "scalar point into histogram series {name}");
            return;
        };
        let t = at.as_micros();
        if let Some(last) = ring.back_mut() {
            if last.0 == t {
                last.1 = value;
                return;
            }
            debug_assert!(last.0 < t, "out-of-order point for {name}");
        }
        ring.push_back((t, value));
        let over = ring.len() > slots;
        if over {
            ring.pop_front();
        }
        self.ingested += 1;
        self.evicted += u64::from(over);
    }

    /// Records one cumulative histogram snapshot (stored sparsely).
    pub fn record_hist(
        &mut self,
        at: SimTime,
        name: &str,
        labels: &[(&str, &str)],
        snap: &HistogramSnapshot,
    ) {
        self.record_hist_sparse(at, name, labels, snap.to_sparse());
    }

    /// Like [`Tsdb::record_hist`], taking the already-sparse form the
    /// scrape loop produces ([`crate::registry::Registry::scrape_into`])
    /// — no dense ~8 KB snapshot is ever materialized on that path.
    pub fn record_hist_sparse(
        &mut self,
        at: SimTime,
        name: &str,
        labels: &[(&str, &str)],
        snap: SparseHistogram,
    ) {
        let slots = self.slots;
        let entry = self.series_mut(name, labels, || SeriesData::Hist(VecDeque::new()));
        let SeriesData::Hist(ring) = entry else {
            debug_assert!(false, "histogram point into scalar series {name}");
            return;
        };
        let t = at.as_micros();
        if let Some(last) = ring.back_mut() {
            if last.0 == t {
                last.1 = snap;
                return;
            }
            debug_assert!(last.0 < t, "out-of-order point for {name}");
        }
        ring.push_back((t, snap));
        let over = ring.len() > slots;
        if over {
            ring.pop_front();
        }
        self.ingested += 1;
        self.evicted += u64::from(over);
    }

    /// Ingests a whole [`TelemetrySnapshot`] at `at`: counters and
    /// gauges as scalar points, histograms as cumulative snapshots,
    /// all under `labels` (e.g. `[("tenant", "t042")]`, or empty for
    /// the pool registry).
    pub fn ingest(&mut self, at: SimTime, labels: &[(&str, &str)], snap: &TelemetrySnapshot) {
        for (name, v) in &snap.counters {
            #[allow(clippy::cast_precision_loss)]
            self.record(at, name, labels, *v as f64);
        }
        for (name, v) in &snap.gauges {
            self.record(at, name, labels, *v);
        }
        for (name, h) in &snap.histograms {
            self.record_hist(at, name, labels, h);
        }
    }

    /// Recording rule: persists the burn-rate numbers `slo.rs` just
    /// computed for `objective` as `{objective}.fast_burn` /
    /// `.slow_burn` / `.fast_count` / `.slow_count` scalar series, so
    /// queries reproduce the alerting inputs exactly (same floats, no
    /// recomputation).
    pub fn record_burn(
        &mut self,
        at: SimTime,
        objective: &str,
        burn: &BurnState,
        labels: &[(&str, &str)],
    ) {
        self.record(
            at,
            &format!("{objective}.fast_burn"),
            labels,
            burn.fast_burn,
        );
        self.record(
            at,
            &format!("{objective}.slow_burn"),
            labels,
            burn.slow_burn,
        );
        #[allow(clippy::cast_precision_loss)]
        self.record(
            at,
            &format!("{objective}.fast_count"),
            labels,
            burn.fast_count as f64,
        );
        #[allow(clippy::cast_precision_loss)]
        self.record(
            at,
            &format!("{objective}.slow_count"),
            labels,
            burn.slow_count as f64,
        );
    }

    /// All series whose name is exactly `name` and whose labels are a
    /// superset of `labels`, in key order.
    pub(crate) fn select<'a>(
        &'a self,
        name: &'a str,
        labels: &'a [(String, String)],
    ) -> impl Iterator<Item = &'a Series> {
        self.series.values().filter(move |s| {
            s.name == name
                && labels
                    .iter()
                    .all(|want| s.labels.iter().any(|kv| kv == want))
        })
    }

    /// Iterates every series, in key order.
    pub fn series(&self) -> impl Iterator<Item = &Series> {
        self.series.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn scalar_ring_evicts_oldest() {
        let mut db = Tsdb::new(3);
        for i in 0..5u64 {
            #[allow(clippy::cast_precision_loss)]
            db.record(t(i * 100), "m", &[], i as f64);
        }
        assert_eq!(db.ingested(), 5);
        assert_eq!(db.evicted(), 2);
        let series = db.series().next().expect("series exists");
        let SeriesData::Scalar(ring) = series.data() else {
            panic!("scalar series expected");
        };
        let times: Vec<u64> = ring.iter().map(|(ts, _)| *ts).collect();
        assert_eq!(times, vec![200_000, 300_000, 400_000]);
    }

    #[test]
    fn same_timestamp_overwrites_in_place() {
        let mut db = Tsdb::new(4);
        db.record(t(100), "m", &[], 1.0);
        db.record(t(100), "m", &[], 2.0);
        assert_eq!(db.ingested(), 1);
        let series = db.series().next().expect("series exists");
        let SeriesData::Scalar(ring) = series.data() else {
            panic!("scalar series expected");
        };
        assert_eq!(ring.back(), Some(&(100_000, 2.0)));
    }

    #[test]
    fn labels_are_sorted_and_select_matches_supersets() {
        let mut db = Tsdb::new(4);
        db.record(t(0), "m", &[("tenant", "t001"), ("pool", "a")], 1.0);
        db.record(t(0), "m", &[("pool", "a"), ("tenant", "t001")], 2.0);
        assert_eq!(db.series_count(), 1, "label order must not split series");
        let series = db.series().next().expect("series exists");
        assert_eq!(
            series.labels(),
            &[
                ("pool".to_string(), "a".to_string()),
                ("tenant".to_string(), "t001".to_string())
            ]
        );
        let want = vec![("tenant".to_string(), "t001".to_string())];
        assert_eq!(db.select("m", &want).count(), 1);
        let none = vec![("tenant".to_string(), "t999".to_string())];
        assert_eq!(db.select("m", &none).count(), 0);
    }

    #[test]
    fn ingest_fans_out_snapshot_kinds() {
        let reg = crate::Registry::new();
        reg.counter("c.total").add(7);
        reg.gauge("g.now").set(1.5);
        reg.histogram("h.lat").record(1_000);
        let snap = reg.snapshot();
        let mut db = Tsdb::new(4);
        db.ingest(t(100), &[("tenant", "t000")], &snap);
        assert!(db.series_count() >= 3);
        let want = vec![("tenant".to_string(), "t000".to_string())];
        let series = db.select("h.lat", &want).next().expect("hist series");
        assert!(matches!(series.data(), SeriesData::Hist(r) if r.len() == 1));
    }

    #[test]
    fn repeat_records_do_not_grow_the_scratch_or_split_series() {
        let mut db = Tsdb::new(8);
        for i in 0..20u64 {
            #[allow(clippy::cast_precision_loss)]
            db.record(t(i * 10), "m.one", &[("tenant", "t007")], i as f64);
        }
        assert_eq!(db.series_count(), 1);
        assert_eq!(db.ingested(), 20);
        // Equality is value-based: a fresh DB fed the same points
        // compares equal regardless of internal buffer history.
        let mut other = Tsdb::new(8);
        for i in 0..20u64 {
            #[allow(clippy::cast_precision_loss)]
            other.record(t(i * 10), "m.one", &[("tenant", "t007")], i as f64);
        }
        assert_eq!(db, other);
    }
}
