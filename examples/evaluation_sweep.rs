//! Full evaluation sweep: every game, both phones, all three execution
//! modes — a one-command tour of the paper's Section VII.
//!
//! ```text
//! cargo run --release --example evaluation_sweep
//! ```

use gbooster::core::config::{CloudConfig, ExecutionMode, OffloadConfig, SessionConfig};
use gbooster::core::session::Session;
use gbooster::sim::device::DeviceSpec;
use gbooster::workload::games::GameTitle;

fn main() {
    for phone in [DeviceSpec::nexus5(), DeviceSpec::lg_g5()] {
        println!("==== {} ====", phone.name);
        for game in GameTitle::corpus() {
            let base = || {
                SessionConfig::builder(game.clone(), phone.clone())
                    .duration_secs(45)
                    .seed(11)
            };
            let local = Session::run(&base().build());
            let gb = Session::run(
                &base()
                    .mode(ExecutionMode::Offloaded(OffloadConfig::default()))
                    .build(),
            );
            let cloud = Session::run(
                &base()
                    .mode(ExecutionMode::Cloud(CloudConfig::default()))
                    .build(),
            );
            println!(
                "{:4}  local {:>5.1} fps {:>6.1} ms {:>5.2} W | gbooster {:>5.1} fps {:>6.1} ms {:>5.2} W | cloud {:>5.1} fps {:>6.1} ms",
                game.id,
                local.median_fps,
                local.response_time_ms,
                local.energy.average_power_w(),
                gb.median_fps,
                gb.response_time_ms,
                gb.energy.average_power_w(),
                cloud.median_fps,
                cloud.response_time_ms,
            );
        }
        println!();
    }
    println!("GBooster wins on FPS and response; the cloud baseline streams at 30 fps");
    println!("with Internet-scale latency; local play pays the GPU power bill.");
}
