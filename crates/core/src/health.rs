//! Service-pool health monitoring.
//!
//! Tracks per-node liveness from RUDP ack/heartbeat probes and drives
//! the `Healthy → Suspect → Dead → Rejoining` state machine that feeds
//! the dispatcher ([`crate::scheduler::Dispatcher::fail_node`] /
//! [`crate::scheduler::Dispatcher::revive_node`]) and the local-render
//! fallback in the session engine.
//!
//! * **Adaptive timeout** — each node keeps a TCP-style smoothed RTT
//!   (`srtt`) and mean deviation (`rttvar`); a probe counts as missed
//!   when its measured RTT exceeds `srtt + 4·rttvar` (clamped to a sane
//!   floor/ceiling), so a chatty-but-slow link is not confused with a
//!   dead one and a normally snappy link is declared suspect quickly.
//! * **Probe backoff** — probes to an unresponsive node retry on a
//!   capped exponential backoff with deterministic per-(node, attempt)
//!   jitter, mirroring the RUDP retransmit policy: a dead node is not
//!   hammered at full cadence, yet recovery is noticed within a bounded
//!   interval.
//! * **Determinism** — no wall clock and no RNG; everything is a pure
//!   function of the observation sequence, so chaos drills replay
//!   byte-identically.
//!
//! The full state machine and threshold rationale are documented in
//! `docs/RESILIENCE.md`.

use gbooster_sim::time::{SimDuration, SimTime};
use gbooster_telemetry::{names, Counter, Gauge, OpsEventKind, OpsLog, Registry};

/// Liveness states of one service node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeState {
    /// Answering probes within the adaptive timeout.
    Healthy,
    /// Missed a probe; not yet evicted from the pool.
    Suspect,
    /// Missed enough consecutive probes to be evicted.
    Dead,
    /// Answered a probe after death; awaiting the one-shot state resync
    /// before re-admission.
    Rejoining,
}

impl NodeState {
    /// Stable machine-readable name, used in ops event payloads.
    pub fn as_str(&self) -> &'static str {
        match self {
            NodeState::Healthy => "healthy",
            NodeState::Suspect => "suspect",
            NodeState::Dead => "dead",
            NodeState::Rejoining => "rejoining",
        }
    }

    /// Index into the per-state time accumulators.
    fn index(self) -> usize {
        match self {
            NodeState::Healthy => 0,
            NodeState::Suspect => 1,
            NodeState::Dead => 2,
            NodeState::Rejoining => 3,
        }
    }
}

/// State-machine transitions surfaced to the session engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthEvent {
    /// Healthy → Suspect: a probe missed its adaptive deadline.
    Suspected(usize),
    /// Suspect → Healthy: the node answered before being declared dead.
    Recovered(usize),
    /// Suspect → Dead: evict the node and orphan its in-flight frames.
    Died(usize),
    /// Dead → Rejoining: the node answered a probe; ship it a state
    /// resync and call [`HealthMonitor::rejoined`] when that lands.
    RejoinReady(usize),
}

/// Health-monitor tuning. The defaults match the session engine's frame
/// cadence: one probe opportunity per issued frame, eviction after three
/// consecutive misses.
#[derive(Clone, Copy, Debug)]
pub struct HealthConfig {
    /// Probe cadence while a node is answering.
    pub probe_interval: SimDuration,
    /// Floor on the adaptive timeout (guards the cold-start estimate).
    pub min_timeout: SimDuration,
    /// Ceiling on the adaptive timeout.
    pub max_timeout: SimDuration,
    /// Consecutive misses before a Suspect node is declared Dead (the
    /// first miss always moves Healthy → Suspect).
    pub dead_misses: u32,
    /// Cap on the probe-backoff exponent (`interval << shift`).
    pub max_backoff_shift: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            probe_interval: SimDuration::from_millis(16),
            min_timeout: SimDuration::from_millis(5),
            max_timeout: SimDuration::from_millis(200),
            dead_misses: 3,
            max_backoff_shift: 3,
        }
    }
}

/// Deterministic per-(node, attempt) jitter hash (FNV-1a), matching the
/// RUDP retransmit jitter construction.
fn probe_jitter_hash(node: usize, attempts: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in (node as u64)
        .to_le_bytes()
        .into_iter()
        .chain(attempts.to_le_bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Per-node probe bookkeeping.
#[derive(Clone, Debug)]
struct NodeProbe {
    state: NodeState,
    /// When the node entered its current state (drives the per-state
    /// time accounting and the `in_state_us` field of transition events).
    since: SimTime,
    /// Smoothed RTT estimate in seconds (0 before the first sample).
    srtt: f64,
    /// RTT mean deviation in seconds.
    rttvar: f64,
    /// Consecutive missed probes.
    misses: u32,
    /// Probe attempts since the last successful ack — selects the
    /// backoff step for the next probe.
    attempts: u32,
    next_probe_at: SimTime,
}

impl NodeProbe {
    fn new() -> Self {
        NodeProbe {
            state: NodeState::Healthy,
            since: SimTime::ZERO,
            srtt: 0.0,
            rttvar: 0.0,
            misses: 0,
            attempts: 0,
            next_probe_at: SimTime::ZERO,
        }
    }
}

/// Liveness monitor over the service pool.
///
/// The session engine drives it: [`HealthMonitor::probe_due`] says
/// whether a node should be probed at `now`;
/// [`HealthMonitor::observe`] feeds the outcome back (the measured RTT,
/// or `None` when nothing came back) and returns the transitions that
/// observation caused.
///
/// # Examples
///
/// ```
/// use gbooster_core::health::{HealthConfig, HealthEvent, HealthMonitor, NodeState};
/// use gbooster_sim::time::{SimDuration, SimTime};
///
/// let mut hm = HealthMonitor::new(1, HealthConfig::default());
/// let now = SimTime::ZERO;
/// assert!(hm.probe_due(0, now));
/// // Three missed probes walk the node to Dead.
/// assert_eq!(hm.observe(0, now, None), vec![HealthEvent::Suspected(0)]);
/// hm.observe(0, now, None);
/// assert_eq!(hm.observe(0, now, None), vec![HealthEvent::Died(0)]);
/// assert_eq!(hm.state(0), NodeState::Dead);
/// // An answered probe starts the rejoin handshake.
/// let ev = hm.observe(0, now, Some(SimDuration::from_millis(2)));
/// assert_eq!(ev, vec![HealthEvent::RejoinReady(0)]);
/// hm.rejoined(0, now);
/// assert_eq!(hm.state(0), NodeState::Healthy);
/// ```
#[derive(Clone, Debug)]
pub struct HealthMonitor {
    nodes: Vec<NodeProbe>,
    config: HealthConfig,
    telemetry: Option<HealthCounters>,
    /// Structured-event journal for state transitions (live-ops layer).
    ops: Option<OpsLog>,
    /// Accumulated node-seconds per state, indexed by
    /// [`NodeState::index`]; finalized into the `health.*_secs` gauges.
    state_secs: [f64; 4],
}

#[derive(Clone, Debug)]
struct HealthCounters {
    probes: Counter,
    probe_timeouts: Counter,
    suspects: Counter,
    deaths: Counter,
    /// Node-seconds gauges, same order as `HealthMonitor::state_secs`.
    state_secs: [Gauge; 4],
}

impl HealthMonitor {
    /// Creates a monitor for `n` nodes, all initially healthy.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or the config is degenerate.
    pub fn new(n: usize, config: HealthConfig) -> Self {
        assert!(n > 0, "health monitor needs at least one node");
        assert!(
            !config.probe_interval.is_zero() && config.dead_misses >= 2,
            "degenerate health config"
        );
        HealthMonitor {
            nodes: vec![NodeProbe::new(); n],
            config,
            telemetry: None,
            ops: None,
            state_secs: [0.0; 4],
        }
    }

    /// Mirrors probe activity into `registry` under the
    /// [`names::health`] vocabulary.
    pub fn attach_registry(&mut self, registry: &Registry) {
        self.telemetry = Some(HealthCounters {
            probes: registry.counter(names::health::PROBES),
            probe_timeouts: registry.counter(names::health::PROBE_TIMEOUTS),
            suspects: registry.counter(names::health::SUSPECT_TRANSITIONS),
            deaths: registry.counter(names::health::DEAD_TRANSITIONS),
            state_secs: [
                registry.gauge(names::health::HEALTHY_SECS),
                registry.gauge(names::health::SUSPECT_SECS),
                registry.gauge(names::health::DEAD_SECS),
                registry.gauge(names::health::REJOINING_SECS),
            ],
        });
    }

    /// Journals every state transition into `ops` as a structured
    /// [`OpsEventKind::HealthTransition`] event, so incident timelines
    /// can link the probe walk that preceded a death or rejoin.
    pub fn attach_ops(&mut self, ops: OpsLog) {
        self.ops = Some(ops);
    }

    /// Moves node `j` to `to` at `now`: accounts the time spent in the
    /// state being left and journals the transition. No-op when the
    /// node is already in `to`.
    fn transition(&mut self, j: usize, now: SimTime, to: NodeState) {
        let from = self.nodes[j].state;
        if from == to {
            return;
        }
        let in_state = now.saturating_duration_since(self.nodes[j].since);
        self.nodes[j].state = to;
        self.nodes[j].since = now;
        self.state_secs[from.index()] += in_state.as_secs_f64();
        if let Some(ops) = &self.ops {
            ops.push(
                now,
                OpsEventKind::HealthTransition {
                    node: j,
                    from: from.as_str(),
                    to: to.as_str(),
                    in_state_us: in_state.as_micros(),
                },
            );
        }
    }

    /// Current state of node `j`.
    pub fn state(&self, j: usize) -> NodeState {
        self.nodes[j].state
    }

    /// Nodes currently counted in the dispatch pool (Healthy or
    /// Suspect — a suspect node still serves until declared dead).
    pub fn pool_size(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.state, NodeState::Healthy | NodeState::Suspect))
            .count()
    }

    /// The adaptive probe deadline for node `j`: `srtt + 4·rttvar`
    /// clamped to the configured floor/ceiling. Before any RTT sample
    /// the ceiling applies (the conservative cold start of RFC 6298 —
    /// an unmeasured link must not have its first ack misread as slow).
    pub fn timeout(&self, j: usize) -> SimDuration {
        let n = &self.nodes[j];
        if n.srtt == 0.0 {
            return self.config.max_timeout;
        }
        let raw = SimDuration::from_secs_f64((n.srtt + 4.0 * n.rttvar).max(0.0));
        raw.max(self.config.min_timeout)
            .min(self.config.max_timeout)
    }

    /// Whether node `j`'s next probe is due at `now`. Probes to an
    /// unresponsive node back off exponentially (capped, jittered), so
    /// this stays `false` for most of a dead node's downtime.
    pub fn probe_due(&self, j: usize, now: SimTime) -> bool {
        now >= self.nodes[j].next_probe_at
    }

    /// Interval until node `j`'s next probe after `attempts` consecutive
    /// unanswered ones: base cadence doubled per miss (capped) plus a
    /// deterministic jitter of up to a quarter interval. The first
    /// retry keeps the bare cadence so a one-off miss is re-checked
    /// immediately.
    fn probe_backoff(&self, j: usize, attempts: u32) -> SimDuration {
        let base =
            self.config.probe_interval.as_micros() << attempts.min(self.config.max_backoff_shift);
        let jitter = if attempts == 0 {
            0
        } else {
            probe_jitter_hash(j, attempts) % (self.config.probe_interval.as_micros() / 4).max(1)
        };
        SimDuration::from_micros(base + jitter)
    }

    /// Feeds the outcome of a probe of node `j` issued at `now`:
    /// `Some(rtt)` when an ack arrived (an ack slower than the adaptive
    /// timeout still counts as a miss), `None` when nothing came back.
    /// Returns the state transitions this observation caused, in order.
    pub fn observe(
        &mut self,
        j: usize,
        now: SimTime,
        rtt: Option<SimDuration>,
    ) -> Vec<HealthEvent> {
        let deadline = self.timeout(j);
        let answered = match rtt {
            Some(r) => r <= deadline,
            None => false,
        };
        if let Some(t) = &self.telemetry {
            t.probes.inc();
            if !answered {
                t.probe_timeouts.inc();
            }
        }
        let mut events = Vec::new();
        let state = self.nodes[j].state;
        if answered {
            let sample = rtt.expect("answered implies a sample").as_secs_f64();
            let node = &mut self.nodes[j];
            if node.srtt == 0.0 {
                node.srtt = sample;
                node.rttvar = sample / 2.0;
            } else {
                node.rttvar = 0.75 * node.rttvar + 0.25 * (node.srtt - sample).abs();
                node.srtt = 0.875 * node.srtt + 0.125 * sample;
            }
            node.misses = 0;
            node.attempts = 0;
            match state {
                NodeState::Healthy | NodeState::Rejoining => {}
                NodeState::Suspect => {
                    self.transition(j, now, NodeState::Healthy);
                    events.push(HealthEvent::Recovered(j));
                }
                NodeState::Dead => {
                    self.transition(j, now, NodeState::Rejoining);
                    events.push(HealthEvent::RejoinReady(j));
                }
            }
        } else {
            self.nodes[j].misses += 1;
            self.nodes[j].attempts += 1;
            match state {
                NodeState::Healthy => {
                    self.transition(j, now, NodeState::Suspect);
                    events.push(HealthEvent::Suspected(j));
                    if let Some(t) = &self.telemetry {
                        t.suspects.inc();
                    }
                }
                NodeState::Suspect => {
                    if self.nodes[j].misses >= self.config.dead_misses {
                        self.transition(j, now, NodeState::Dead);
                        events.push(HealthEvent::Died(j));
                        if let Some(t) = &self.telemetry {
                            t.deaths.inc();
                        }
                    }
                }
                NodeState::Rejoining => {
                    // The resync window closed on us: back to Dead.
                    self.transition(j, now, NodeState::Dead);
                }
                NodeState::Dead => {}
            }
        }
        let attempts = self.nodes[j].attempts;
        let backoff = self.probe_backoff(j, attempts);
        self.nodes[j].next_probe_at = now + backoff;
        events
    }

    /// Marks node `j`'s state resync complete at `now`: Rejoining →
    /// Healthy. No-op unless the node is actually rejoining.
    pub fn rejoined(&mut self, j: usize, now: SimTime) {
        if self.nodes[j].state == NodeState::Rejoining {
            self.transition(j, now, NodeState::Healthy);
        }
    }

    /// Forces node `j` straight to Dead (an injected kill observed by
    /// the engine out-of-band — no probe round-trip needed). Returns
    /// whether the node was previously serving.
    pub fn force_dead(&mut self, j: usize, now: SimTime) -> bool {
        let was_serving = matches!(self.nodes[j].state, NodeState::Healthy | NodeState::Suspect);
        if was_serving {
            if let Some(t) = &self.telemetry {
                // A hard kill still walks the ranks for the counters:
                // one suspect transition, one death.
                t.suspects.inc();
                t.deaths.inc();
            }
        }
        self.transition(j, now, NodeState::Dead);
        let node = &mut self.nodes[j];
        node.misses = self.config.dead_misses;
        node.attempts = node.attempts.max(1);
        let attempts = node.attempts;
        self.nodes[j].next_probe_at = now + self.probe_backoff(j, attempts);
        was_serving
    }

    /// Accumulated node-seconds spent in each state so far, in
    /// `[healthy, suspect, dead, rejoining]` order. Time in the current
    /// states is not included until [`HealthMonitor::finalize`] runs.
    pub fn state_secs(&self) -> [f64; 4] {
        self.state_secs
    }

    /// Closes the per-state time accounting at `now` (session end):
    /// folds each node's open interval into the accumulators and
    /// publishes the four `health.*_secs` gauges. Safe to call more
    /// than once — intervals are folded up to the latest `now` only.
    pub fn finalize(&mut self, now: SimTime) {
        for j in 0..self.nodes.len() {
            let open = now.saturating_duration_since(self.nodes[j].since);
            self.state_secs[self.nodes[j].state.index()] += open.as_secs_f64();
            self.nodes[j].since = now;
        }
        if let Some(t) = &self.telemetry {
            for (gauge, secs) in t.state_secs.iter().zip(self.state_secs) {
                gauge.set(secs);
            }
        }
    }
}

/// Thermal-throttle hint derived from a node's GPU-time duty cycle.
///
/// The service GPUs are actively cooled and never clock-throttle in the
/// simulator ([`crate::service::ServiceRuntime`] asserts as much), so
/// the fabric's thermal signal is the *precursor*: the fraction of wall
/// time a node's GPU spends busy. A node pinned near 100 % duty has no
/// thermal headroom left, and the rebalancer drains it before the
/// physical throttle a real deployment would hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThermalHint {
    /// Duty cycle inside the sustainable envelope.
    Nominal,
    /// Sustained duty above the enter threshold; drain candidate.
    Throttling,
}

impl ThermalHint {
    /// Stable label for logs and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            ThermalHint::Nominal => "nominal",
            ThermalHint::Throttling => "throttling",
        }
    }
}

/// Per-node GPU-time duty-cycle EWMA with hysteresis — the signal
/// behind [`ThermalHint`].
///
/// Busy intervals are folded into fixed windows; each closed window's
/// duty (busy ÷ window, clamped to 1) feeds an EWMA. The hint flips to
/// [`ThermalHint::Throttling`] when the EWMA crosses `enter` and back
/// to [`ThermalHint::Nominal`] only below `exit` (`exit < enter`), so a
/// node oscillating around one threshold does not flap. Deterministic:
/// no wall clock, no RNG — a pure function of the booking sequence,
/// like the rest of this module.
#[derive(Clone, Debug)]
pub struct DutyCycleEwma {
    window_us: u64,
    alpha: f64,
    enter: f64,
    exit: f64,
    /// Index of the currently open window.
    window: u64,
    /// Busy time accumulated in the open window (µs).
    busy_us: f64,
    ewma: f64,
    primed: bool,
    throttling: bool,
}

impl DutyCycleEwma {
    /// Creates a monitor with the given window length, EWMA weight, and
    /// hysteresis thresholds (`exit < enter`, both in `[0, 1]`).
    #[must_use]
    pub fn new(window: SimDuration, alpha: f64, enter: f64, exit: f64) -> Self {
        debug_assert!(exit < enter, "hysteresis band must be non-empty");
        DutyCycleEwma {
            window_us: window.as_micros().max(1),
            alpha: alpha.clamp(0.0, 1.0),
            enter,
            exit,
            window: 0,
            busy_us: 0.0,
            ewma: 0.0,
            primed: false,
            throttling: false,
        }
    }

    fn close_through(&mut self, target: u64) {
        while self.window < target {
            let duty = (self.busy_us / self.window_us as f64).min(1.0);
            self.ewma = if self.primed {
                self.alpha * duty + (1.0 - self.alpha) * self.ewma
            } else {
                duty
            };
            self.primed = true;
            if self.throttling {
                if self.ewma <= self.exit {
                    self.throttling = false;
                }
            } else if self.ewma >= self.enter {
                self.throttling = true;
            }
            self.busy_us = 0.0;
            self.window += 1;
        }
    }

    /// Folds one GPU busy booking `[start, finish)` into the windows it
    /// overlaps. Bookings may extend past the last settle point —
    /// scheduled future busy time is exactly what a proactive drain
    /// wants to see. Time before an already-closed window is dropped.
    pub fn record(&mut self, start: SimTime, finish: SimTime) {
        let mut s = start.as_micros().max(self.window * self.window_us);
        let f = finish.as_micros();
        while s < f {
            let w = s / self.window_us;
            self.close_through(w);
            let end = ((w + 1) * self.window_us).min(f);
            self.busy_us += (end - s) as f64;
            s = end;
        }
    }

    /// Closes every window that ended before `now` (idle windows score
    /// zero duty), bringing the EWMA and hint current.
    pub fn settle(&mut self, now: SimTime) {
        self.close_through(now.as_micros() / self.window_us);
    }

    /// The duty-cycle EWMA over closed windows, in `[0, 1]`.
    #[must_use]
    pub fn duty(&self) -> f64 {
        self.ewma
    }

    /// The current hysteretic hint.
    #[must_use]
    pub fn hint(&self) -> ThermalHint {
        if self.throttling {
            ThermalHint::Throttling
        } else {
            ThermalHint::Nominal
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor(n: usize) -> HealthMonitor {
        HealthMonitor::new(n, HealthConfig::default())
    }

    #[test]
    fn sustained_overload_flips_the_thermal_hint_and_idling_clears_it() {
        let window = SimDuration::from_millis(100);
        let mut duty = DutyCycleEwma::new(window, 0.4, 0.85, 0.60);
        assert_eq!(duty.hint(), ThermalHint::Nominal);

        // One saturated second: back-to-back bookings covering every
        // window flip the hint within the EWMA's settling time.
        duty.record(SimTime::ZERO, SimTime::from_millis(1_000));
        duty.settle(SimTime::from_millis(1_000));
        assert!(duty.duty() > 0.99, "saturated duty, got {}", duty.duty());
        assert_eq!(duty.hint(), ThermalHint::Throttling);

        // Oscillating just under the exit threshold must not clear it…
        duty.record(SimTime::from_millis(1_000), SimTime::from_millis(1_070));
        duty.settle(SimTime::from_millis(1_100));
        assert_eq!(duty.hint(), ThermalHint::Throttling, "hysteresis holds");

        // …but a genuinely idle stretch does.
        duty.settle(SimTime::from_millis(2_500));
        assert!(duty.duty() < 0.60);
        assert_eq!(duty.hint(), ThermalHint::Nominal);
    }

    #[test]
    fn duty_cycle_splits_bookings_across_windows_and_never_exceeds_one() {
        let window = SimDuration::from_millis(10);
        let mut duty = DutyCycleEwma::new(window, 1.0, 0.9, 0.5);
        // A booking spanning 2.5 windows: 10 ms + 10 ms + 5 ms.
        duty.record(SimTime::ZERO, SimTime::from_millis(25));
        duty.settle(SimTime::from_millis(30));
        // alpha = 1: the EWMA is the last closed window's duty (0.5).
        assert!((duty.duty() - 0.5).abs() < 1e-9, "got {}", duty.duty());

        // Overlapping/duplicate busy past a closed window is clamped.
        let mut d2 = DutyCycleEwma::new(window, 1.0, 0.9, 0.5);
        d2.record(SimTime::ZERO, SimTime::from_millis(10));
        d2.record(SimTime::from_millis(2), SimTime::from_millis(10));
        d2.settle(SimTime::from_millis(10));
        assert!(d2.duty() <= 1.0);
    }

    #[test]
    fn misses_walk_healthy_suspect_dead_and_ack_rejoins() {
        let mut hm = monitor(2);
        let mut now = SimTime::ZERO;
        assert_eq!(hm.observe(0, now, None), vec![HealthEvent::Suspected(0)]);
        assert_eq!(hm.state(0), NodeState::Suspect);
        assert_eq!(hm.pool_size(), 2, "suspect still serves");
        now += SimDuration::from_millis(16);
        assert!(hm.observe(0, now, None).is_empty());
        now += SimDuration::from_millis(32);
        assert_eq!(hm.observe(0, now, None), vec![HealthEvent::Died(0)]);
        assert_eq!(hm.state(0), NodeState::Dead);
        assert_eq!(hm.pool_size(), 1);
        // The node comes back: ack → Rejoining, resync → Healthy.
        now += SimDuration::from_secs(1);
        let ev = hm.observe(0, now, Some(SimDuration::from_millis(2)));
        assert_eq!(ev, vec![HealthEvent::RejoinReady(0)]);
        assert_eq!(hm.pool_size(), 1, "rejoining is not yet in the pool");
        hm.rejoined(0, now);
        assert_eq!(hm.state(0), NodeState::Healthy);
        assert_eq!(hm.pool_size(), 2);
    }

    #[test]
    fn transitions_journal_into_ops_and_account_time_in_state() {
        let ops = OpsLog::new();
        let mut hm = monitor(1);
        hm.attach_ops(ops.clone());
        // Healthy for 100 ms, then three misses walk to Dead, then an
        // ack at 1 s starts the rejoin, completed 50 ms later.
        let mut now = SimTime::from_millis(100);
        hm.observe(0, now, None); // healthy -> suspect
        now = SimTime::from_millis(150);
        hm.observe(0, now, None);
        hm.observe(0, now, None); // suspect -> dead
        now = SimTime::from_millis(1_000);
        hm.observe(0, now, Some(SimDuration::from_millis(2))); // dead -> rejoining
        now = SimTime::from_millis(1_050);
        hm.rejoined(0, now); // rejoining -> healthy
        let events = ops.events();
        let walk: Vec<(&str, &str, u64)> = events
            .iter()
            .map(|e| match e.kind {
                OpsEventKind::HealthTransition {
                    from,
                    to,
                    in_state_us,
                    ..
                } => (from, to, in_state_us),
                ref other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(
            walk,
            vec![
                ("healthy", "suspect", 100_000),
                ("suspect", "dead", 50_000),
                ("dead", "rejoining", 850_000),
                ("rejoining", "healthy", 50_000),
            ]
        );
        // Finalize folds the open healthy interval and fills the gauges
        // — including Rejoining, which matches the other states.
        let registry = Registry::new();
        hm.attach_registry(&registry);
        hm.finalize(SimTime::from_millis(2_050));
        let secs = hm.state_secs();
        assert!((secs[0] - 1.1).abs() < 1e-9, "healthy: {secs:?}");
        assert!((secs[1] - 0.05).abs() < 1e-9, "suspect: {secs:?}");
        assert!((secs[2] - 0.85).abs() < 1e-9, "dead: {secs:?}");
        assert!((secs[3] - 0.05).abs() < 1e-9, "rejoining: {secs:?}");
        let snap = registry.snapshot();
        assert!((snap.gauge(names::health::REJOINING_SECS) - 0.05).abs() < 1e-9);
        assert!((snap.gauge(names::health::HEALTHY_SECS) - 1.1).abs() < 1e-9);
    }

    #[test]
    fn suspect_recovers_on_a_timely_ack() {
        let mut hm = monitor(1);
        hm.observe(0, SimTime::ZERO, None);
        assert_eq!(hm.state(0), NodeState::Suspect);
        let ev = hm.observe(
            0,
            SimTime::from_millis(16),
            Some(SimDuration::from_millis(2)),
        );
        assert_eq!(ev, vec![HealthEvent::Recovered(0)]);
        assert_eq!(hm.state(0), NodeState::Healthy);
    }

    #[test]
    fn adaptive_timeout_tracks_rtt_and_its_variance() {
        let mut hm = monitor(1);
        // Cold start: the conservative ceiling applies.
        assert_eq!(hm.timeout(0), HealthConfig::default().max_timeout);
        let mut now = SimTime::ZERO;
        for _ in 0..20 {
            hm.observe(0, now, Some(SimDuration::from_millis(10)));
            now += SimDuration::from_millis(16);
        }
        // Stable 10 ms RTT: srtt → 10 ms, rttvar decays, timeout settles
        // between the RTT itself and the initial 3x spread.
        let t = hm.timeout(0).as_secs_f64();
        assert!(t > 0.010 && t < 0.030, "timeout {t:.4}s out of band");
        // A slow ack beyond the learned deadline counts as a miss.
        let ev = hm.observe(0, now, Some(SimDuration::from_millis(150)));
        assert_eq!(ev, vec![HealthEvent::Suspected(0)]);
    }

    #[test]
    fn probe_backoff_grows_and_caps_deterministically() {
        let cfg = HealthConfig::default();
        let mut hm = HealthMonitor::new(1, cfg);
        let base = cfg.probe_interval.as_micros();
        let mut now = SimTime::ZERO;
        let mut prev = SimTime::ZERO;
        let mut spacings = Vec::new();
        for i in 0..7 {
            assert!(hm.probe_due(0, now));
            hm.observe(0, now, None);
            let next = hm.nodes[0].next_probe_at;
            if i > 0 {
                spacings.push((now - prev).as_micros());
            }
            prev = now;
            now = next;
        }
        for pair in spacings[..cfg.max_backoff_shift as usize].windows(2) {
            assert!(pair[1] > pair[0], "backoff must grow: {spacings:?}");
        }
        for &s in &spacings[cfg.max_backoff_shift as usize - 1..] {
            assert!(
                s >= base << cfg.max_backoff_shift
                    && s < (base << cfg.max_backoff_shift) + base / 4,
                "capped spacing out of range: {spacings:?}"
            );
        }
        // A second monitor replays the identical schedule.
        let mut hm2 = HealthMonitor::new(1, cfg);
        let mut now2 = SimTime::ZERO;
        for _ in 0..7 {
            hm2.observe(0, now2, None);
            now2 = hm2.nodes[0].next_probe_at;
        }
        assert_eq!(now, now2);
    }

    #[test]
    fn force_dead_skips_the_probe_walk() {
        let mut hm = monitor(2);
        assert!(hm.force_dead(1, SimTime::ZERO));
        assert_eq!(hm.state(1), NodeState::Dead);
        assert_eq!(hm.pool_size(), 1);
        // Idempotent: a second kill reports the node already down.
        assert!(!hm.force_dead(1, SimTime::ZERO));
    }

    #[test]
    fn telemetry_counts_probes_and_transitions() {
        let registry = Registry::new();
        let mut hm = monitor(1);
        hm.attach_registry(&registry);
        let mut now = SimTime::ZERO;
        for _ in 0..3 {
            hm.observe(0, now, None);
            now += SimDuration::from_secs(1);
        }
        hm.observe(0, now, Some(SimDuration::from_millis(2)));
        let snap = registry.snapshot();
        assert_eq!(snap.counter(names::health::PROBES), 4);
        assert_eq!(snap.counter(names::health::PROBE_TIMEOUTS), 3);
        assert_eq!(snap.counter(names::health::SUSPECT_TRANSITIONS), 1);
        assert_eq!(snap.counter(names::health::DEAD_TRANSITIONS), 1);
    }
}
