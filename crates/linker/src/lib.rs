//! # gbooster-linker
//!
//! A simulated dynamic linker with `LD_PRELOAD`-style interposition — the
//! substrate for GBooster's transparent interception (Section IV-A).
//!
//! The paper cannot modify Android's closed-source OpenGL ES library, so
//! it *hooks* it: a wrapper library is injected via the dynamic linker and
//! captures every graphics call. Applications reach OpenGL ES through
//! three different routes, and GBooster must intercept all of them:
//!
//! 1. **Direct linking** — the app links `libGLESv2.so` and calls its
//!    exports. Setting `LD_PRELOAD` makes the linker resolve those symbols
//!    from the wrapper library first.
//! 2. **`eglGetProcAddress`** — the app asks EGL for function pointers at
//!    runtime. The wrapper interposes `eglGetProcAddress` itself and
//!    returns pointers to its own wrappers.
//! 3. **`dlopen`/`dlsym`** — the app loads the GL library manually. The
//!    wrapper interposes both calls so lookups land in the wrapper.
//!
//! [`DynamicLinker`] models symbol resolution and the preload list;
//! [`hook::HookEngine`] models the wrapper installation and verifies that
//! all three routes intercept.

pub mod hook;
pub mod library;
pub mod linker;

pub use hook::{HookEngine, LookupRoute};
pub use library::{FnPtr, SharedLibrary};
pub use linker::{DynamicLinker, LinkError};
