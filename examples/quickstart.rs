//! Quickstart: accelerate one GPU-bound game with GBooster.
//!
//! Runs GTA San Andreas (G1) on a simulated LG Nexus 5 twice — locally,
//! and offloaded to a nearby Nvidia Shield — and prints the FPS, response
//! time and energy comparison the paper's abstract promises.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gbooster::core::config::{ExecutionMode, OffloadConfig, SessionConfig};
use gbooster::core::session::Session;
use gbooster::sim::device::DeviceSpec;
use gbooster::workload::games::GameTitle;

fn main() {
    let game = GameTitle::g1_gta_san_andreas();
    let phone = DeviceSpec::nexus5();

    println!(
        "Playing {} on a {} for 60 simulated seconds...\n",
        game.name, phone.name
    );

    // Baseline: everything renders on the phone GPU.
    let local = Session::run(
        &SessionConfig::builder(game.clone(), phone.clone())
            .duration_secs(60)
            .seed(1)
            .build(),
    );

    // GBooster: intercept the OpenGL ES stream and offload it to the
    // Nvidia Shield on the living-room WiFi.
    let boosted = Session::run(
        &SessionConfig::builder(game, phone)
            .duration_secs(60)
            .seed(1)
            .mode(ExecutionMode::Offloaded(OffloadConfig::default()))
            .build(),
    );

    println!("{local}");
    println!("{boosted}");
    println!();
    println!(
        "median FPS     : {:.0} -> {:.0}  (+{:.0}%)",
        local.median_fps,
        boosted.median_fps,
        (boosted.median_fps / local.median_fps - 1.0) * 100.0
    );
    println!(
        "FPS stability  : {:.0}% -> {:.0}%  (service GPU never throttles)",
        local.stability * 100.0,
        boosted.stability * 100.0
    );
    println!(
        "response time  : {:.1} ms -> {:.1} ms",
        local.response_time_ms, boosted.response_time_ms
    );
    println!(
        "phone power    : {:.2} W -> {:.2} W  ({:.0}% energy saved)",
        local.energy.average_power_w(),
        boosted.energy.average_power_w(),
        (1.0 - boosted.normalized_energy(&local)) * 100.0
    );
    assert!(boosted.median_fps > local.median_fps);
}
