//! Unified observability for the GBooster offload pipeline.
//!
//! Three layers, all driven by **sim time** ([`gbooster_sim::time`]),
//! never the wall clock:
//!
//! * [`Registry`] — a lock-cheap store of named counters, gauges, and
//!   fixed-bucket latency histograms (p50/p90/p99/max). Registration
//!   takes a mutex once; the returned handles are plain atomics, so
//!   per-frame instrumentation costs an atomic add.
//! * [`trace`] — per-frame span trees ([`SpanNode`]) recording a
//!   frame's journey through intercept → resolve → cache → LZ4 →
//!   uplink → dispatch → render → encode → downlink → decode → vsync,
//!   accumulated in a [`TraceLog`] and exportable as JSON Lines.
//! * [`report`] — [`TelemetrySnapshot`], a point-in-time copy of the
//!   registry with derived pipeline metrics (cache hit rate,
//!   compression ratio, retransmit and misprediction counts) and a
//!   human-readable end-of-session report.
//!
//! On top of those, the distributed-tracing layer spans the device
//! boundary:
//!
//! * [`context`] — the 20-byte [`TraceContext`] carried in every RUDP
//!   datagram so both devices agree which frame a packet serves.
//! * [`remote`] — service-clock span capture ([`RemoteSpanLog`]) and
//!   NTP-style offset recovery from ack timestamps
//!   ([`ClockOffsetEstimator`]).
//! * [`stitch`] — rebases remote spans onto the user clock and grafts
//!   them under the frame root as a monotone `remote` subtree.
//! * [`export`] — Chrome trace-event JSON ([`chrome_trace`]) and
//!   Prometheus text exposition ([`prometheus_text`]).
//! * [`flight`] — a bounded ring of stitched traces that dumps a
//!   structured postmortem when a fault fires ([`FlightRecorder`]).
//! * [`attr`] — resource attribution ([`AttributionLog`]): uplink
//!   bytes by GL category × cache outcome, downlink bytes by frame
//!   kind, sim time and joules by stage × node × interface.
//! * [`diff`] — row-level movement between two attribution snapshots,
//!   printed by the bench regression gate next to failing metrics.
//!
//! The **live-ops layer** evaluates the session while it runs instead
//! of after it ends:
//!
//! * [`hist::WindowedHistogramCore`] / [`registry::WindowedHistogram`]
//!   — time-slotted histograms answering "the distribution over the
//!   last N ms".
//! * [`slo`] — SLO objectives with Google-SRE multi-window burn-rate
//!   evaluation ([`SloObjective`]) and EWMA z-score anomaly detection
//!   ([`AnomalyDetector`]) for streams without hard objectives.
//! * [`alert`] — the Pending → Firing → Resolved machine with dwell,
//!   hysteresis, and dedup ([`AlertMachine`]).
//! * [`incident`] — the shared structured-event journal ([`OpsLog`])
//!   and the correlator folding concurrent faults, alerts, health
//!   transitions, and flight dumps into causally-ordered incident
//!   records with postmortem rendering ([`IncidentManager`],
//!   [`OpsReport`]).
//!
//! One layer deliberately breaks the sim-time rule: [`prof`] /
//! [`flame`] profile the **simulator's own wall-clock cost** — scoped
//! host-time accounting with per-scope allocation counts (under the
//! `host-prof` feature) and flamegraph-compatible collapsed-stack
//! export — so hot-path optimizations are judged against measured
//! numbers.
//!
//! Metric and stage names live in [`names`]; the full schema is
//! documented in `docs/OBSERVABILITY.md`.
//!
//! ```
//! use gbooster_sim::time::SimTime;
//! use gbooster_telemetry::{names, FrameTrace, Registry, SpanNode, TraceLog};
//!
//! let reg = Registry::new();
//! reg.histogram(names::stage::UPLINK).record(1_500); // µs
//! reg.counter(names::forward::CACHE_HITS).add(40);
//! reg.counter(names::forward::CACHE_MISSES).add(10);
//!
//! let mut trace = TraceLog::new();
//! let mut root = SpanNode::new(
//!     names::stage::FRAME,
//!     SimTime::ZERO,
//!     SimTime::from_micros(2_000),
//! );
//! root.stage(
//!     names::stage::UPLINK,
//!     SimTime::from_micros(100),
//!     SimTime::from_micros(1_600),
//! );
//! trace.push(FrameTrace { seq: 0, root });
//!
//! let snap = reg.snapshot();
//! assert_eq!(snap.cache_hit_rate(), 0.8);
//! assert!(snap.render_report().contains("stage.uplink"));
//! assert_eq!(trace.to_jsonl().lines().count(), 1);
//! ```

pub mod alert;
pub mod attr;
pub mod context;
pub mod diff;
pub mod export;
pub mod flame;
pub mod flight;
pub mod hist;
pub mod incident;
pub mod json;
pub mod names;
pub mod prof;
pub mod query;
pub mod registry;
pub mod remote;
pub mod report;
pub mod sample;
pub mod slo;
pub mod stitch;
pub mod trace;
pub mod tsdb;

pub use alert::{AlertConfig, AlertMachine, AlertState, AlertTransition};
pub use attr::{AttributionLog, AttributionSnapshot, UplinkFrameEntry};
pub use context::TraceContext;
pub use diff::{diff as attribution_diff, AttributionDiff};
pub use export::{
    chrome_trace, prometheus_text, prometheus_text_with_labels, prometheus_text_with_labels_dedup,
};
pub use flame::{collapsed_stack, parse_collapsed, CollapsedLine};
pub use flight::{Fault, FlightDump, FlightRecorder};
pub use hist::{Exemplar, HistogramSnapshot, SparseHistogram};
pub use incident::{
    AlertSummary, Incident, IncidentConfig, IncidentManager, OpsEvent, OpsEventKind, OpsLog,
    OpsReport, SloWindowState,
};
pub use prof::{HostProfileSnapshot, HostProfiler};
pub use query::{eval as query_eval, QueryError};
pub use registry::{Counter, Gauge, Histogram, Registry, WindowedHistogram};
pub use remote::{ClockOffsetEstimator, RemoteSpan, RemoteSpanLog};
pub use report::TelemetrySnapshot;
pub use sample::{FrameVerdict, KeepReason, KeptTrace, TailSampler};
pub use slo::{Anomaly, AnomalyDetector, BurnState, SloObjective};
pub use stitch::{stitch_remote, StitchOutcome};
pub use trace::{FrameTrace, SpanNode, TraceLog};
pub use tsdb::{Series, SeriesData, Tsdb};
