//! The alert state machine driven by SLO burn verdicts.
//!
//! One [`AlertMachine`] per objective, stepped once per evaluation with
//! a boolean breach verdict. Three defenses against flapping:
//!
//! * **Dwell** — a breach must hold for `pending_for` before the alert
//!   fires (Pending → Firing); a blip shorter than the dwell is
//!   cancelled silently.
//! * **Hysteresis** — a firing alert resolves only after the breach has
//!   stayed clear for `resolve_after`; brief recoveries do not resolve.
//! * **Dedup** — a breach that returns while the alert is still firing
//!   (inside the resolve dwell) re-arms the same alert and bumps a
//!   dedup counter instead of emitting a second firing.
//!
//! Transitions are returned to the caller as [`AlertTransition`]s so
//! the ops layer can journal them as structured events; the machine
//! itself keeps no event log.

use gbooster_sim::time::{SimDuration, SimTime};

/// Externally visible alert states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlertState {
    /// No breach in progress.
    Idle,
    /// Breaching, inside the firing dwell.
    Pending,
    /// Fired and not yet resolved.
    Firing,
}

impl AlertState {
    /// Stable machine-readable name, used in event payloads.
    pub fn as_str(&self) -> &'static str {
        match self {
            AlertState::Idle => "idle",
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
        }
    }
}

/// A state change worth journaling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlertTransition {
    /// Idle → Pending: a breach appeared, the dwell clock started.
    Pending,
    /// Pending → Firing: the breach outlived the dwell.
    Fired,
    /// Pending → Idle: the breach vanished inside the dwell.
    Cancelled,
    /// Firing → Idle: the breach stayed clear through the resolve dwell.
    Resolved,
}

impl AlertTransition {
    /// Stable machine-readable name, used in event payloads.
    pub fn as_str(&self) -> &'static str {
        match self {
            AlertTransition::Pending => "pending",
            AlertTransition::Fired => "firing",
            AlertTransition::Cancelled => "cancelled",
            AlertTransition::Resolved => "resolved",
        }
    }
}

/// Dwell/hysteresis tuning shared by every alert in a session.
#[derive(Clone, Copy, Debug)]
pub struct AlertConfig {
    /// How long a breach must hold before the alert fires.
    pub pending_for: SimDuration,
    /// How long the breach must stay clear before a firing alert
    /// resolves.
    pub resolve_after: SimDuration,
}

impl Default for AlertConfig {
    fn default() -> Self {
        AlertConfig {
            pending_for: SimDuration::from_millis(150),
            resolve_after: SimDuration::from_millis(400),
        }
    }
}

/// Per-objective alert lifecycle tracker.
#[derive(Clone, Debug)]
pub struct AlertMachine {
    /// The objective this alert covers.
    pub name: &'static str,
    config: AlertConfig,
    state: AlertState,
    /// When the current Pending episode started.
    pending_since: SimTime,
    /// When the breach last went clear while Firing (None = breaching).
    clear_since: Option<SimTime>,
    fired: u64,
    deduped: u64,
    resolved: u64,
}

impl AlertMachine {
    /// Creates an idle machine for `name`.
    pub fn new(name: &'static str, config: AlertConfig) -> Self {
        AlertMachine {
            name,
            config,
            state: AlertState::Idle,
            pending_since: SimTime::ZERO,
            clear_since: None,
            fired: 0,
            deduped: 0,
            resolved: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> AlertState {
        self.state
    }

    /// Whether the alert is Pending or Firing (blocks incident closure).
    pub fn is_active(&self) -> bool {
        self.state != AlertState::Idle
    }

    /// Firing episodes emitted.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Re-breaches absorbed by an already-firing alert.
    pub fn deduped(&self) -> u64 {
        self.deduped
    }

    /// Resolutions emitted.
    pub fn resolved(&self) -> u64 {
        self.resolved
    }

    /// Feeds one breach verdict at `now`; returns the transition it
    /// caused, if any. `now` must be monotone across calls.
    pub fn step(&mut self, now: SimTime, breaching: bool) -> Option<AlertTransition> {
        match self.state {
            AlertState::Idle => {
                if breaching {
                    self.state = AlertState::Pending;
                    self.pending_since = now;
                    Some(AlertTransition::Pending)
                } else {
                    None
                }
            }
            AlertState::Pending => {
                if !breaching {
                    self.state = AlertState::Idle;
                    Some(AlertTransition::Cancelled)
                } else if now.saturating_duration_since(self.pending_since)
                    >= self.config.pending_for
                {
                    self.state = AlertState::Firing;
                    self.clear_since = None;
                    self.fired += 1;
                    Some(AlertTransition::Fired)
                } else {
                    None
                }
            }
            AlertState::Firing => {
                if breaching {
                    // A re-breach inside the resolve dwell folds into
                    // the ongoing firing: dedup, don't re-fire.
                    if self.clear_since.take().is_some() {
                        self.deduped += 1;
                    }
                    None
                } else {
                    let since = *self.clear_since.get_or_insert(now);
                    if now.saturating_duration_since(since) >= self.config.resolve_after {
                        self.state = AlertState::Idle;
                        self.clear_since = None;
                        self.resolved += 1;
                        Some(AlertTransition::Resolved)
                    } else {
                        None
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> AlertMachine {
        AlertMachine::new(
            "slo.test",
            AlertConfig {
                pending_for: SimDuration::from_millis(100),
                resolve_after: SimDuration::from_millis(300),
            },
        )
    }

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn sustained_breach_fires_once_and_resolves_once() {
        let mut m = machine();
        assert_eq!(m.step(at(0), true), Some(AlertTransition::Pending));
        assert_eq!(m.step(at(50), true), None);
        assert_eq!(m.step(at(100), true), Some(AlertTransition::Fired));
        assert_eq!(m.step(at(150), true), None, "no duplicate firing");
        assert_eq!(m.step(at(200), false), None, "resolve dwell starts");
        assert_eq!(m.step(at(400), false), None, "still inside the dwell");
        assert_eq!(m.step(at(500), false), Some(AlertTransition::Resolved));
        assert_eq!(m.state(), AlertState::Idle);
        assert_eq!(m.fired(), 1);
        assert_eq!(m.resolved(), 1);
        assert_eq!(m.deduped(), 0);
    }

    #[test]
    fn oscillating_breach_never_fires() {
        // Hysteresis no-flap: a breach that toggles every 30 ms never
        // survives the 100 ms firing dwell, so the alert never fires no
        // matter how long the oscillation lasts.
        let mut m = machine();
        let mut transitions = Vec::new();
        for i in 0..200u64 {
            let breaching = i % 2 == 0;
            if let Some(t) = m.step(at(i * 30), breaching) {
                transitions.push(t);
            }
        }
        assert_eq!(m.fired(), 0, "oscillation must not fire");
        assert!(transitions
            .iter()
            .all(|t| matches!(t, AlertTransition::Pending | AlertTransition::Cancelled)));
    }

    #[test]
    fn rebreach_inside_resolve_dwell_is_deduped() {
        let mut m = machine();
        m.step(at(0), true);
        assert_eq!(m.step(at(100), true), Some(AlertTransition::Fired));
        // Clear, then re-breach before the 300 ms resolve dwell elapses
        // — three times. Same firing, three dedups, zero new events.
        let mut events = 0;
        for cycle in 0..3u64 {
            let base = 200 + cycle * 200;
            events += m.step(at(base), false).iter().count();
            events += m.step(at(base + 100), true).iter().count();
        }
        assert_eq!(events, 0, "dedup must be silent");
        assert_eq!(m.fired(), 1);
        assert_eq!(m.deduped(), 3);
        assert_eq!(m.state(), AlertState::Firing);
        // A real recovery still resolves.
        m.step(at(1_000), false);
        assert_eq!(m.step(at(1_300), false), Some(AlertTransition::Resolved));
    }

    #[test]
    fn blip_inside_firing_dwell_is_cancelled() {
        let mut m = machine();
        assert_eq!(m.step(at(0), true), Some(AlertTransition::Pending));
        assert_eq!(m.step(at(50), false), Some(AlertTransition::Cancelled));
        assert_eq!(m.fired(), 0);
        assert!(!m.is_active());
    }
}
