//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so the workspace vendors
//! the subset of proptest it uses: the [`Strategy`] trait with
//! `prop_map`, [`any`] for primitives and arrays, range strategies,
//! tuple composition, [`collection::vec`], [`array::uniform16`], a
//! character-class string strategy, and the [`proptest!`],
//! [`prop_oneof!`], [`prop_assert!`] and [`prop_assert_eq!`] macros.
//!
//! Semantics match upstream where it matters for these tests: each case
//! draws fresh random inputs from a deterministic generator and a failed
//! `prop_assert*` aborts the case with a readable message. Shrinking is
//! intentionally not implemented — a failure reports the un-shrunk
//! inputs.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

/// The generator threaded through every strategy.
pub type TestRng = StdRng;

/// A failed property case (carried by `prop_assert*`).
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Runner configuration (the subset used: case count).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy for heterogeneous composition.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Always yields a clone of the held value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (built by [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].new_value(rng)
    }
}

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for f32 {
    /// Arbitrary bit patterns — including infinities and NaNs, which the
    /// wire-format roundtrip tests rely on exercising.
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.gen::<u32>())
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.gen::<u64>())
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        core::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy yielding unconstrained values of `T`.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Simple character-class string strategy.
///
/// Interprets the exact pattern shape `[<lo>-<hi>]{min,max}` the way the
/// real regex strategy would; any other pattern falls back to printable
/// ASCII of length 0–32.
impl Strategy for &str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        let (lo, hi, min, max) = parse_charclass(self).unwrap_or((b' ', b'~', 0, 32));
        let len = rng.gen_range(min..=max);
        (0..len).map(|_| rng.gen_range(lo..=hi) as char).collect()
    }
}

fn parse_charclass(pattern: &str) -> Option<(u8, u8, usize, usize)> {
    let bytes = pattern.as_bytes();
    // Shape: [ x - y ] { min , max }
    if bytes.len() < 9 || bytes[0] != b'[' || bytes[2] != b'-' || bytes[4] != b']' {
        return None;
    }
    let rest = pattern.get(5..)?;
    let inner = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = inner.split_once(',')?;
    Some((
        bytes[1],
        bytes[3],
        min.trim().parse().ok()?,
        max.trim().parse().ok()?,
    ))
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Accepted element-count specifications for [`vec`].
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Strategy for vectors of `element` with a length in `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// The result of [`vec`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Fixed-size array strategies (mirrors `proptest::array`).
pub mod array {
    use super::{Strategy, TestRng};

    /// Strategy for `[T; 16]` drawing each element from `element`.
    pub fn uniform16<S: Strategy>(element: S) -> Uniform<S, 16> {
        Uniform { element }
    }

    /// An `N`-element array strategy.
    pub struct Uniform<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for Uniform<S, N> {
        type Value = [S::Value; N];
        fn new_value(&self, rng: &mut TestRng) -> [S::Value; N] {
            core::array::from_fn(|_| self.element.new_value(rng))
        }
    }
}

/// Everything a property test module needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// Namespaced access to submodule strategies (`prop::collection::vec`).
    pub mod prop {
        pub use crate::array;
        pub use crate::collection;
    }
}

/// Runtime support for the macros (callers need not depend on `rand`).
#[doc(hidden)]
pub mod __rt {
    pub use rand::SeedableRng;
}

/// Uniform choice among strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts a condition inside a property, failing the case (not the
/// process) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: both sides = {:?}", l);
    }};
}

/// Declares property tests: each `fn` runs `cases` times with fresh
/// random inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            // Seed derived from the test name so sibling properties draw
            // independent streams, deterministically across runs.
            let mut __seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in stringify!($name).bytes() {
                __seed ^= b as u64;
                __seed = __seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut __rng = <$crate::TestRng as $crate::__rt::SeedableRng>::seed_from_u64(__seed);
            for __case in 0..config.cases {
                let __result: ::core::result::Result<(), $crate::TestCaseError> = {
                    $(let $arg = $crate::Strategy::new_value(&($strategy), &mut __rng);)+
                    #[allow(clippy::redundant_closure_call)]
                    (|| { $body ::core::result::Result::Ok(()) })()
                };
                if let ::core::result::Result::Err(e) = __result {
                    panic!("proptest case {}/{} failed: {}", __case + 1, config.cases, e);
                }
            }
        }
    )*};
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn oneof_and_map_compose() {
        let strat = prop_oneof![Just(1u32), (2u32..10).prop_map(|v| v * 2)];
        let mut rng = <crate::TestRng as rand::SeedableRng>::seed_from_u64(1);
        for _ in 0..100 {
            let v = strat.new_value(&mut rng);
            assert!(v == 1 || (4..20).contains(&v));
        }
    }

    #[test]
    fn charclass_parses() {
        let mut rng = <crate::TestRng as rand::SeedableRng>::seed_from_u64(2);
        for _ in 0..50 {
            let s = "[ -~]{0,64}".new_value(&mut rng);
            assert!(s.len() <= 64);
            assert!(s.bytes().all(|b| (b' '..=b'~').contains(&b)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn vectors_respect_bounds(v in prop::collection::vec(any::<u8>(), 1..9)) {
            prop_assert!((1..9).contains(&v.len()));
        }

        #[test]
        fn tuples_draw_independently((a, b) in (0u32..10, 10u32..20)) {
            prop_assert!(a < 10);
            prop_assert!((10..20).contains(&b));
        }
    }
}
