//! Multi-device request dispatch (Section VI).
//!
//! * [`Dispatcher`] — Eq. 4: each rendering request goes to the node
//!   minimizing `(w_j + r) / c_j + l_j`, with `r` the request workload,
//!   `c_j` the node's capability, `w_j` its queued workload and `l_j` the
//!   round-trip delay.
//! * [`ReorderBuffer`] — "our system keeps track of the sequence numbers
//!   of the requests, such that we can display their results in a proper
//!   order" (Section VI-C).
//! * State-replication accounting lives with the session engine, which
//!   multicasts state-mutating commands to every node
//!   ([`crate::wrapper::Disposition::ReplicateAll`]).

use std::collections::BTreeMap;

use gbooster_sim::device::DeviceSpec;
use gbooster_sim::time::{SimDuration, SimTime};
use gbooster_telemetry::{names, Counter, Histogram, Registry};

/// One offloading destination as seen by the scheduler.
#[derive(Clone, Debug)]
pub struct ServiceNode {
    /// Hardware description.
    pub spec: DeviceSpec,
    /// Computation capability `c_j` in complexity-weighted pixels/second.
    pub capability: f64,
    /// Round-trip delay `l_j` to this node.
    pub rtt: SimDuration,
    busy_until: SimTime,
    requests_served: u64,
}

impl ServiceNode {
    /// Creates a node from a device spec and a measured RTT.
    ///
    /// The capability is profiled beforehand (the paper profiles command
    /// workloads offline, ref \[31\]); we derive it from the GPU fillrate.
    pub fn new(spec: DeviceSpec, rtt: SimDuration) -> Self {
        let capability = spec.gpu.fillrate_gpixels_per_sec * 1e9;
        ServiceNode {
            spec,
            capability,
            rtt,
            busy_until: SimTime::ZERO,
            requests_served: 0,
        }
    }

    /// Requests this node has served.
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    /// The instant this node's queue drains.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }
}

/// The outcome of dispatching one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DispatchDecision {
    /// Chosen node index.
    pub node: usize,
    /// When the node begins the request (after its queue and the uplink
    /// propagation delay).
    pub start: SimTime,
    /// When the node finishes the request.
    pub finish: SimTime,
}

/// Eq. 4 dispatcher over a set of service nodes.
///
/// # Examples
///
/// ```
/// use gbooster_core::scheduler::{Dispatcher, ServiceNode};
/// use gbooster_sim::device::DeviceSpec;
/// use gbooster_sim::time::{SimDuration, SimTime};
///
/// let mut d = Dispatcher::new(vec![
///     ServiceNode::new(DeviceSpec::nvidia_shield(), SimDuration::from_millis(2)),
///     ServiceNode::new(DeviceSpec::minix_neo_u1(), SimDuration::from_millis(2)),
/// ]);
/// // With equal queues and latency, the faster Shield wins.
/// let decision = d.dispatch(10_000_000, SimDuration::ZERO, SimTime::ZERO);
/// assert_eq!(decision.node, 0);
/// ```
#[derive(Clone, Debug)]
pub struct Dispatcher {
    nodes: Vec<ServiceNode>,
    telemetry: Option<(Counter, Histogram)>,
}

impl Dispatcher {
    /// Creates a dispatcher.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    pub fn new(nodes: Vec<ServiceNode>) -> Self {
        assert!(!nodes.is_empty(), "dispatcher needs at least one node");
        Dispatcher {
            nodes,
            telemetry: None,
        }
    }

    /// Mirrors dispatch activity into `registry`: a request counter under
    /// [`names::sched::REQUESTS`] and a queue-wait histogram (request
    /// arrival at the node until service start) under
    /// [`names::sched::QUEUE_WAIT`].
    pub fn attach_registry(&mut self, registry: &Registry) {
        self.telemetry = Some((
            registry.counter(names::sched::REQUESTS),
            registry.histogram(names::sched::QUEUE_WAIT),
        ));
    }

    /// The managed nodes.
    pub fn nodes(&self) -> &[ServiceNode] {
        &self.nodes
    }

    /// Dispatches a request of workload `r_fill` (complexity-weighted
    /// pixels) arriving at `now`; `extra_service` is per-request work
    /// beyond raster fill (frame encoding) spent on the chosen node.
    ///
    /// Applies Eq. 4 and books the chosen node's queue.
    pub fn dispatch(
        &mut self,
        r_fill: u64,
        extra_service: SimDuration,
        now: SimTime,
    ) -> DispatchDecision {
        let r = r_fill as f64;
        let mut best = 0usize;
        let mut best_score = f64::INFINITY;
        for (j, node) in self.nodes.iter().enumerate() {
            // w_j: queued workload expressed in capability units.
            let backlog_secs = node.busy_until.saturating_duration_since(now).as_secs_f64();
            let w_j = backlog_secs * node.capability;
            let score = (w_j + r) / node.capability + node.rtt.as_secs_f64();
            if score < best_score {
                best_score = score;
                best = j;
            }
        }
        let node = &mut self.nodes[best];
        let arrive = now + node.rtt / 2;
        let start = arrive.max(node.busy_until);
        let render = SimDuration::from_secs_f64(r / node.capability);
        let finish = start + render + extra_service;
        node.busy_until = finish;
        node.requests_served += 1;
        if let Some((requests, queue_wait)) = &self.telemetry {
            requests.inc();
            queue_wait.record_duration(start - arrive);
        }
        DispatchDecision {
            node: best,
            start,
            finish,
        }
    }

    /// Per-node request counts (load-balance telemetry).
    pub fn served_counts(&self) -> Vec<u64> {
        self.nodes.iter().map(|n| n.requests_served).collect()
    }
}

/// Re-sequences out-of-order frame results for display.
///
/// # Examples
///
/// ```
/// use gbooster_core::scheduler::ReorderBuffer;
///
/// let mut buf = ReorderBuffer::new();
/// buf.insert(1, "frame1");
/// assert!(buf.pop_ready().is_empty(), "frame 0 still missing");
/// buf.insert(0, "frame0");
/// let ready: Vec<&str> = buf.pop_ready();
/// assert_eq!(ready, vec!["frame0", "frame1"]);
/// ```
#[derive(Clone, Debug)]
pub struct ReorderBuffer<T> {
    next: u64,
    pending: BTreeMap<u64, T>,
    max_held: usize,
}

impl<T> Default for ReorderBuffer<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ReorderBuffer<T> {
    /// Creates a buffer expecting sequence 0.
    pub fn new() -> Self {
        ReorderBuffer {
            next: 0,
            pending: BTreeMap::new(),
            max_held: 0,
        }
    }

    /// Inserts the result for `seq`. Duplicate sequence numbers replace
    /// the held value (idempotent retransmits).
    pub fn insert(&mut self, seq: u64, value: T) {
        if seq >= self.next {
            self.pending.insert(seq, value);
            self.max_held = self.max_held.max(self.pending.len());
        }
    }

    /// Removes and returns every result now deliverable in order.
    pub fn pop_ready(&mut self) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(v) = self.pending.remove(&self.next) {
            out.push(v);
            self.next += 1;
        }
        out
    }

    /// Results held waiting for a predecessor.
    pub fn held(&self) -> usize {
        self.pending.len()
    }

    /// High-water mark of held results (memory-overhead accounting).
    pub fn max_held(&self) -> usize {
        self.max_held
    }

    /// Next sequence number awaited.
    pub fn awaiting(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_nodes() -> Dispatcher {
        Dispatcher::new(vec![
            ServiceNode::new(DeviceSpec::nvidia_shield(), SimDuration::from_millis(2)),
            ServiceNode::new(
                DeviceSpec::dell_optiplex_9010(),
                SimDuration::from_millis(2),
            ),
        ])
    }

    #[test]
    fn faster_idle_node_wins() {
        let mut d = Dispatcher::new(vec![
            ServiceNode::new(DeviceSpec::minix_neo_u1(), SimDuration::from_millis(2)),
            ServiceNode::new(DeviceSpec::nvidia_shield(), SimDuration::from_millis(2)),
        ]);
        let decision = d.dispatch(50_000_000, SimDuration::ZERO, SimTime::ZERO);
        assert_eq!(decision.node, 1, "shield (16 GP/s) beats minix (6 GP/s)");
    }

    #[test]
    fn backlog_diverts_to_the_other_node() {
        let mut d = two_nodes();
        // Saturate node 0 with several big requests.
        let big = 100_000_000u64;
        let first = d.dispatch(big, SimDuration::ZERO, SimTime::ZERO);
        let second = d.dispatch(big, SimDuration::ZERO, SimTime::ZERO);
        assert_ne!(
            first.node, second.node,
            "Eq. 4 must divert around the backlog"
        );
    }

    #[test]
    fn latency_term_matters_for_small_requests() {
        let mut d = Dispatcher::new(vec![
            ServiceNode::new(DeviceSpec::nvidia_shield(), SimDuration::from_millis(50)),
            ServiceNode::new(DeviceSpec::minix_neo_u1(), SimDuration::from_micros(100)),
        ]);
        // A tiny request: render-time difference (micros) is dwarfed by
        // the 50 ms RTT, so the slower-but-closer node wins.
        let decision = d.dispatch(10_000, SimDuration::ZERO, SimTime::ZERO);
        assert_eq!(decision.node, 1);
    }

    #[test]
    fn queue_advances_busy_until() {
        let mut d = two_nodes();
        let a = d.dispatch(16_000_000, SimDuration::from_millis(5), SimTime::ZERO);
        assert!(a.finish > a.start);
        let served: u64 = d.served_counts().iter().sum();
        assert_eq!(served, 1);
        assert_eq!(d.nodes()[a.node].busy_until(), a.finish);
    }

    #[test]
    fn load_balances_across_equal_nodes() {
        let mut d = Dispatcher::new(vec![
            ServiceNode::new(DeviceSpec::nvidia_shield(), SimDuration::from_millis(2)),
            ServiceNode::new(DeviceSpec::nvidia_shield(), SimDuration::from_millis(2)),
            ServiceNode::new(DeviceSpec::nvidia_shield(), SimDuration::from_millis(2)),
        ]);
        let mut now = SimTime::ZERO;
        // Requests arrive faster than any single node can serve them
        // (14 ms service, 5 ms spacing), so Eq. 4 must fan out to all 3.
        for _ in 0..30 {
            d.dispatch(64_000_000, SimDuration::from_millis(10), now);
            now += SimDuration::from_millis(5);
        }
        let counts = d.served_counts();
        for &c in &counts {
            assert!((6..=14).contains(&c), "unbalanced: {counts:?}");
        }
    }

    #[test]
    fn dispatch_telemetry_counts_requests_and_queue_waits() {
        let registry = Registry::new();
        let mut d = two_nodes();
        d.attach_registry(&registry);
        let big = 100_000_000u64;
        for _ in 0..6 {
            d.dispatch(big, SimDuration::ZERO, SimTime::ZERO);
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter(names::sched::REQUESTS), 6);
        let waits = snap.histogram(names::sched::QUEUE_WAIT).unwrap();
        assert_eq!(waits.count(), 6);
        // Six heavy requests over two nodes at t=0: the later ones must
        // queue behind the earlier, so some wait is strictly positive.
        assert!(waits.max() > 0, "expected queueing, waits all zero");
    }

    #[test]
    fn reorder_buffer_delivers_in_sequence() {
        let mut buf = ReorderBuffer::new();
        buf.insert(2, 2);
        buf.insert(0, 0);
        assert_eq!(buf.pop_ready(), vec![0]);
        assert_eq!(buf.held(), 1);
        buf.insert(1, 1);
        assert_eq!(buf.pop_ready(), vec![1, 2]);
        assert_eq!(buf.awaiting(), 3);
        assert_eq!(buf.max_held(), 2);
    }

    #[test]
    fn reorder_buffer_drops_stale_results() {
        let mut buf = ReorderBuffer::new();
        buf.insert(0, "a");
        assert_eq!(buf.pop_ready(), vec!["a"]);
        buf.insert(0, "late duplicate");
        assert!(buf.pop_ready().is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_dispatcher_panics() {
        let _ = Dispatcher::new(Vec::new());
    }
}
