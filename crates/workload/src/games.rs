//! The six-game evaluation corpus (Table II of the paper).
//!
//! | id | title            | genre        | package size |
//! |----|------------------|--------------|--------------|
//! | G1 | GTA San Andreas  | action       | 2.41 GB      |
//! | G2 | Modern Combat    | action       | 0.89 GB      |
//! | G3 | Star Wars (KOTOR)| role playing | 2.4 GB       |
//! | G4 | Final Fantasy    | role playing | 3.05 GB      |
//! | G5 | Candy Crush      | puzzle       | 0.17 GB      |
//! | G6 | Cut the Rope     | puzzle       | 0.12 GB      |

use crate::genre::{Genre, GenreProfile};

/// One game of the evaluation corpus.
#[derive(Clone, Debug, PartialEq)]
pub struct GameTitle {
    /// Paper identifier (G1–G6).
    pub id: &'static str,
    /// Commercial title.
    pub name: &'static str,
    /// Genre.
    pub genre: Genre,
    /// Installation package size in gigabytes (Table II).
    pub package_gb: f64,
    /// Per-title intensity scalar applied to the genre profile (titles
    /// within a genre differ slightly; calibrated to Fig. 5's spread).
    pub intensity: f64,
}

impl GameTitle {
    /// G1: GTA San Andreas — the heaviest action title.
    pub fn g1_gta_san_andreas() -> Self {
        GameTitle {
            id: "G1",
            name: "GTA San Andreas",
            genre: Genre::Action,
            package_gb: 2.41,
            intensity: 1.08,
        }
    }

    /// G2: Modern Combat 5 — action, slightly lighter than G1.
    pub fn g2_modern_combat() -> Self {
        GameTitle {
            id: "G2",
            name: "Modern Combat",
            genre: Genre::Action,
            package_gb: 0.89,
            intensity: 1.00,
        }
    }

    /// G3: Star Wars: KOTOR — role playing.
    pub fn g3_star_wars() -> Self {
        GameTitle {
            id: "G3",
            name: "Star Wars",
            genre: Genre::RolePlaying,
            package_gb: 2.4,
            intensity: 1.00,
        }
    }

    /// G4: Final Fantasy — role playing, slightly heavier.
    pub fn g4_final_fantasy() -> Self {
        GameTitle {
            id: "G4",
            name: "Final Fantasy",
            genre: Genre::RolePlaying,
            package_gb: 3.05,
            intensity: 1.06,
        }
    }

    /// G5: Candy Crush — puzzle.
    pub fn g5_candy_crush() -> Self {
        GameTitle {
            id: "G5",
            name: "Candy Crush",
            genre: Genre::Puzzle,
            package_gb: 0.17,
            intensity: 1.00,
        }
    }

    /// G6: Cut the Rope — puzzle, lightest of the corpus.
    pub fn g6_cut_the_rope() -> Self {
        GameTitle {
            id: "G6",
            name: "Cut the Rope",
            genre: Genre::Puzzle,
            package_gb: 0.12,
            intensity: 0.92,
        }
    }

    /// The whole Table II corpus, in order.
    pub fn corpus() -> Vec<GameTitle> {
        vec![
            Self::g1_gta_san_andreas(),
            Self::g2_modern_combat(),
            Self::g3_star_wars(),
            Self::g4_final_fantasy(),
            Self::g5_candy_crush(),
            Self::g6_cut_the_rope(),
        ]
    }

    /// The genre profile, already scaled by this title's intensity where
    /// the scaling is multiplicative (fill work); other profile fields are
    /// shared genre-wide.
    pub fn profile(&self) -> GenreProfile {
        GenreProfile::for_genre(self.genre)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_matches_table2() {
        let corpus = GameTitle::corpus();
        assert_eq!(corpus.len(), 6);
        assert_eq!(corpus[0].id, "G1");
        assert_eq!(corpus[0].package_gb, 2.41);
        assert_eq!(corpus[3].name, "Final Fantasy");
        assert_eq!(corpus[5].genre, Genre::Puzzle);
    }

    #[test]
    fn genres_span_the_three_major_categories() {
        let corpus = GameTitle::corpus();
        let actions = corpus.iter().filter(|g| g.genre == Genre::Action).count();
        let rpgs = corpus
            .iter()
            .filter(|g| g.genre == Genre::RolePlaying)
            .count();
        let puzzles = corpus.iter().filter(|g| g.genre == Genre::Puzzle).count();
        assert_eq!((actions, rpgs, puzzles), (2, 2, 2));
    }

    #[test]
    fn majority_have_large_packages() {
        // "The majority of them have a large installation package size
        // (above 500 MB)" — Section VII-A.
        let over_half_gb = GameTitle::corpus()
            .iter()
            .filter(|g| g.package_gb > 0.5)
            .count();
        assert!(over_half_gb >= 4);
    }

    #[test]
    fn profiles_follow_genres() {
        assert_eq!(
            GameTitle::g1_gta_san_andreas().profile().genre,
            Genre::Action
        );
        assert_eq!(GameTitle::g5_candy_crush().profile().genre, Genre::Puzzle);
    }
}
