//! RGBA8 framebuffers with tile-level diffing.
//!
//! Rendered frames flow back from the service device to the user device;
//! the Turbo encoder (Section V-A, ref \[25\]) "eliminates the redundant
//! data by only transmitting incremental updates between consecutive
//! frames". Tile diffing is therefore a first-class framebuffer operation
//! here, shared by the executor and the codec.

use crate::types::GlError;

/// Side length of a diff tile in pixels (TurboVNC-style 16×16 blocks).
pub const TILE_SIZE: u32 = 16;

/// A width×height RGBA8 image.
///
/// # Examples
///
/// ```
/// use gbooster_gles::framebuffer::Framebuffer;
///
/// let mut fb = Framebuffer::new(32, 32);
/// fb.fill([255, 0, 0, 255]);
/// assert_eq!(fb.pixel(31, 31), [255, 0, 0, 255]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Framebuffer {
    width: u32,
    height: u32,
    pixels: Vec<u8>,
    depth: Vec<f32>,
}

impl Framebuffer {
    /// Creates a black, fully-opaque framebuffer with a cleared depth
    /// buffer.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "framebuffer must be non-empty");
        let mut pixels = vec![0u8; (width * height * 4) as usize];
        for px in pixels.chunks_exact_mut(4) {
            px[3] = 255;
        }
        Framebuffer {
            width,
            height,
            pixels,
            depth: vec![1.0; (width * height) as usize],
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total pixel count.
    pub fn pixel_count(&self) -> u64 {
        self.width as u64 * self.height as u64
    }

    /// Raw RGBA bytes, row-major.
    pub fn as_bytes(&self) -> &[u8] {
        &self.pixels
    }

    /// The RGBA value at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn pixel(&self, x: u32, y: u32) -> [u8; 4] {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        let i = ((y * self.width + x) * 4) as usize;
        [
            self.pixels[i],
            self.pixels[i + 1],
            self.pixels[i + 2],
            self.pixels[i + 3],
        ]
    }

    /// Writes the RGBA value at `(x, y)`; out-of-bounds writes are
    /// silently clipped (GL scissor semantics).
    pub fn set_pixel(&mut self, x: u32, y: u32, rgba: [u8; 4]) {
        if x >= self.width || y >= self.height {
            return;
        }
        let i = ((y * self.width + x) * 4) as usize;
        self.pixels[i..i + 4].copy_from_slice(&rgba);
    }

    /// Depth value at `(x, y)`, or `None` when out of bounds.
    pub fn depth_at(&self, x: u32, y: u32) -> Option<f32> {
        if x >= self.width || y >= self.height {
            return None;
        }
        Some(self.depth[(y * self.width + x) as usize])
    }

    /// Writes the depth value at `(x, y)`; out of bounds is clipped.
    pub fn set_depth(&mut self, x: u32, y: u32, z: f32) {
        if x >= self.width || y >= self.height {
            return;
        }
        self.depth[(y * self.width + x) as usize] = z;
    }

    /// Fills the color buffer with one RGBA value.
    pub fn fill(&mut self, rgba: [u8; 4]) {
        for px in self.pixels.chunks_exact_mut(4) {
            px.copy_from_slice(&rgba);
        }
    }

    /// Resets every depth sample to the far plane (1.0).
    pub fn clear_depth(&mut self, z: f32) {
        self.depth.fill(z);
    }

    /// Number of tile columns/rows covering the image.
    pub fn tile_grid(&self) -> (u32, u32) {
        (
            self.width.div_ceil(TILE_SIZE),
            self.height.div_ceil(TILE_SIZE),
        )
    }

    /// Extracts the RGBA bytes of the tile at tile coordinates
    /// `(tx, ty)`, clipped to the image (edge tiles may be smaller).
    ///
    /// # Errors
    ///
    /// Returns [`GlError::InvalidValue`] if the tile coordinate is outside
    /// the tile grid.
    pub fn tile_bytes(&self, tx: u32, ty: u32) -> Result<Vec<u8>, GlError> {
        let (cols, rows) = self.tile_grid();
        if tx >= cols || ty >= rows {
            return Err(GlError::InvalidValue(format!(
                "tile ({tx},{ty}) outside {cols}x{rows} grid"
            )));
        }
        let x0 = tx * TILE_SIZE;
        let y0 = ty * TILE_SIZE;
        let x1 = (x0 + TILE_SIZE).min(self.width);
        let y1 = (y0 + TILE_SIZE).min(self.height);
        let mut out = Vec::with_capacity(((x1 - x0) * (y1 - y0) * 4) as usize);
        for y in y0..y1 {
            let start = ((y * self.width + x0) * 4) as usize;
            let end = ((y * self.width + x1) * 4) as usize;
            out.extend_from_slice(&self.pixels[start..end]);
        }
        Ok(out)
    }

    /// Overwrites the tile at `(tx, ty)` with `bytes` (as produced by
    /// [`Framebuffer::tile_bytes`]).
    ///
    /// # Errors
    ///
    /// Returns [`GlError::InvalidValue`] on a bad tile coordinate or a
    /// byte-length mismatch.
    pub fn write_tile(&mut self, tx: u32, ty: u32, bytes: &[u8]) -> Result<(), GlError> {
        let (cols, rows) = self.tile_grid();
        if tx >= cols || ty >= rows {
            return Err(GlError::InvalidValue(format!(
                "tile ({tx},{ty}) outside {cols}x{rows} grid"
            )));
        }
        let x0 = tx * TILE_SIZE;
        let y0 = ty * TILE_SIZE;
        let x1 = (x0 + TILE_SIZE).min(self.width);
        let y1 = (y0 + TILE_SIZE).min(self.height);
        let expected = ((x1 - x0) * (y1 - y0) * 4) as usize;
        if bytes.len() != expected {
            return Err(GlError::InvalidValue(format!(
                "tile payload {} bytes, expected {expected}",
                bytes.len()
            )));
        }
        let row_len = ((x1 - x0) * 4) as usize;
        for (row, y) in (y0..y1).enumerate() {
            let dst = ((y * self.width + x0) * 4) as usize;
            self.pixels[dst..dst + row_len]
                .copy_from_slice(&bytes[row * row_len..(row + 1) * row_len]);
        }
        Ok(())
    }

    /// Tile coordinates whose contents differ from `other`.
    ///
    /// # Errors
    ///
    /// Returns [`GlError::InvalidOperation`] if dimensions differ.
    pub fn changed_tiles(&self, other: &Framebuffer) -> Result<Vec<(u32, u32)>, GlError> {
        if self.width != other.width || self.height != other.height {
            return Err(GlError::InvalidOperation(
                "cannot diff framebuffers of different sizes".into(),
            ));
        }
        let (cols, rows) = self.tile_grid();
        let mut changed = Vec::new();
        for ty in 0..rows {
            for tx in 0..cols {
                // Unwrap is fine: coordinates come from the grid itself.
                if self.tile_bytes(tx, ty).unwrap() != other.tile_bytes(tx, ty).unwrap() {
                    changed.push((tx, ty));
                }
            }
        }
        Ok(changed)
    }

    /// Fraction of pixels that differ from `other`, in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`GlError::InvalidOperation`] if dimensions differ.
    pub fn pixel_diff_ratio(&self, other: &Framebuffer) -> Result<f64, GlError> {
        if self.width != other.width || self.height != other.height {
            return Err(GlError::InvalidOperation(
                "cannot diff framebuffers of different sizes".into(),
            ));
        }
        let differing = self
            .pixels
            .chunks_exact(4)
            .zip(other.pixels.chunks_exact(4))
            .filter(|(a, b)| a != b)
            .count();
        Ok(differing as f64 / self.pixel_count() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_black_and_opaque() {
        let fb = Framebuffer::new(4, 4);
        assert_eq!(fb.pixel(0, 0), [0, 0, 0, 255]);
        assert_eq!(fb.depth_at(0, 0), Some(1.0));
    }

    #[test]
    fn set_and_get_round_trip() {
        let mut fb = Framebuffer::new(8, 8);
        fb.set_pixel(3, 5, [1, 2, 3, 4]);
        assert_eq!(fb.pixel(3, 5), [1, 2, 3, 4]);
        // Out-of-bounds writes are clipped, not panics.
        fb.set_pixel(100, 100, [9, 9, 9, 9]);
    }

    #[test]
    fn tile_grid_covers_partial_tiles() {
        let fb = Framebuffer::new(33, 17);
        assert_eq!(fb.tile_grid(), (3, 2));
        // Edge tile is 1 px wide, 16 tall.
        let t = fb.tile_bytes(2, 0).unwrap();
        assert_eq!(t.len(), 16 * 4);
    }

    #[test]
    fn tile_write_round_trip() {
        let mut a = Framebuffer::new(32, 32);
        let mut b = Framebuffer::new(32, 32);
        a.set_pixel(17, 3, [200, 100, 50, 255]);
        let tile = a.tile_bytes(1, 0).unwrap();
        b.write_tile(1, 0, &tile).unwrap();
        assert_eq!(b.pixel(17, 3), [200, 100, 50, 255]);
    }

    #[test]
    fn changed_tiles_detects_only_touched_tiles() {
        let base = Framebuffer::new(64, 64);
        let mut next = base.clone();
        next.set_pixel(40, 40, [255, 0, 0, 255]);
        let changed = next.changed_tiles(&base).unwrap();
        assert_eq!(changed, vec![(2, 2)]);
    }

    #[test]
    fn identical_frames_have_no_changed_tiles() {
        let a = Framebuffer::new(64, 64);
        let b = a.clone();
        assert!(a.changed_tiles(&b).unwrap().is_empty());
        assert_eq!(a.pixel_diff_ratio(&b).unwrap(), 0.0);
    }

    #[test]
    fn diff_ratio_counts_pixels() {
        let a = Framebuffer::new(10, 10);
        let mut b = a.clone();
        for x in 0..10 {
            b.set_pixel(x, 0, [1, 1, 1, 255]);
        }
        let r = b.pixel_diff_ratio(&a).unwrap();
        assert!((r - 0.1).abs() < 1e-9);
    }

    #[test]
    fn size_mismatch_is_an_error() {
        let a = Framebuffer::new(8, 8);
        let b = Framebuffer::new(16, 16);
        assert!(a.changed_tiles(&b).is_err());
        assert!(a.pixel_diff_ratio(&b).is_err());
    }

    #[test]
    fn bad_tile_coordinates_error() {
        let fb = Framebuffer::new(16, 16);
        assert!(fb.tile_bytes(1, 0).is_err());
        let mut fb2 = Framebuffer::new(16, 16);
        assert!(fb2.write_tile(0, 0, &[0u8; 3]).is_err());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_size_panics() {
        let _ = Framebuffer::new(0, 4);
    }
}
