//! The engine-side live-ops runtime.
//!
//! [`OpsRuntime`] is the glue between the session engine and the
//! telemetry crate's streaming-ops primitives: it owns the shared
//! [`OpsLog`] journal, feeds the windowed metric streams once per
//! presented frame, evaluates every configured [`SloObjective`] the
//! multi-window burn-rate way, steps the per-objective
//! [`AlertMachine`]s, runs [`AnomalyDetector`]s over the streams that
//! have no hard objective (per-interface power draw), and correlates
//! everything — detector faults, alert firings, injected degradations —
//! into at-most-one-open incident via the [`IncidentManager`].
//!
//! Everything runs in **sim time** and is attribution-only: attaching
//! the runtime changes no frame timing, routing, or protocol behavior,
//! so a session with the ops layer on is byte-identical to one with it
//! off everywhere except the ops outputs themselves.
//!
//! Severity ranking when concurrent triggers correlate (higher wins the
//! incident's kind): `all_nodes_lost` (6) > `node_loss` (5) >
//! `fallback_engaged` (4) > `node_degraded` (3) > the transport
//! symptoms `loss_storm` / `dispatch_timeout` / `interface_flap` (2) >
//! `slo_burn` (1). A rejoin is recovery, not a trigger: it lands in the
//! timeline as a detector event but never opens an incident.

use gbooster_sim::time::{SimDuration, SimTime};
use gbooster_telemetry::{
    names, AlertMachine, AlertSummary, AlertTransition, AnomalyDetector, AttributionLog, BurnState,
    Counter, Fault, IncidentConfig, IncidentManager, OpsEventKind, OpsLog, OpsReport, Registry,
    SloWindowState, Tsdb, WindowedHistogram,
};

use crate::config::OpsConfig;

/// Slot width of every windowed ops stream. The default burn windows
/// are multiples of this, so window cuts land on slot boundaries.
const SLOT_WIDTH: SimDuration = SimDuration::from_millis(100);

/// Slots retained per stream: covers the longest default slow window
/// (2.5 s) with generous headroom.
const SLOT_RETAIN: usize = 64;

/// EWMA smoothing factor for the power anomaly detectors.
const ANOMALY_ALPHA: f64 = 0.1;

/// Samples a power anomaly detector observes before it may flag.
const ANOMALY_WARMUP: u64 = 30;

/// TSDB ring capacity for the opt-in recording rules: one point per
/// evaluation (per presented frame), so cover several seconds at 60 fps.
const RULE_SLOTS: usize = 512;

/// Severity of an SLO-burn-triggered incident (the floor of the ranks).
const SLO_BURN_SEVERITY: u8 = 1;

/// Incident kind and severity for a detector-classified fault, or
/// `None` for faults that are recoveries rather than triggers.
fn fault_rank(fault: Fault) -> Option<(&'static str, u8)> {
    match fault {
        Fault::AllNodesLost => Some(("all_nodes_lost", 6)),
        Fault::NodeLoss => Some(("node_loss", 5)),
        Fault::FallbackEngaged => Some(("fallback_engaged", 4)),
        Fault::LossStorm => Some(("loss_storm", 2)),
        Fault::DispatchTimeout => Some(("dispatch_timeout", 2)),
        Fault::InterfaceFlap => Some(("interface_flap", 2)),
        Fault::MigrationStalled => Some(("migration_stalled", 3)),
        Fault::NodeRejoined => None,
    }
}

/// One objective with its stream handle and alert lifecycle.
#[derive(Debug)]
struct ObjectiveRuntime {
    objective: gbooster_telemetry::SloObjective,
    stream: WindowedHistogram,
    alert: AlertMachine,
}

/// The live-ops evaluation loop, owned by the offload engine.
#[derive(Debug)]
pub struct OpsRuntime {
    log: OpsLog,
    objectives: Vec<ObjectiveRuntime>,
    incidents: IncidentManager,
    attr: AttributionLog,
    // Windowed sample streams fed once per presented frame.
    win_latency: WindowedHistogram,
    win_interval: WindowedHistogram,
    win_cache_miss: WindowedHistogram,
    win_wifi_power: WindowedHistogram,
    win_bt_power: WindowedHistogram,
    // Anomaly detectors for the objective-less power streams.
    det_wifi: AnomalyDetector,
    det_bt: AnomalyDetector,
    // Ops counters, published at finalize.
    c_events: Counter,
    c_incidents: Counter,
    c_correlated: Counter,
    c_alerts_fired: Counter,
    c_alerts_deduped: Counter,
    c_anomalies: Counter,
    // Per-present delta state.
    hits: Counter,
    misses: Counter,
    prev_hits: u64,
    prev_misses: u64,
    prev_wifi_j: f64,
    prev_bt_j: f64,
    last_present: Option<SimTime>,
    anomalies: u64,
    /// Opt-in recording rules ([`OpsConfig::record_rules`]): every
    /// burn-rate evaluation is persisted here, so postmortem queries
    /// return the exact floats the alert machines saw.
    rules: Option<Tsdb>,
}

impl OpsRuntime {
    /// Builds the runtime from the session's [`OpsConfig`], registering
    /// every stream and counter in `registry`. Returns `None` when the
    /// layer is disabled — the engine then skips every tap.
    pub fn new(cfg: &OpsConfig, registry: &Registry, attr: AttributionLog) -> Option<Self> {
        if !cfg.enabled {
            return None;
        }
        let objectives = cfg
            .objectives
            .iter()
            .map(|&objective| ObjectiveRuntime {
                objective,
                stream: registry.windowed(objective.stream, SLOT_WIDTH, SLOT_RETAIN),
                alert: AlertMachine::new(objective.name, cfg.alert),
            })
            .collect();
        Some(OpsRuntime {
            log: OpsLog::new(),
            objectives,
            incidents: IncidentManager::new(IncidentConfig {
                lookback: SimDuration::from_millis(cfg.incident_lookback_ms),
                min_open: SimDuration::from_millis(cfg.incident_min_open_ms),
            }),
            attr,
            win_latency: registry.windowed(names::ops::WIN_FRAME_LATENCY, SLOT_WIDTH, SLOT_RETAIN),
            win_interval: registry.windowed(
                names::ops::WIN_FRAME_INTERVAL,
                SLOT_WIDTH,
                SLOT_RETAIN,
            ),
            win_cache_miss: registry.windowed(names::ops::WIN_CACHE_MISS, SLOT_WIDTH, SLOT_RETAIN),
            win_wifi_power: registry.windowed(names::ops::WIN_WIFI_POWER, SLOT_WIDTH, SLOT_RETAIN),
            win_bt_power: registry.windowed(names::ops::WIN_BT_POWER, SLOT_WIDTH, SLOT_RETAIN),
            det_wifi: AnomalyDetector::new(
                names::ops::WIN_WIFI_POWER,
                ANOMALY_ALPHA,
                cfg.anomaly_z,
                ANOMALY_WARMUP,
            ),
            det_bt: AnomalyDetector::new(
                names::ops::WIN_BT_POWER,
                ANOMALY_ALPHA,
                cfg.anomaly_z,
                ANOMALY_WARMUP,
            ),
            c_events: registry.counter(names::ops::EVENTS),
            c_incidents: registry.counter(names::ops::INCIDENTS),
            c_correlated: registry.counter(names::ops::INCIDENTS_CORRELATED),
            c_alerts_fired: registry.counter(names::ops::ALERTS_FIRED),
            c_alerts_deduped: registry.counter(names::ops::ALERTS_DEDUPED),
            c_anomalies: registry.counter(names::ops::ANOMALIES),
            hits: registry.counter(names::forward::CACHE_HITS),
            misses: registry.counter(names::forward::CACHE_MISSES),
            prev_hits: 0,
            prev_misses: 0,
            prev_wifi_j: 0.0,
            prev_bt_j: 0.0,
            last_present: None,
            anomalies: 0,
            rules: cfg.record_rules.then(|| Tsdb::new(RULE_SLOTS)),
        })
    }

    /// The recording-rule TSDB, when [`OpsConfig::record_rules`] was
    /// set. Query it with [`gbooster_telemetry::query::eval`].
    pub fn tsdb(&self) -> Option<&Tsdb> {
        self.rules.as_ref()
    }

    /// A handle to the shared event journal, for the other producers
    /// (flight recorder, health monitor, transport).
    pub fn log(&self) -> OpsLog {
        self.log.clone()
    }

    /// Feeds one presented frame's samples into the windowed streams:
    /// end-to-end latency, inter-frame gap, per-frame cache-miss
    /// permille (from the forwarder counter deltas), and per-interface
    /// power rate over the gap (cumulative joules passed in; rates feed
    /// the anomaly detectors).
    pub fn on_present(
        &mut self,
        shown: SimTime,
        latency: SimDuration,
        wifi_joules: f64,
        bt_joules: f64,
    ) {
        self.win_latency.record(shown, latency.as_micros());
        let (hits, misses) = (self.hits.get(), self.misses.get());
        let (dh, dm) = (hits - self.prev_hits, misses - self.prev_misses);
        self.prev_hits = hits;
        self.prev_misses = misses;
        if let Some(permille) = (dm * 1_000).checked_div(dh + dm) {
            self.win_cache_miss.record(shown, permille);
        }
        if let Some(prev) = self.last_present {
            let gap = shown.saturating_duration_since(prev);
            self.win_interval.record(shown, gap.as_micros());
            let secs = gap.as_secs_f64();
            if secs > 0.0 {
                // Round to whole milliwatts before recording *and*
                // detecting: the detector must see exactly the stream
                // the histogram keeps, and sub-mW float noise on a
                // near-constant rate would otherwise shrink the EWMA
                // variance until trivial jitter scores as anomalous.
                let wifi_mw = ((wifi_joules - self.prev_wifi_j).max(0.0) / secs * 1_000.0).round();
                let bt_mw = ((bt_joules - self.prev_bt_j).max(0.0) / secs * 1_000.0).round();
                self.win_wifi_power.record(shown, wifi_mw as u64);
                self.win_bt_power.record(shown, bt_mw as u64);
                for (det, value) in [(&mut self.det_wifi, wifi_mw), (&mut self.det_bt, bt_mw)] {
                    if let Some(hit) = det.observe(value) {
                        self.anomalies += 1;
                        self.log.push(
                            shown,
                            OpsEventKind::Anomaly {
                                metric: det.metric,
                                value: hit.value,
                                mean: hit.mean,
                                z: hit.z,
                            },
                        );
                    }
                }
            }
        }
        self.last_present = Some(shown);
        self.prev_wifi_j = wifi_joules;
        self.prev_bt_j = bt_joules;
    }

    /// Evaluates every objective at `now`, steps its alert machine,
    /// journals the transitions, opens an `slo_burn` incident on a
    /// firing (or correlates it into the open one), and closes the open
    /// incident once the system is quiescent — `pool_healthy` AND no
    /// alert active — past the minimum open time.
    pub fn evaluate(&mut self, now: SimTime, pool_healthy: bool) {
        let burns: Vec<BurnState> = self
            .objectives
            .iter()
            .map(|o| o.objective.evaluate(now, &o.stream))
            .collect();
        if let Some(db) = self.rules.as_mut() {
            for (o, burn) in self.objectives.iter().zip(&burns) {
                db.record_burn(now, o.objective.name, burn, &[]);
            }
        }
        for (o, burn) in self.objectives.iter_mut().zip(&burns) {
            let Some(transition) = o.alert.step(now, burn.breaching) else {
                continue;
            };
            self.log.push(
                now,
                OpsEventKind::Alert {
                    alert: o.alert.name,
                    transition: transition.as_str(),
                    fast_burn: burn.fast_burn,
                    slow_burn: burn.slow_burn,
                },
            );
            if transition == AlertTransition::Fired {
                self.incidents.on_trigger(
                    now,
                    "slo_burn",
                    SLO_BURN_SEVERITY,
                    format!(
                        "alert {} fired (burn fast {:.2} / slow {:.2})",
                        o.alert.name, burn.fast_burn, burn.slow_burn
                    ),
                    burns.iter().map(SloWindowState::from).collect(),
                    &self.attr.snapshot(),
                );
            }
        }
        if self.incidents.has_open() {
            let quiescent = pool_healthy && self.objectives.iter().all(|o| !o.alert.is_active());
            self.incidents
                .maybe_close(now, quiescent, &self.attr.snapshot(), &self.log);
        }
    }

    /// Journals a detector-classified fault and folds it into the
    /// incident correlation (rejoins journal only — recovery is not a
    /// trigger).
    pub fn on_fault(&mut self, now: SimTime, fault: Fault) {
        self.log.push(
            now,
            OpsEventKind::FaultDetected {
                fault: fault.as_str(),
            },
        );
        let Some((kind, severity)) = fault_rank(fault) else {
            return;
        };
        let slo = self.burn_snapshot(now);
        self.incidents.on_trigger(
            now,
            kind,
            severity,
            format!("detector classified {}", fault.as_str()),
            slo,
            &self.attr.snapshot(),
        );
    }

    /// Journals an injected capability brownout and opens (or
    /// correlates) a `node_degraded` incident.
    pub fn on_degrade(&mut self, now: SimTime, node: usize, factor: f64) {
        self.log.push(
            now,
            OpsEventKind::NodeDegraded {
                node,
                factor_permille: (factor * 1_000.0).round() as u64,
            },
        );
        let slo = self.burn_snapshot(now);
        self.incidents.on_trigger(
            now,
            "node_degraded",
            3,
            format!("node {node} degraded to {:.1}% throughput", factor * 100.0),
            slo,
            &self.attr.snapshot(),
        );
    }

    /// Journals the fallback engaging (`reason` is `"pool_empty"` or
    /// `"slo_breach"`). The matching incident trigger arrives via the
    /// detector chain's [`Fault::FallbackEngaged`].
    pub fn on_fallback_engaged(&mut self, now: SimTime, reason: &'static str) {
        self.log.push(now, OpsEventKind::FallbackEngaged { reason });
    }

    /// Journals the fallback releasing back to the offload path.
    pub fn on_fallback_released(&mut self, now: SimTime) {
        self.log.push(now, OpsEventKind::FallbackReleased);
    }

    /// Journals `frames` in-flight frames re-dispatched off dead `node`.
    pub fn on_redispatch(&mut self, now: SimTime, node: usize, frames: u64) {
        self.log
            .push(now, OpsEventKind::Redispatch { node, frames });
    }

    /// Current burn state of every objective, for incident records.
    fn burn_snapshot(&self, now: SimTime) -> Vec<SloWindowState> {
        self.objectives
            .iter()
            .map(|o| SloWindowState::from(&o.objective.evaluate(now, &o.stream)))
            .collect()
    }

    /// Ends the session's ops evaluation at `now`: attempts one final
    /// quiescent close, seals any still-open incident as unresolved,
    /// publishes the `ops.*` counters, and bundles the [`OpsReport`].
    pub fn finalize(&mut self, now: SimTime, pool_healthy: bool) -> OpsReport {
        let quiescent = pool_healthy && self.objectives.iter().all(|o| !o.alert.is_active());
        self.incidents
            .maybe_close(now, quiescent, &self.attr.snapshot(), &self.log);
        let incidents = self.incidents.finalize(&self.attr.snapshot(), &self.log);
        let alerts: Vec<AlertSummary> = self
            .objectives
            .iter()
            .map(|o| AlertSummary {
                name: o.alert.name,
                fired: o.alert.fired(),
                deduped: o.alert.deduped(),
                resolved: o.alert.resolved(),
                final_state: o.alert.state().as_str(),
            })
            .collect();
        self.c_events.add(self.log.len() as u64);
        self.c_incidents.add(self.incidents.opened());
        self.c_correlated.add(self.incidents.correlated());
        self.c_alerts_fired
            .add(alerts.iter().map(|a| a.fired).sum());
        self.c_alerts_deduped
            .add(alerts.iter().map(|a| a.deduped).sum());
        self.c_anomalies.add(self.anomalies);
        OpsReport {
            incidents,
            events: self.log.events(),
            alerts,
            anomalies: self.anomalies,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbooster_telemetry::AlertConfig;

    fn runtime() -> OpsRuntime {
        let registry = Registry::new();
        // Tighten the dwell so unit flows stay short.
        let cfg = OpsConfig {
            alert: AlertConfig {
                pending_for: SimDuration::from_millis(50),
                resolve_after: SimDuration::from_millis(100),
            },
            ..OpsConfig::default()
        };
        OpsRuntime::new(&cfg, &registry, AttributionLog::new()).expect("enabled by default")
    }

    #[test]
    fn disabled_config_builds_no_runtime() {
        let registry = Registry::new();
        let cfg = OpsConfig {
            enabled: false,
            ..OpsConfig::default()
        };
        assert!(OpsRuntime::new(&cfg, &registry, AttributionLog::new()).is_none());
    }

    #[test]
    fn sustained_latency_breach_fires_and_opens_an_slo_burn_incident() {
        let mut ops = runtime();
        // Healthy traffic through the warmup, then sustained badness.
        let mut t = SimTime::ZERO;
        for _ in 0..80 {
            t += SimDuration::from_millis(25);
            ops.on_present(t, SimDuration::from_millis(30), 0.0, 0.0);
            ops.evaluate(t, true);
        }
        assert!(!ops.incidents.has_open());
        for _ in 0..80 {
            t += SimDuration::from_millis(25);
            ops.on_present(t, SimDuration::from_millis(200), 0.0, 0.0);
            ops.evaluate(t, true);
        }
        assert!(ops.incidents.has_open(), "burn must open an incident");
        let report = ops.finalize(t, true);
        assert_eq!(report.incidents.len(), 1);
        assert_eq!(report.incidents[0].kind, "slo_burn");
        assert!(report.alerts.iter().any(|a| a.fired > 0));
        // The firing is in the journal as a structured alert event.
        assert!(report.events.iter().any(|e| matches!(
            e.kind,
            OpsEventKind::Alert {
                transition: "firing",
                ..
            }
        )));
    }

    #[test]
    fn a_fault_escalates_the_open_incident_instead_of_opening_a_second() {
        let mut ops = runtime();
        let t = SimTime::from_millis(3_000);
        ops.on_fault(t, Fault::FallbackEngaged);
        ops.on_fault(t + SimDuration::from_millis(10), Fault::NodeLoss);
        ops.on_fault(t + SimDuration::from_millis(20), Fault::NodeRejoined);
        let report = ops.finalize(t + SimDuration::from_millis(30), true);
        assert_eq!(report.incidents.len(), 1, "one correlated incident");
        assert_eq!(report.incidents[0].kind, "node_loss", "escalated");
        assert_eq!(report.incidents[0].correlated, 1, "rejoin never triggers");
        // All three detector events still land on the timeline.
        let faults: Vec<&str> = report.incidents[0]
            .timeline
            .iter()
            .filter_map(|e| match e.kind {
                OpsEventKind::FaultDetected { fault } => Some(fault),
                _ => None,
            })
            .collect();
        assert_eq!(
            faults,
            vec!["fallback_engaged", "node_loss", "node_rejoined"]
        );
    }

    #[test]
    fn recording_rules_reproduce_burn_numbers_exactly() {
        let registry = Registry::new();
        let cfg = OpsConfig {
            record_rules: true,
            ..OpsConfig::default()
        };
        let mut ops =
            OpsRuntime::new(&cfg, &registry, AttributionLog::new()).expect("enabled by default");
        assert!(ops.tsdb().is_some(), "record_rules builds the TSDB");
        let mut t = SimTime::ZERO;
        for i in 0..120u64 {
            t += SimDuration::from_millis(25);
            let lat = if i < 60 { 30 } else { 200 };
            ops.on_present(t, SimDuration::from_millis(lat), 0.0, 0.0);
            ops.evaluate(t, true);
        }
        // Every rule series' newest point must be bit-identical to a
        // direct re-evaluation of the objective at the same instant —
        // the rules store the alerting inputs, they don't recompute.
        let db = ops.tsdb().expect("record_rules on").clone();
        for o in &ops.objectives {
            let direct = o.objective.evaluate(t, &o.stream);
            let name = o.objective.name;
            for (suffix, want) in [
                ("fast_burn", direct.fast_burn),
                ("slow_burn", direct.slow_burn),
                ("fast_count", direct.fast_count as f64),
                ("slow_count", direct.slow_count as f64),
            ] {
                let expr = format!("{name}.{suffix}");
                let rows = gbooster_telemetry::query::eval(&db, &expr, t).expect("query parses");
                assert_eq!(rows, vec![(expr, want)], "objective {name}");
            }
        }
        // Off by default: no TSDB, no storage.
        let default_ops = runtime();
        assert!(default_ops.tsdb().is_none());
    }

    #[test]
    fn clean_samples_raise_nothing() {
        let mut ops = runtime();
        let mut t = SimTime::ZERO;
        for i in 0..240 {
            t += SimDuration::from_millis(25);
            let jitter = SimDuration::from_micros((i % 7) * 300);
            ops.on_present(
                t,
                SimDuration::from_millis(35) + jitter,
                0.01 * i as f64,
                0.0,
            );
            ops.evaluate(t, true);
        }
        let report = ops.finalize(t, true);
        assert!(report.incidents.is_empty());
        assert!(report.alerts.iter().all(|a| a.fired == 0));
        assert_eq!(report.anomalies, 0);
        assert!(report.events.is_empty());
    }
}
