//! A JPEG-style lossy image coder: 8×8 DCT, quantization, zigzag + RLE.
//!
//! This is the lossy stage of the Turbo encoder (Section V-A, ref \[25\]):
//! the paper offloads frame compression to "the JPEG image compression
//! algorithm". We implement the classic pipeline from scratch on RGBA
//! input (alpha is assumed opaque, as GL default framebuffers are):
//!
//! 1. split each channel into 8×8 blocks (edge blocks padded by
//!    replication);
//! 2. forward DCT-II per block;
//! 3. quantize with the standard JPEG luminance table scaled by a
//!    quality factor;
//! 4. zigzag scan + zero run-length coding with varint coefficients.
//!
//! Decoding inverts each step. The coder is deliberately simple (no
//! chroma subsampling or Huffman stage) but produces genuine lossy-DCT
//! behaviour: smooth content compresses dramatically, hard edges ring.

/// Errors from [`decompress`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JpegError {
    /// Input ended unexpectedly.
    Truncated,
    /// Header fields are inconsistent.
    BadHeader,
}

impl std::fmt::Display for JpegError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JpegError::Truncated => write!(f, "jpeg data truncated"),
            JpegError::BadHeader => write!(f, "jpeg header invalid"),
        }
    }
}

impl std::error::Error for JpegError {}

/// Standard JPEG luminance quantization table (Annex K).
const QUANT_BASE: [i32; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// Zigzag scan order for an 8×8 block.
const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

fn quant_table(quality: u8) -> [i32; 64] {
    // libjpeg-style quality scaling.
    let q = quality.clamp(1, 100) as i32;
    let scale = if q < 50 { 5000 / q } else { 200 - 2 * q };
    let mut t = [0i32; 64];
    for (dst, &base) in t.iter_mut().zip(QUANT_BASE.iter()) {
        *dst = ((base * scale + 50) / 100).clamp(1, 255);
    }
    t
}

fn fdct(block: &mut [f32; 64]) {
    let mut tmp = [0f32; 64];
    for u in 0..8 {
        for v in 0..8 {
            let cu = if u == 0 { 1.0 / (2f32).sqrt() } else { 1.0 };
            let cv = if v == 0 { 1.0 / (2f32).sqrt() } else { 1.0 };
            let mut sum = 0f32;
            for x in 0..8 {
                for y in 0..8 {
                    sum += block[x * 8 + y]
                        * (((2 * x + 1) as f32 * u as f32 * std::f32::consts::PI) / 16.0).cos()
                        * (((2 * y + 1) as f32 * v as f32 * std::f32::consts::PI) / 16.0).cos();
                }
            }
            tmp[u * 8 + v] = 0.25 * cu * cv * sum;
        }
    }
    *block = tmp;
}

fn idct(block: &mut [f32; 64]) {
    let mut tmp = [0f32; 64];
    for x in 0..8 {
        for y in 0..8 {
            let mut sum = 0f32;
            for u in 0..8 {
                for v in 0..8 {
                    let cu = if u == 0 { 1.0 / (2f32).sqrt() } else { 1.0 };
                    let cv = if v == 0 { 1.0 / (2f32).sqrt() } else { 1.0 };
                    sum += cu
                        * cv
                        * block[u * 8 + v]
                        * (((2 * x + 1) as f32 * u as f32 * std::f32::consts::PI) / 16.0).cos()
                        * (((2 * y + 1) as f32 * v as f32 * std::f32::consts::PI) / 16.0).cos();
                }
            }
            tmp[x * 8 + y] = 0.25 * sum;
        }
    }
    *block = tmp;
}

fn zigzag_encode_i32(v: i32) -> u32 {
    ((v << 1) ^ (v >> 31)) as u32
}
fn zigzag_decode_u32(v: u32) -> i32 {
    ((v >> 1) as i32) ^ -((v & 1) as i32)
}
fn put_varint(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}
fn get_varint(data: &[u8], i: &mut usize) -> Result<u32, JpegError> {
    let mut v = 0u32;
    let mut shift = 0;
    loop {
        let b = *data.get(*i).ok_or(JpegError::Truncated)?;
        *i += 1;
        v |= ((b & 0x7f) as u32) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 32 {
            return Err(JpegError::Truncated);
        }
    }
}

/// End-of-block sentinel in the run stream.
const EOB: u8 = 0xff;

/// Compresses an RGBA image at the given `quality` (1–100).
///
/// # Panics
///
/// Panics if `rgba.len() != width * height * 4` or a dimension is zero.
pub fn compress(width: u32, height: u32, rgba: &[u8], quality: u8) -> Vec<u8> {
    gbooster_telemetry::prof_scope!(gbooster_telemetry::names::host::JPEG);
    assert!(width > 0 && height > 0, "image must be non-empty");
    assert_eq!(
        rgba.len(),
        (width * height * 4) as usize,
        "rgba length mismatch"
    );
    let quality = quality.clamp(1, 100);
    let table = quant_table(quality);
    let mut out = Vec::new();
    out.extend_from_slice(&(width as u16).to_le_bytes());
    out.extend_from_slice(&(height as u16).to_le_bytes());
    out.push(quality);

    let bw = width.div_ceil(8);
    let bh = height.div_ceil(8);
    for channel in 0..3usize {
        for by in 0..bh {
            for bx in 0..bw {
                let mut block = [0f32; 64];
                for y in 0..8u32 {
                    for x in 0..8u32 {
                        // Replicate edge pixels for padding.
                        let px = (bx * 8 + x).min(width - 1);
                        let py = (by * 8 + y).min(height - 1);
                        let idx = ((py * width + px) * 4) as usize + channel;
                        block[(y * 8 + x) as usize] = rgba[idx] as f32 - 128.0;
                    }
                }
                fdct(&mut block);
                // Quantize + zigzag + RLE.
                let mut run = 0u8;
                let mut body = Vec::new();
                let mut last_nonzero = false;
                for &zz in ZIGZAG.iter() {
                    let q = (block[zz] / table[zz] as f32).round() as i32;
                    if q == 0 {
                        run += 1;
                        if run == EOB - 1 {
                            // Avoid colliding with the sentinel.
                            body.push(run);
                            put_varint(&mut body, zigzag_encode_i32(0));
                            run = 0;
                        }
                        last_nonzero = false;
                    } else {
                        body.push(run);
                        put_varint(&mut body, zigzag_encode_i32(q));
                        run = 0;
                        last_nonzero = true;
                    }
                }
                let _ = last_nonzero;
                body.push(EOB);
                out.extend_from_slice(&body);
            }
        }
    }
    out
}

/// Decompresses an image produced by [`compress`]; returns
/// `(width, height, rgba)`.
///
/// # Errors
///
/// Returns [`JpegError`] on truncated or malformed input.
pub fn decompress(data: &[u8]) -> Result<(u32, u32, Vec<u8>), JpegError> {
    gbooster_telemetry::prof_scope!(gbooster_telemetry::names::host::JPEG_DECODE);
    if data.len() < 5 {
        return Err(JpegError::Truncated);
    }
    let width = u16::from_le_bytes([data[0], data[1]]) as u32;
    let height = u16::from_le_bytes([data[2], data[3]]) as u32;
    let quality = data[4];
    if width == 0 || height == 0 || quality == 0 || quality > 100 {
        return Err(JpegError::BadHeader);
    }
    let table = quant_table(quality);
    let mut rgba = vec![255u8; (width * height * 4) as usize];
    let mut i = 5usize;
    let bw = width.div_ceil(8);
    let bh = height.div_ceil(8);
    for channel in 0..3usize {
        for by in 0..bh {
            for bx in 0..bw {
                // Decode one block's coefficients.
                let mut coeffs = [0i32; 64];
                let mut pos = 0usize;
                loop {
                    let run = *data.get(i).ok_or(JpegError::Truncated)?;
                    i += 1;
                    if run == EOB {
                        break;
                    }
                    pos += run as usize;
                    let v = zigzag_decode_u32(get_varint(data, &mut i)?);
                    if pos >= 64 {
                        return Err(JpegError::BadHeader);
                    }
                    coeffs[pos] = v;
                    pos += 1;
                }
                let mut block = [0f32; 64];
                for (k, &zz) in ZIGZAG.iter().enumerate() {
                    block[zz] = (coeffs[k] * table[zz]) as f32;
                }
                idct(&mut block);
                for y in 0..8u32 {
                    for x in 0..8u32 {
                        let px = bx * 8 + x;
                        let py = by * 8 + y;
                        if px >= width || py >= height {
                            continue;
                        }
                        let idx = ((py * width + px) * 4) as usize + channel;
                        rgba[idx] = (block[(y * 8 + x) as usize] + 128.0).clamp(0.0, 255.0) as u8;
                    }
                }
            }
        }
    }
    Ok((width, height, rgba))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::psnr;

    fn gradient(width: u32, height: u32) -> Vec<u8> {
        let mut rgba = Vec::with_capacity((width * height * 4) as usize);
        for y in 0..height {
            for x in 0..width {
                rgba.push((x * 255 / width.max(1)) as u8);
                rgba.push((y * 255 / height.max(1)) as u8);
                rgba.push(128);
                rgba.push(255);
            }
        }
        rgba
    }

    #[test]
    fn flat_image_compresses_massively_and_exactly() {
        let rgba = vec![100u8; 64 * 64 * 4]
            .iter()
            .enumerate()
            .map(|(i, _)| if i % 4 == 3 { 255 } else { 100 })
            .collect::<Vec<u8>>();
        let data = compress(64, 64, &rgba, 90);
        assert!(
            data.len() < rgba.len() / 20,
            "flat tile: {} -> {}",
            rgba.len(),
            data.len()
        );
        let (w, h, back) = decompress(&data).unwrap();
        assert_eq!((w, h), (64, 64));
        let p = psnr(&rgba, &back);
        assert!(p > 40.0, "psnr {p}");
    }

    #[test]
    fn gradient_survives_at_high_quality() {
        let rgba = gradient(48, 32);
        let data = compress(48, 32, &rgba, 95);
        let (_, _, back) = decompress(&data).unwrap();
        let p = psnr(&rgba, &back);
        assert!(p > 30.0, "psnr {p}");
        assert!(data.len() < rgba.len());
    }

    #[test]
    fn lower_quality_is_smaller() {
        let rgba = gradient(64, 64);
        let hi = compress(64, 64, &rgba, 95);
        let lo = compress(64, 64, &rgba, 20);
        assert!(lo.len() < hi.len());
    }

    #[test]
    fn non_multiple_of_eight_dimensions() {
        let rgba = gradient(13, 9);
        let data = compress(13, 9, &rgba, 85);
        let (w, h, back) = decompress(&data).unwrap();
        assert_eq!((w, h), (13, 9));
        assert_eq!(back.len(), rgba.len());
        assert!(psnr(&rgba, &back) > 25.0);
    }

    #[test]
    fn one_pixel_image() {
        let rgba = vec![7, 77, 177, 255];
        let data = compress(1, 1, &rgba, 90);
        let (w, h, back) = decompress(&data).unwrap();
        assert_eq!((w, h), (1, 1));
        for c in 0..3 {
            assert!((back[c] as i32 - rgba[c] as i32).abs() < 12);
        }
    }

    #[test]
    fn truncated_data_is_an_error() {
        let rgba = gradient(16, 16);
        let data = compress(16, 16, &rgba, 80);
        assert_eq!(decompress(&data[..4]), Err(JpegError::Truncated));
        assert!(decompress(&data[..data.len() / 2]).is_err());
    }

    #[test]
    fn bad_header_is_rejected() {
        assert_eq!(
            decompress(&[0, 0, 0, 0, 50, EOB]),
            Err(JpegError::BadHeader)
        );
    }

    #[test]
    #[should_panic(expected = "rgba length mismatch")]
    fn wrong_buffer_length_panics() {
        let _ = compress(8, 8, &[0u8; 10], 80);
    }

    #[test]
    fn alpha_is_preserved_opaque() {
        let rgba = gradient(16, 16);
        let data = compress(16, 16, &rgba, 50);
        let (_, _, back) = decompress(&data).unwrap();
        assert!(back.iter().skip(3).step_by(4).all(|&a| a == 255));
    }
}
