//! Deterministic simulation suite for the pipelined multi-device
//! offload path (Section V-C dispatch, Section VI-B replication).
//!
//! A 12-scenario matrix — {1, 2, 4} service nodes × {clean, lossy}
//! channel × {fast, slow} device pool — each run twice from the same
//! seed. Every scenario must present frames strictly in order with no
//! gaps, drop nothing, keep the GL replicas bit-identical, and
//! reproduce byte-for-byte on the second run. Run with
//! `--test-threads=1` in CI to keep failure output readable; the
//! sessions themselves are pure simulations and share no state.

use gbooster::core::config::{ExecutionMode, OffloadConfig, SessionConfig};
use gbooster::core::session::{Session, SessionReport};
use gbooster::sim::device::DeviceSpec;
use gbooster::telemetry::names;
use gbooster::workload::games::GameTitle;

/// The service pool for a scenario: `fast` draws from the heterogeneous
/// high-end pool (Table I), `slow` is a homogeneous set of the weakest
/// service device.
fn pool(nodes: usize, fast: bool) -> Vec<DeviceSpec> {
    if fast {
        let all = [
            DeviceSpec::nvidia_shield(),
            DeviceSpec::dell_optiplex_9010(),
            DeviceSpec::dell_optiplex_9010(),
            DeviceSpec::dell_m4600(),
        ];
        all[..nodes].to_vec()
    } else {
        vec![DeviceSpec::minix_neo_u1(); nodes]
    }
}

fn scenario(nodes: usize, lossy: bool, fast: bool) -> SessionConfig {
    // Seed varies per scenario so no two share a random stream shape.
    let seed = 9_000 + (nodes as u64) * 100 + (lossy as u64) * 10 + (fast as u64);
    SessionConfig::builder(GameTitle::g2_modern_combat(), DeviceSpec::nexus5())
        .duration_secs(6)
        .seed(seed)
        .mode(ExecutionMode::Offloaded(OffloadConfig {
            service_devices: pool(nodes, fast),
            loss_scale: if lossy { 4.0 } else { 1.0 },
            ..OffloadConfig::default()
        }))
        .build()
}

/// The invariants every scenario must uphold, regardless of pool size,
/// loss, or device speed.
fn assert_invariants(report: &SessionReport, label: &str) {
    assert!(report.frames > 0, "{label}: session must present frames");

    // In-order presentation with no gaps: the trace log records frames
    // in display order, and seqs must be exactly 0..frames.
    let seqs: Vec<u64> = report.trace.frames().iter().map(|f| f.seq).collect();
    assert_eq!(
        seqs.len() as u64,
        report.frames,
        "{label}: one trace per frame"
    );
    for (i, &seq) in seqs.iter().enumerate() {
        assert_eq!(
            seq, i as u64,
            "{label}: presentation must be gapless and in order"
        );
    }

    // Zero dropped frames: every dispatched request was presented.
    assert_eq!(
        report.telemetry.counter(names::sched::REQUESTS),
        report.frames,
        "{label}: every dispatch must come back"
    );
    let per_node: u64 = report.per_device_requests.iter().sum();
    assert_eq!(
        per_node, report.frames,
        "{label}: per-node counts must cover all frames"
    );

    // Replication safety: all replicas bit-identical at session end.
    assert!(report.state_consistent, "{label}: GL replicas must agree");

    // No faults fired, no orphan spans: the pipeline is clean.
    assert!(report.flight.is_none(), "{label}: no fault should fire");
    assert_eq!(
        report.telemetry.counter(names::tracing::ORPHAN_SPANS),
        0,
        "{label}: every remote span must stitch"
    );
}

/// Two runs from the same config must be byte-identical: same frame
/// traces, same scheduling, same scalar outcomes.
fn assert_reproducible(a: &SessionReport, b: &SessionReport, label: &str) {
    assert_eq!(
        a.frame_trace_jsonl(),
        b.frame_trace_jsonl(),
        "{label}: frame traces must be byte-identical across runs"
    );
    assert_eq!(a.frames, b.frames, "{label}");
    assert_eq!(a.per_device_requests, b.per_device_requests, "{label}");
    assert_eq!(a.median_fps.to_bits(), b.median_fps.to_bits(), "{label}");
    assert_eq!(
        a.response_time_ms.to_bits(),
        b.response_time_ms.to_bits(),
        "{label}"
    );
    assert_eq!(a.uplink_bytes, b.uplink_bytes, "{label}");
    assert_eq!(a.downlink_bytes, b.downlink_bytes, "{label}");
}

fn run_matrix(nodes: usize) {
    for lossy in [false, true] {
        for fast in [false, true] {
            let label = format!(
                "{nodes} node(s), {} channel, {} pool",
                if lossy { "lossy" } else { "clean" },
                if fast { "fast" } else { "slow" }
            );
            let config = scenario(nodes, lossy, fast);
            let first = Session::run(&config);
            assert_invariants(&first, &label);
            assert_eq!(first.per_device_requests.len(), nodes, "{label}");
            let second = Session::run(&config);
            assert_reproducible(&first, &second, &label);
        }
    }
}

#[test]
fn single_device_scenarios_are_ordered_lossless_and_reproducible() {
    run_matrix(1);
}

#[test]
fn two_device_scenarios_are_ordered_lossless_and_reproducible() {
    run_matrix(2);
}

#[test]
fn four_device_scenarios_are_ordered_lossless_and_reproducible() {
    run_matrix(4);
}

/// With more than one node in a heterogeneous pool, the Eq. 4 scorer
/// must actually spread load — a pipeline that funnels everything to
/// one node isn't exercising multi-device dispatch at all.
#[test]
fn heterogeneous_pools_spread_load_across_nodes() {
    for nodes in [2usize, 4] {
        let report = Session::run(&scenario(nodes, false, true));
        let busy = report
            .per_device_requests
            .iter()
            .filter(|&&n| n > 0)
            .count();
        assert!(
            busy >= 2,
            "{nodes} nodes: expected ≥2 busy nodes, got counts {:?}",
            report.per_device_requests
        );
    }
}

/// A lossy channel costs time, never frames: the lossy run presents in
/// order just like the clean one, only slower end-to-end.
#[test]
fn loss_degrades_latency_not_delivery() {
    let clean = Session::run(&scenario(2, false, true));
    let lossy = Session::run(&scenario(2, true, true));
    assert!(lossy.response_time_ms > clean.response_time_ms);
    assert_eq!(
        lossy.telemetry.counter(names::sched::REQUESTS),
        lossy.frames,
        "loss must never drop a frame"
    );
}
