//! The lock-cheap metrics registry.
//!
//! A [`Registry`] is a cheaply clonable handle (an `Arc`) to a shared
//! set of named counters, gauges, and histograms. Instruments are
//! registered once under a `&'static str` name — the registration path
//! takes a mutex, but the returned handles are plain atomics, so the
//! hot path (increment a counter, record a latency) never locks.
//!
//! ```
//! use gbooster_telemetry::Registry;
//!
//! let reg = Registry::new();
//! let sent = reg.counter("net.datagrams");
//! sent.add(3);
//! assert_eq!(reg.snapshot().counter("net.datagrams"), 3);
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use gbooster_sim::time::{SimDuration, SimTime};

use crate::hist::{HistogramCore, HistogramSnapshot, WindowedHistogramCore};
use crate::report::TelemetrySnapshot;

/// A monotone event counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` events.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one event.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins float gauge (stored as `f64` bits).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A handle to a registered fixed-bucket histogram.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

impl Default for Histogram {
    fn default() -> Self {
        Self::detached()
    }
}

impl Histogram {
    /// Creates a histogram not tied to any registry (tests, scratch use).
    pub fn detached() -> Self {
        Histogram(Arc::new(HistogramCore::new()))
    }

    /// Records one raw sample.
    pub fn record(&self, v: u64) {
        self.0.record(v);
    }

    /// Records a sim-time duration in microseconds.
    pub fn record_duration(&self, d: SimDuration) {
        self.0.record(d.as_micros());
    }

    /// Records one raw sample carrying a trace-exemplar tag (a frame
    /// seq); the histogram remembers the tag of its worst tagged
    /// sample. See [`crate::hist::HistogramCore::record_tagged`].
    pub fn record_tagged(&self, v: u64, tag: u64) {
        self.0.record_tagged(v, tag);
    }

    /// Records a sim-time duration in microseconds, tagged with the
    /// frame seq that produced it.
    pub fn record_duration_tagged(&self, d: SimDuration, tag: u64) {
        self.0.record_tagged(d.as_micros(), tag);
    }

    /// Takes a point-in-time copy.
    pub fn snapshot(&self) -> crate::hist::HistogramSnapshot {
        self.0.snapshot()
    }

    /// Takes a point-in-time copy in sparse form (only the non-empty
    /// buckets) — what the TSDB scrape path stores.
    pub fn snapshot_sparse(&self) -> crate::hist::SparseHistogram {
        self.0.snapshot_sparse()
    }
}

/// A handle to a registered sliding-window histogram: a time-slotted
/// ring supporting "distribution over the last N ms" queries, consumed
/// by the SLO burn-rate evaluator ([`crate::slo`]). Recording takes the
/// instrument's own mutex — windowed streams are fed once per presented
/// frame, not per packet, so contention is a non-issue.
#[derive(Clone, Debug)]
pub struct WindowedHistogram(Arc<Mutex<WindowedHistogramCore>>);

impl WindowedHistogram {
    /// Creates a windowed histogram not tied to any registry.
    pub fn detached(slot_width: SimDuration, retain: usize) -> Self {
        WindowedHistogram(Arc::new(Mutex::new(WindowedHistogramCore::new(
            slot_width, retain,
        ))))
    }

    /// Records one sample observed at sim time `at`.
    pub fn record(&self, at: SimTime, v: u64) {
        self.0
            .lock()
            .expect("windowed histogram poisoned")
            .record(at, v);
    }

    /// Merged distribution of the samples in `(now − window, now]`, at
    /// slot granularity.
    pub fn window(&self, now: SimTime, window: SimDuration) -> HistogramSnapshot {
        self.0
            .lock()
            .expect("windowed histogram poisoned")
            .window(now, window)
    }

    /// The all-time merged view.
    pub fn merged(&self) -> HistogramSnapshot {
        self.0
            .lock()
            .expect("windowed histogram poisoned")
            .merged()
            .clone()
    }

    /// The all-time merged view in sparse form, skipping the dense
    /// clone [`WindowedHistogram::merged`] pays.
    pub fn merged_sparse(&self) -> crate::hist::SparseHistogram {
        self.0
            .lock()
            .expect("windowed histogram poisoned")
            .merged()
            .to_sparse()
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: Mutex<BTreeMap<&'static str, Counter>>,
    gauges: Mutex<BTreeMap<&'static str, Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, Histogram>>,
    windowed: Mutex<BTreeMap<&'static str, WindowedHistogram>>,
}

/// The shared metrics registry. Clones are handles to the same store.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use. Repeated calls with the same name share one counter.
    pub fn counter(&self, name: &'static str) -> Counter {
        self.inner
            .counters
            .lock()
            .expect("counter registry poisoned")
            .entry(name)
            .or_default()
            .clone()
    }

    /// Returns the gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        self.inner
            .gauges
            .lock()
            .expect("gauge registry poisoned")
            .entry(name)
            .or_default()
            .clone()
    }

    /// Returns the histogram registered under `name`, creating it on
    /// first use.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        self.inner
            .histograms
            .lock()
            .expect("histogram registry poisoned")
            .entry(name)
            .or_default()
            .clone()
    }

    /// Returns the sliding-window histogram registered under `name`,
    /// creating it with the given geometry on first use. Later calls
    /// with the same name share the first registration's geometry.
    pub fn windowed(
        &self,
        name: &'static str,
        slot_width: SimDuration,
        retain: usize,
    ) -> WindowedHistogram {
        self.inner
            .windowed
            .lock()
            .expect("windowed registry poisoned")
            .entry(name)
            .or_insert_with(|| WindowedHistogram::detached(slot_width, retain))
            .clone()
    }

    /// Takes a point-in-time copy of every registered instrument.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .expect("counter registry poisoned")
            .iter()
            .map(|(&k, v)| (k.to_string(), v.get()))
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .expect("gauge registry poisoned")
            .iter()
            .map(|(&k, v)| (k.to_string(), v.get()))
            .collect();
        let mut histograms: std::collections::BTreeMap<String, crate::hist::HistogramSnapshot> =
            self.inner
                .histograms
                .lock()
                .expect("histogram registry poisoned")
                .iter()
                .map(|(&k, v)| (k.to_string(), v.snapshot()))
                .collect();
        // Windowed streams contribute their all-time merged view, so
        // the end-of-session report and exporters see them alongside
        // the plain histograms (the rolling windows themselves are
        // query-time constructs, not snapshot state).
        for (&k, v) in self
            .inner
            .windowed
            .lock()
            .expect("windowed registry poisoned")
            .iter()
        {
            histograms.insert(k.to_string(), v.merged());
        }
        TelemetrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Streams every instrument straight into `db` at `at` under
    /// `labels` — the scrape-loop fast path. Ingesting via
    /// [`Registry::snapshot`] would materialize three `BTreeMap`s and
    /// re-own every metric name on every scrape; this walks the
    /// instruments in place (same iteration order, so the resulting
    /// series content is identical) and hands each histogram over in
    /// sparse form, never materializing a dense snapshot.
    pub fn scrape_into(
        &self,
        db: &mut crate::tsdb::Tsdb,
        at: gbooster_sim::time::SimTime,
        labels: &[(&str, &str)],
    ) {
        for (&k, v) in self
            .inner
            .counters
            .lock()
            .expect("counter registry poisoned")
            .iter()
        {
            #[allow(clippy::cast_precision_loss)]
            db.record(at, k, labels, v.get() as f64);
        }
        for (&k, v) in self
            .inner
            .gauges
            .lock()
            .expect("gauge registry poisoned")
            .iter()
        {
            db.record(at, k, labels, v.get());
        }
        for (&k, v) in self
            .inner
            .histograms
            .lock()
            .expect("histogram registry poisoned")
            .iter()
        {
            db.record_hist_sparse(at, k, labels, v.snapshot_sparse());
        }
        for (&k, v) in self
            .inner
            .windowed
            .lock()
            .expect("windowed registry poisoned")
            .iter()
        {
            db.record_hist_sparse(at, k, labels, v.merged_sparse());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_shares_the_instrument() {
        let reg = Registry::new();
        reg.counter("x").add(2);
        reg.counter("x").add(3);
        assert_eq!(reg.counter("x").get(), 5);
    }

    #[test]
    fn clones_share_the_store() {
        let reg = Registry::new();
        let other = reg.clone();
        other.gauge("g").set(0.25);
        assert_eq!(reg.gauge("g").get(), 0.25);
    }

    #[test]
    fn histogram_records_durations_in_micros() {
        let reg = Registry::new();
        let h = reg.histogram("lat");
        h.record_duration(SimDuration::from_millis(3));
        assert_eq!(h.snapshot().max(), 3000);
    }

    #[test]
    fn windowed_shares_geometry_and_surfaces_in_snapshots() {
        let reg = Registry::new();
        let w = reg.windowed("win.lat", SimDuration::from_millis(100), 8);
        w.record(SimTime::from_millis(50), 1_000);
        w.record(SimTime::from_millis(250), 3_000);
        // Same name → same instrument, later geometry ignored.
        let again = reg.windowed("win.lat", SimDuration::from_millis(1), 1);
        assert_eq!(again.merged().count(), 2);
        // Recent window sees only the newest sample.
        let recent = again.window(SimTime::from_millis(250), SimDuration::from_millis(100));
        assert_eq!(recent.count(), 1);
        assert_eq!(recent.max(), 3_000);
        // The merged view rides along in the registry snapshot.
        let snap = reg.snapshot();
        assert_eq!(snap.histogram("win.lat").map(|h| h.count()), Some(2));
    }

    #[test]
    fn snapshot_is_a_copy() {
        let reg = Registry::new();
        reg.counter("c").inc();
        let snap = reg.snapshot();
        reg.counter("c").inc();
        assert_eq!(snap.counter("c"), 1);
        assert_eq!(reg.snapshot().counter("c"), 2);
    }
}
