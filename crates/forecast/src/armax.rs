//! Online ARMAX(p,q,b) — Eq. 3 of the paper.
//!
//! ```text
//! X_t = ε_t + Σ φ_i·X_{t−i} + Σ θ_i·ε_{t−i} + Σ η_i·d_{t−i}
//! ```
//!
//! "The model enables us to model deterministic and stochastic parts of
//! the system independently. Thereby, we now can take some external inputs
//! of the system into consideration and achieve better prediction
//! performance." The exogenous inputs `d` are, per the paper's AIC
//! selection, touchstroke frequency (attribute 1) and per-frame texture
//! count (attribute 3).

use std::collections::VecDeque;

use crate::rls::Rls;

/// An online ARMAX(p, q, b) forecaster over `n_inputs` exogenous signals,
/// each contributing `b` lagged terms.
///
/// # Examples
///
/// ```
/// use gbooster_forecast::armax::ArmaxModel;
///
/// // Traffic that spikes exactly when touches spike is perfectly
/// // predictable from the exogenous input.
/// let mut model = ArmaxModel::new(1, 0, 1, 1);
/// for t in 0..600u32 {
///     let touch = if t % 10 == 0 { 5.0 } else { 0.0 };
///     let traffic = 2.0 + 4.0 * touch;
///     model.observe(traffic, &[touch]);
/// }
/// // With a current touch burst, predicted traffic jumps.
/// let quiet = model.forecast_next(&[0.0]);
/// let burst = model.forecast_next(&[5.0]);
/// assert!(burst > quiet + 10.0);
/// ```
#[derive(Clone, Debug)]
pub struct ArmaxModel {
    p: usize,
    q: usize,
    b: usize,
    n_inputs: usize,
    rls: Rls,
    y_hist: VecDeque<f64>,
    e_hist: VecDeque<f64>,
    /// Per-input exogenous history, most recent first. Index 0 of each
    /// deque is d_t (the *current* value supplied at forecast time is the
    /// candidate d_{t}; lags start at d_{t-0}).
    d_hist: Vec<VecDeque<f64>>,
}

impl ArmaxModel {
    /// Creates an ARMAX(p,q,b) model over `n_inputs` exogenous signals.
    ///
    /// # Panics
    ///
    /// Panics if all orders are zero or `b > 0 && n_inputs == 0`
    /// inconsistencies arise.
    pub fn new(p: usize, q: usize, b: usize, n_inputs: usize) -> Self {
        assert!(p + q + b * n_inputs > 0, "model needs at least one term");
        if b > 0 {
            assert!(n_inputs > 0, "b > 0 requires exogenous inputs");
        }
        ArmaxModel {
            p,
            q,
            b,
            n_inputs,
            rls: Rls::new(p + q + b * n_inputs + 1, 0.995),
            y_hist: VecDeque::new(),
            e_hist: VecDeque::new(),
            d_hist: vec![VecDeque::new(); n_inputs],
        }
    }

    /// Number of parameters (for AIC).
    pub fn param_count(&self) -> usize {
        self.p + self.q + self.b * self.n_inputs + 1
    }

    /// Number of exogenous inputs expected per observation.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Builds the regressor using `current_exo` as d_t and the stored
    /// history for deeper lags.
    fn regressor(&self, current_exo: &[f64]) -> Vec<f64> {
        let mut x = Vec::with_capacity(self.param_count());
        for i in 0..self.p {
            x.push(self.y_hist.get(i).copied().unwrap_or(0.0));
        }
        for i in 0..self.q {
            x.push(self.e_hist.get(i).copied().unwrap_or(0.0));
        }
        for (input, hist) in self.d_hist.iter().enumerate() {
            for lag in 0..self.b {
                let v = if lag == 0 {
                    current_exo[input]
                } else {
                    hist.get(lag - 1).copied().unwrap_or(0.0)
                };
                x.push(v);
            }
        }
        x.push(1.0);
        x
    }

    /// One-step-ahead forecast given current exogenous readings
    /// (the touch/texture values observable *now*, before the traffic
    /// they will cause materializes).
    ///
    /// # Panics
    ///
    /// Panics if `current_exo.len() != n_inputs`.
    pub fn forecast_next(&self, current_exo: &[f64]) -> f64 {
        assert_eq!(
            current_exo.len(),
            self.n_inputs,
            "exogenous input count mismatch"
        );
        self.rls.predict(&self.regressor(current_exo))
    }

    /// Feeds one observation with its exogenous readings; returns the
    /// one-step prediction error.
    ///
    /// # Panics
    ///
    /// Panics on non-finite values or a wrong exogenous count.
    pub fn observe(&mut self, y: f64, exo: &[f64]) -> f64 {
        assert_eq!(exo.len(), self.n_inputs, "exogenous input count mismatch");
        assert!(
            y.is_finite() && exo.iter().all(|v| v.is_finite()),
            "non-finite observation"
        );
        let x = self.regressor(exo);
        let err = self.rls.update(&x, y);
        self.y_hist.push_front(y);
        if self.y_hist.len() > self.p.max(1) {
            self.y_hist.pop_back();
        }
        self.e_hist.push_front(err);
        if self.e_hist.len() > self.q.max(1) {
            self.e_hist.pop_back();
        }
        for (hist, &d) in self.d_hist.iter_mut().zip(exo.iter()) {
            hist.push_front(d);
            if hist.len() > self.b.max(1) {
                hist.pop_back();
            }
        }
        err
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;

    /// Synthetic game traffic: an AR base load plus touch-driven bursts.
    fn traffic_with_bursts(seed: u64, len: usize) -> (Vec<f64>, Vec<f64>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut traffic = Vec::with_capacity(len);
        let mut touches = Vec::with_capacity(len);
        let mut base: f64 = 10.0;
        for _ in 0..len {
            let touch = if rng.gen_bool(0.1) {
                rng.gen_range(3.0..8.0)
            } else {
                0.0
            };
            base = 0.7 * base + 3.0 + rng.gen_range(-0.5..0.5);
            traffic.push(base + 4.0 * touch);
            touches.push(touch);
        }
        (traffic, touches)
    }

    #[test]
    fn exogenous_input_reduces_error_versus_arma() {
        use crate::arma::ArmaModel;
        let (traffic, touches) = traffic_with_bursts(5, 3000);
        let mut arma = ArmaModel::new(2, 1);
        let mut armax = ArmaxModel::new(2, 1, 1, 1);
        let mut arma_err = 0.0;
        let mut armax_err = 0.0;
        for t in 0..traffic.len() {
            if t > 500 {
                arma_err += (arma.forecast_next() - traffic[t]).abs();
                armax_err += (armax.forecast_next(&[touches[t]]) - traffic[t]).abs();
            }
            arma.observe(traffic[t]);
            armax.observe(traffic[t], &[touches[t]]);
        }
        assert!(
            armax_err < arma_err * 0.6,
            "ARMAX {armax_err:.1} should beat ARMA {arma_err:.1} substantially"
        );
    }

    #[test]
    fn forecast_reacts_to_current_exogenous_value() {
        let mut model = ArmaxModel::new(1, 0, 2, 1);
        for t in 0..800u32 {
            let touch = if t % 7 == 0 { 4.0 } else { 0.0 };
            model.observe(5.0 + 3.0 * touch, &[touch]);
        }
        assert!(model.forecast_next(&[4.0]) > model.forecast_next(&[0.0]) + 8.0);
    }

    #[test]
    fn multiple_inputs_are_used() {
        let mut model = ArmaxModel::new(1, 0, 1, 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        for _ in 0..1500 {
            let a: f64 = rng.gen_range(0.0..1.0);
            let b: f64 = rng.gen_range(0.0..1.0);
            model.observe(2.0 * a + 5.0 * b + 1.0, &[a, b]);
        }
        let only_a = model.forecast_next(&[1.0, 0.0]);
        let only_b = model.forecast_next(&[0.0, 1.0]);
        assert!(only_b > only_a, "input b has larger true weight");
    }

    #[test]
    #[should_panic(expected = "exogenous input count mismatch")]
    fn wrong_input_count_panics() {
        let mut model = ArmaxModel::new(1, 0, 1, 2);
        model.observe(1.0, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "at least one term")]
    fn empty_model_panics() {
        let _ = ArmaxModel::new(0, 0, 0, 0);
    }
}
