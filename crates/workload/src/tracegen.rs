//! Frame-trace synthesis: turning a genre profile into an OpenGL ES
//! command stream.
//!
//! Each generated frame reproduces the statistical structure the paper's
//! mechanisms depend on:
//!
//! * a **stable majority of commands** (static scenery re-drawn with
//!   identical parameters) — what the LRU command cache deduplicates;
//! * an **animated minority** (fresh transform uniforms every frame) —
//!   what still has to cross the network;
//! * **client-memory vertex pointers** on a subset of draws — what forces
//!   the deferred `glVertexAttribPointer` serialization of Section IV-B;
//! * **scene changes** coupled to touch bursts — the exogenous traffic
//!   surges the ARMAX predictor must foresee (Section V-B);
//! * a **workload hint** (complexity-weighted fill pixels) driving the
//!   GPU cost model, calibrated per genre.

use std::sync::Arc;

use gbooster_gles::command::{ClientMemory, ClientPtr, GlCommand, UniformValue, VertexSource};
use gbooster_gles::types::{
    AttribType, BufferId, BufferTarget, BufferUsage, PixelFormat, Primitive, ProgramId, ShaderId,
    ShaderKind, TextureId, TextureTarget, UniformLocation,
};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::genre::GenreProfile;
use crate::touch::TouchGenerator;

/// Size of the textures games stream in on scene changes.
const SCENE_TEXTURE_SIDE: u32 = 128;

/// One generated frame: the commands plus simulation hints.
#[derive(Clone, Debug)]
pub struct FrameTrace {
    /// The OpenGL ES commands of this frame, ending with `SwapBuffers`.
    pub commands: Vec<GlCommand>,
    /// Complexity-weighted fill pixels (divide by a GPU's fillrate for
    /// render time).
    pub effective_fill: u64,
    /// Raw shaded pixels (for encoder-throughput math).
    pub shaded_pixels: u64,
    /// Fraction of screen pixels that changed versus the previous frame.
    pub changed_pixel_ratio: f64,
    /// CPU giga-cycles of game logic behind this frame.
    pub cpu_gcycles: f64,
    /// Touch events observed during this frame's window.
    pub touches: u32,
    /// True if this frame is a scene change (texture burst, full redraw).
    pub scene_change: bool,
}

impl FrameTrace {
    /// Sum of the commands' estimated serialized payload sizes.
    pub fn payload_bytes(&self) -> usize {
        self.commands.iter().map(|c| c.payload_bytes()).sum()
    }

    /// Number of commands in the frame.
    pub fn command_count(&self) -> usize {
        self.commands.len()
    }
}

/// Generates a deterministic stream of [`FrameTrace`]s for one
/// application session.
///
/// # Examples
///
/// ```
/// use gbooster_workload::genre::GenreProfile;
/// use gbooster_workload::tracegen::TraceGenerator;
///
/// let mut gen = TraceGenerator::new(GenreProfile::puzzle(), 1.0, 640, 480, 7);
/// let setup = gen.setup_trace();
/// assert!(!setup.commands.is_empty());
/// let frame = gen.next_frame(1.0 / 60.0);
/// assert!(frame.commands.last().unwrap().is_swap());
/// ```
#[derive(Debug)]
pub struct TraceGenerator {
    profile: GenreProfile,
    intensity: f64,
    width: u32,
    height: u32,
    rng: StdRng,
    touch: TouchGenerator,
    memory: ClientMemory,
    /// Client-memory quad used by the deferred-pointer draws.
    quad_ptr: ClientPtr,
    /// Stable per-object transform uniforms (static scenery).
    static_mats: Vec<[f32; 16]>,
    frame_index: u64,
    next_texture_id: u32,
    scene_textures: Vec<TextureId>,
    frames_since_scene_change: u64,
    /// High-motion gameplay vs low-motion lulls (menus, cutscenes,
    /// aiming). Lulls shrink the frame delta and the touch rate — the
    /// quiet periods the Bluetooth/WiFi switching exploits (Section V-B).
    high_motion: bool,
}

impl TraceGenerator {
    /// Buffer object holding the shared quad vertex data.
    pub const QUAD_BUFFER: BufferId = BufferId(1);
    /// The linked program every frame uses.
    pub const PROGRAM: ProgramId = ProgramId(1);

    /// Creates a generator for a `width`×`height` session.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero or `intensity` is not positive.
    pub fn new(profile: GenreProfile, intensity: f64, width: u32, height: u32, seed: u64) -> Self {
        assert!(width > 0 && height > 0, "resolution must be non-empty");
        assert!(
            intensity.is_finite() && intensity > 0.0,
            "intensity must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut memory = ClientMemory::new();
        let quad_ptr = memory.alloc(Self::quad_bytes());
        let static_mats = (0..profile.draws_per_frame)
            .map(|_| {
                let mut m = [0f32; 16];
                for v in &mut m {
                    *v = rng.gen_range(-1.0..1.0);
                }
                m
            })
            .collect();
        let touch = TouchGenerator::new(profile.touch_rate_hz, seed ^ 0x5eed);
        TraceGenerator {
            profile,
            intensity,
            width,
            height,
            rng,
            touch,
            memory,
            quad_ptr,
            static_mats,
            frame_index: 0,
            next_texture_id: 100,
            scene_textures: Vec::new(),
            frames_since_scene_change: 0,
            high_motion: true,
        }
    }

    fn quad_bytes() -> Vec<u8> {
        // Two triangles covering the unit quad, 2 x f32 per vertex.
        let verts: [f32; 12] = [
            -1.0, -1.0, 1.0, -1.0, -1.0, 1.0, //
            1.0, -1.0, 1.0, 1.0, -1.0, 1.0,
        ];
        verts.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    /// The genre profile in use.
    pub fn profile(&self) -> &GenreProfile {
        &self.profile
    }

    /// The application's client memory (needed by the forwarder's
    /// deferred-pointer resolver and the local GL driver).
    pub fn client_memory(&self) -> &ClientMemory {
        &self.memory
    }

    /// Target resolution.
    pub fn resolution(&self) -> (u32, u32) {
        (self.width, self.height)
    }

    /// One-time context setup: shaders, program, quad buffer, initial
    /// texture set. Run through the system before the first frame.
    pub fn setup_trace(&mut self) -> FrameTrace {
        let mut commands = vec![
            GlCommand::CreateShader(ShaderId(1), ShaderKind::Vertex),
            GlCommand::ShaderSource {
                shader: ShaderId(1),
                source: "attribute vec2 pos; uniform mat4 mvp; void main() { \
                         gl_Position = mvp * vec4(pos, 0.0, 1.0); }"
                    .into(),
            },
            GlCommand::CompileShader(ShaderId(1)),
            GlCommand::CreateShader(ShaderId(2), ShaderKind::Fragment),
            GlCommand::ShaderSource {
                shader: ShaderId(2),
                source: "precision mediump float; uniform sampler2D tex; \
                         void main() { gl_FragColor = vec4(0.5); }"
                    .into(),
            },
            GlCommand::CompileShader(ShaderId(2)),
            GlCommand::CreateProgram(Self::PROGRAM),
            GlCommand::AttachShader {
                program: Self::PROGRAM,
                shader: ShaderId(1),
            },
            GlCommand::AttachShader {
                program: Self::PROGRAM,
                shader: ShaderId(2),
            },
            GlCommand::LinkProgram(Self::PROGRAM),
            GlCommand::UseProgram(Self::PROGRAM),
            GlCommand::GenBuffer(Self::QUAD_BUFFER),
            GlCommand::BindBuffer {
                target: BufferTarget::Array,
                buffer: Self::QUAD_BUFFER,
            },
            GlCommand::BufferData {
                target: BufferTarget::Array,
                data: Arc::new(Self::quad_bytes()),
                usage: BufferUsage::StaticDraw,
            },
            GlCommand::EnableVertexAttribArray(0),
            GlCommand::Viewport {
                x: 0,
                y: 0,
                width: self.width,
                height: self.height,
            },
        ];
        for _ in 0..self.profile.texture_count {
            let id = self.alloc_texture(&mut commands);
            self.scene_textures.push(id);
        }
        FrameTrace {
            commands,
            effective_fill: 0,
            shaded_pixels: 0,
            changed_pixel_ratio: 1.0,
            cpu_gcycles: self.profile.cpu_gcycles_per_frame,
            touches: 0,
            scene_change: true,
        }
    }

    fn alloc_texture(&mut self, commands: &mut Vec<GlCommand>) -> TextureId {
        let id = TextureId(self.next_texture_id);
        self.next_texture_id += 1;
        let bytes = (SCENE_TEXTURE_SIDE * SCENE_TEXTURE_SIDE * 4) as usize;
        // Game textures are structured content (gradients, flat regions,
        // dithering) rather than white noise — which is what makes the
        // LZ4 stage effective on asset uploads.
        let phase: u8 = self.rng.gen();
        let mut data = vec![0u8; bytes];
        for (i, b) in data.iter_mut().enumerate() {
            let x = (i / 4) % SCENE_TEXTURE_SIDE as usize;
            let y = (i / 4) / SCENE_TEXTURE_SIDE as usize;
            let base = ((x / 8 + y / 8) as u8).wrapping_mul(16).wrapping_add(phase);
            *b = base ^ (self.rng.gen::<u8>() & 0x01);
        }
        commands.push(GlCommand::GenTexture(id));
        commands.push(GlCommand::BindTexture {
            target: TextureTarget::Texture2D,
            texture: id,
        });
        commands.push(GlCommand::TexImage2D {
            target: TextureTarget::Texture2D,
            level: 0,
            format: PixelFormat::Rgba8,
            width: SCENE_TEXTURE_SIDE,
            height: SCENE_TEXTURE_SIDE,
            data: Arc::new(data),
        });
        id
    }

    /// Generates the next frame for a window of `dt_secs` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `dt_secs` is not positive and finite.
    pub fn next_frame(&mut self, dt_secs: f64) -> FrameTrace {
        assert!(
            dt_secs.is_finite() && dt_secs > 0.0,
            "frame window must be positive"
        );
        self.frame_index += 1;
        self.frames_since_scene_change += 1;
        // Motion phase transitions: ~8 s of action, ~4 s of lull.
        if self.high_motion {
            if self.rng.gen_bool(0.004) {
                self.high_motion = false;
            }
        } else if self.rng.gen_bool(0.008) {
            self.high_motion = true;
        }
        let raw_touches = self.touch.next_window(dt_secs);
        let touches = if self.high_motion {
            raw_touches
        } else {
            raw_touches / 3
        };

        // Scene changes couple to touch bursts: drastic input changes the
        // scene (the ARMAX exogenous story of Section V-B).
        let burst_boost = if self.touch.in_burst() { 6.0 } else { 1.0 };
        let scene_change = self.frames_since_scene_change > 30
            && self
                .rng
                .gen_bool((self.profile.scene_change_prob * burst_boost).min(1.0));

        let mut commands = Vec::with_capacity(self.profile.draws_per_frame as usize * 4 + 8);
        commands.push(GlCommand::UseProgram(Self::PROGRAM));

        if scene_change {
            self.frames_since_scene_change = 0;
            // Stream in a couple of new textures and retire old ones.
            for _ in 0..2 {
                let id = self.alloc_texture(&mut commands);
                if self.scene_textures.len() > self.profile.texture_count as usize {
                    let old = self.scene_textures.remove(0);
                    commands.push(GlCommand::DeleteTexture(old));
                }
                self.scene_textures.push(id);
            }
            // New static layout after the cut.
            for m in &mut self.static_mats {
                for v in m.iter_mut() {
                    *v = self.rng.gen_range(-1.0..1.0);
                }
            }
        } else if self.profile.texture_churn_bytes > 0 && self.frame_index.is_multiple_of(10) {
            // Background streaming (mip updates, atlas churn).
            let side = 32u32;
            let phase: u8 = self.rng.gen();
            let mut data = vec![0u8; (side * side * 4) as usize];
            for (i, b) in data.iter_mut().enumerate() {
                *b = ((i / 4) as u8).wrapping_add(phase) ^ (self.rng.gen::<u8>() & 0x01);
            }
            if let Some(&tex) = self.scene_textures.first() {
                commands.push(GlCommand::BindTexture {
                    target: TextureTarget::Texture2D,
                    texture: tex,
                });
                commands.push(GlCommand::TexSubImage2D {
                    target: TextureTarget::Texture2D,
                    level: 0,
                    x: 0,
                    y: 0,
                    width: side,
                    height: side,
                    format: PixelFormat::Rgba8,
                    data: Arc::new(data),
                });
            }
        }

        commands.push(GlCommand::clear_all());

        let animated_fraction = 1.0 - self.profile.command_redundancy;
        for i in 0..self.profile.draws_per_frame {
            let tex = self.scene_textures[i as usize % self.scene_textures.len()];
            commands.push(GlCommand::BindTexture {
                target: TextureTarget::Texture2D,
                texture: tex,
            });
            // Static scenery re-uses a bit-identical transform; animated
            // objects get a fresh matrix every frame.
            let position = (i as f64 + 0.5) / self.profile.draws_per_frame as f64;
            let animated = position < animated_fraction || scene_change;
            let mat = if animated {
                let mut m = self.static_mats[i as usize];
                m[12] = (self.frame_index as f32 * 0.07 + i as f32).sin();
                m[13] = (self.frame_index as f32 * 0.05 + i as f32).cos();
                m
            } else {
                self.static_mats[i as usize]
            };
            commands.push(GlCommand::Uniform {
                location: UniformLocation(0),
                value: UniformValue::Mat4(mat),
            });
            // Every fourth draw sources vertices from client memory,
            // exercising the deferred-pointer path; the rest use the
            // shared buffer object.
            let source = if i % 4 == 3 {
                VertexSource::ClientMemory(self.quad_ptr)
            } else {
                VertexSource::BufferOffset(0)
            };
            if i % 4 != 3 {
                commands.push(GlCommand::BindBuffer {
                    target: BufferTarget::Array,
                    buffer: Self::QUAD_BUFFER,
                });
            }
            commands.push(GlCommand::VertexAttribPointer {
                index: 0,
                size: 2,
                ty: AttribType::F32,
                normalized: false,
                stride: 0,
                source,
            });
            commands.push(GlCommand::DrawArrays {
                mode: Primitive::Triangles,
                first: 0,
                count: 6,
            });
        }
        commands.push(GlCommand::SwapBuffers);

        let changed = if scene_change {
            0.95
        } else {
            let motion_scale = if self.high_motion { 1.0 } else { 0.3 };
            (self.profile.changed_pixel_ratio * motion_scale * self.rng.gen_range(0.8..1.2))
                .min(1.0)
        };
        FrameTrace {
            commands,
            effective_fill: self
                .profile
                .effective_fill(self.width, self.height, self.intensity),
            shaded_pixels: self.profile.shaded_pixels(self.width, self.height),
            changed_pixel_ratio: changed,
            cpu_gcycles: self.profile.cpu_gcycles_per_frame
                * self.rng.gen_range(0.9..1.1)
                * self.intensity.sqrt(),
            touches,
            scene_change,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genre::Genre;
    use gbooster_gles::exec::{ExecMode, SoftGpu};

    fn generator(genre: Genre) -> TraceGenerator {
        TraceGenerator::new(GenreProfile::for_genre(genre), 1.0, 320, 240, 11)
    }

    #[test]
    fn setup_then_frames_execute_cleanly_on_a_soft_gpu() {
        let mut gen = generator(Genre::Action);
        let mut gpu = SoftGpu::new(320, 240, ExecMode::CostOnly);
        let setup = gen.setup_trace();
        for cmd in &setup.commands {
            gpu.execute_mem(cmd, Some(gen.client_memory()))
                .unwrap_or_else(|e| panic!("setup command failed: {e} ({cmd:?})"));
        }
        for _ in 0..30 {
            let frame = gen.next_frame(1.0 / 30.0);
            for cmd in &frame.commands {
                if cmd.is_swap() {
                    gpu.swap_buffers();
                } else {
                    gpu.execute_mem(cmd, Some(gen.client_memory()))
                        .unwrap_or_else(|e| panic!("frame command failed: {e} ({cmd:?})"));
                }
            }
        }
    }

    #[test]
    fn frames_end_with_swap_buffers() {
        let mut gen = generator(Genre::Puzzle);
        gen.setup_trace();
        for _ in 0..10 {
            let frame = gen.next_frame(1.0 / 60.0);
            assert!(frame.commands.last().unwrap().is_swap());
            assert_eq!(
                frame.commands.iter().filter(|c| c.is_swap()).count(),
                1,
                "exactly one swap per frame"
            );
        }
    }

    #[test]
    fn draw_count_matches_profile() {
        let mut gen = generator(Genre::RolePlaying);
        gen.setup_trace();
        let frame = gen.next_frame(1.0 / 30.0);
        let draws = frame.commands.iter().filter(|c| c.is_draw()).count();
        assert_eq!(draws, GenreProfile::role_playing().draws_per_frame as usize);
    }

    #[test]
    fn some_draws_use_client_memory_pointers() {
        let mut gen = generator(Genre::Action);
        gen.setup_trace();
        let frame = gen.next_frame(1.0 / 30.0);
        let unresolved = frame
            .commands
            .iter()
            .filter(|c| c.has_unresolved_pointer())
            .count();
        assert!(unresolved > 0, "deferred-pointer path must be exercised");
    }

    #[test]
    fn consecutive_frames_share_most_commands() {
        // The LRU-cache premise: consecutive frames are highly similar.
        let mut gen = generator(Genre::Puzzle);
        gen.setup_trace();
        let a = gen.next_frame(1.0 / 60.0);
        let b = gen.next_frame(1.0 / 60.0);
        let set_a: std::collections::HashSet<String> =
            a.commands.iter().map(|c| format!("{c:?}")).collect();
        let shared = b
            .commands
            .iter()
            .filter(|c| set_a.contains(&format!("{c:?}")))
            .count();
        let ratio = shared as f64 / b.commands.len() as f64;
        assert!(ratio > 0.7, "inter-frame command redundancy {ratio:.2}");
    }

    #[test]
    fn action_frames_are_less_redundant_than_puzzle() {
        let measure = |genre: Genre| {
            let mut gen = generator(genre);
            gen.setup_trace();
            let a = gen.next_frame(1.0 / 30.0);
            let b = gen.next_frame(1.0 / 30.0);
            let set_a: std::collections::HashSet<String> =
                a.commands.iter().map(|c| format!("{c:?}")).collect();
            b.commands
                .iter()
                .filter(|c| set_a.contains(&format!("{c:?}")))
                .count() as f64
                / b.commands.len() as f64
        };
        assert!(measure(Genre::Action) < measure(Genre::Puzzle));
    }

    #[test]
    fn scene_changes_eventually_occur_and_upload_textures() {
        let mut gen = generator(Genre::Action);
        gen.setup_trace();
        let mut saw_change = false;
        for _ in 0..2000 {
            let frame = gen.next_frame(1.0 / 30.0);
            if frame.scene_change {
                saw_change = true;
                assert!(frame.changed_pixel_ratio > 0.9);
                let uploads = frame
                    .commands
                    .iter()
                    .filter(|c| c.is_texture_upload())
                    .count();
                assert!(uploads >= 2, "scene change must stream textures");
                break;
            }
        }
        assert!(saw_change, "no scene change in 2000 frames");
    }

    #[test]
    fn workload_hints_match_profile_math() {
        let mut gen = generator(Genre::Action);
        gen.setup_trace();
        let frame = gen.next_frame(1.0 / 30.0);
        let expected = GenreProfile::action().effective_fill(320, 240, 1.0);
        assert_eq!(frame.effective_fill, expected);
        assert!(frame.cpu_gcycles > 0.0);
    }

    #[test]
    fn determinism_per_seed() {
        let mut a = TraceGenerator::new(GenreProfile::action(), 1.0, 320, 240, 5);
        let mut b = TraceGenerator::new(GenreProfile::action(), 1.0, 320, 240, 5);
        a.setup_trace();
        b.setup_trace();
        for _ in 0..20 {
            let fa = a.next_frame(1.0 / 30.0);
            let fb = b.next_frame(1.0 / 30.0);
            assert_eq!(fa.commands, fb.commands);
            assert_eq!(fa.touches, fb.touches);
        }
    }

    #[test]
    #[should_panic(expected = "frame window must be positive")]
    fn zero_dt_panics() {
        let mut gen = generator(Genre::Puzzle);
        gen.next_frame(0.0);
    }
}
