//! Fig. 1: GPU frequency/temperature trace of an LG G4 running GTA San
//! Andreas — 600 MHz for ~10 minutes, then a collapse to 100 MHz.

use gbooster_bench::{compare, header};
use gbooster_sim::device::DeviceSpec;
use gbooster_sim::gpu::GpuModel;
use gbooster_sim::time::SimDuration;

fn main() {
    header("Fig. 1: GPU frequency trace (LG G4, GTA San Andreas)");
    let g4 = DeviceSpec::lg_g4();
    let mut gpu = GpuModel::new(g4.gpu.clone());
    // GTA San Andreas saturates the GPU (Section II).
    let utilization = 1.0;
    let mut throttle_onset_s = None;
    println!("{:>8} {:>10} {:>10}", "t (s)", "freq MHz", "temp C");
    for s in 0..=1200u64 {
        gpu.step(SimDuration::from_secs(1), utilization);
        if s % 60 == 0 {
            println!(
                "{:>8} {:>10} {:>10.1}",
                s,
                gpu.current_freq_mhz(),
                gpu.temperature_c()
            );
        }
        if throttle_onset_s.is_none() && gpu.is_throttled() {
            throttle_onset_s = Some(s);
        }
    }
    let onset = throttle_onset_s.expect("the G4 must throttle under sustained load");
    println!();
    compare("initial frequency", "600 MHz", "600 MHz");
    compare(
        "throttled frequency",
        "100 MHz",
        &format!("{} MHz", gpu.current_freq_mhz()),
    );
    compare(
        "throttle onset",
        "~10 minutes",
        &format!("{:.1} minutes", onset as f64 / 60.0),
    );
    compare(
        "post-onset behaviour",
        "drops drastically, stays low",
        &format!("pinned at {} MHz through minute 20", gpu.current_freq_mhz()),
    );
    assert_eq!(gpu.current_freq_mhz(), 100);
}
