//! Deterministic random-number plumbing.
//!
//! Every stochastic element of the simulation (channel loss, workload
//! jitter, touch bursts) derives from a seeded [`rand::rngs::StdRng`], so
//! each experiment binary is reproducible bit-for-bit across runs.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a deterministic RNG from a 64-bit seed.
///
/// # Examples
///
/// ```
/// use rand::Rng;
///
/// let mut a = gbooster_sim::rng::seeded(42);
/// let mut b = gbooster_sim::rng::seeded(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child RNG for a named subsystem, so that adding randomness in
/// one subsystem does not perturb another's stream.
///
/// # Examples
///
/// ```
/// use rand::Rng;
///
/// let mut net = gbooster_sim::rng::derived(7, "net");
/// let mut workload = gbooster_sim::rng::derived(7, "workload");
/// // Different labels yield independent streams.
/// let (a, b): (u64, u64) = (net.gen(), workload.gen());
/// assert_ne!(a, b);
/// ```
pub fn derived(seed: u64, label: &str) -> StdRng {
    // FNV-1a over the label, mixed with the master seed.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in label.bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(seed ^ h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded(1);
        let mut b = seeded(1);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn derived_streams_are_label_dependent_and_stable() {
        let mut x1 = derived(9, "alpha");
        let mut x2 = derived(9, "alpha");
        let mut y = derived(9, "beta");
        let a1: u64 = x1.gen();
        let a2: u64 = x2.gen();
        let b: u64 = y.gen();
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }
}
