//! Metric-name audit: every counter/gauge/histogram name emitted as a
//! string literal anywhere in the workspace's library code must be
//! declared in `crates/telemetry/src/names.rs`. Production code goes
//! through the `names::` constants; this grep-based sweep catches the
//! ad-hoc literal that would silently fork the namespace.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

/// Collects every `.rs` file under `dir`, recursively.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(dir).expect("read src dir") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// The set of metric-name values declared in names.rs: every string
/// literal assigned to a `pub const`.
fn declared_names(names_rs: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for line in names_rs.lines() {
        let line = line.trim();
        if !line.starts_with("pub const") {
            continue;
        }
        let mut rest = line;
        while let Some(start) = rest.find('"') {
            let tail = &rest[start + 1..];
            let Some(end) = tail.find('"') else { break };
            out.insert(tail[..end].to_string());
            rest = &tail[end + 1..];
        }
    }
    out
}

/// Extracts the string-literal argument of `.counter("…")`-style calls
/// on `line`, for each of the four registration methods.
fn literal_registrations(line: &str) -> Vec<String> {
    let mut found = Vec::new();
    for method in [".counter(\"", ".gauge(\"", ".histogram(\"", ".windowed(\""] {
        let mut rest = line;
        while let Some(pos) = rest.find(method) {
            let tail = &rest[pos + method.len()..];
            if let Some(end) = tail.find('"') {
                found.push(tail[..end].to_string());
            }
            rest = &rest[pos + method.len()..];
        }
    }
    found
}

#[test]
fn every_emitted_metric_name_is_declared() {
    let repo = Path::new(env!("CARGO_MANIFEST_DIR"));
    let names_rs =
        fs::read_to_string(repo.join("crates/telemetry/src/names.rs")).expect("read names.rs");
    let declared = declared_names(&names_rs);
    assert!(
        declared.len() > 50,
        "names.rs parse looks broken: only {} names found",
        declared.len()
    );

    let mut files = Vec::new();
    for entry in fs::read_dir(repo.join("crates")).expect("read crates/") {
        let src = entry.expect("crate dir").path().join("src");
        if src.is_dir() {
            rust_files(&src, &mut files);
        }
    }
    assert!(files.len() > 20, "workspace sweep found too few files");

    let mut violations = Vec::new();
    for file in &files {
        let text = fs::read_to_string(file).expect("read source file");
        for (lineno, line) in text.lines().enumerate() {
            // Unit-test modules sit at the bottom of each file; names
            // minted inside them never reach a production registry.
            if line.trim_start().starts_with("#[cfg(test)]") {
                break;
            }
            // Strip `//` comments (covers `///` and `//!` too).
            let code = line.split("//").next().unwrap_or("");
            for name in literal_registrations(code) {
                if !declared.contains(&name) {
                    violations.push(format!(
                        "{}:{}: metric name {name:?} is not declared in names.rs",
                        file.display(),
                        lineno + 1
                    ));
                }
            }
        }
    }
    assert!(
        violations.is_empty(),
        "undeclared metric names:\n{}",
        violations.join("\n")
    );
}

#[test]
fn observability_names_are_declared_and_consistent() {
    // The tail-sampling and TSDB metric families ship through the
    // `names::` constants; pin both the constant values (exposition
    // stability) and their presence in the parsed declaration set.
    use gbooster::telemetry::names;
    let repo = Path::new(env!("CARGO_MANIFEST_DIR"));
    let names_rs =
        fs::read_to_string(repo.join("crates/telemetry/src/names.rs")).expect("read names.rs");
    let declared = declared_names(&names_rs);
    for (constant, value) in [
        (names::tracing::SAMPLED_KEPT, "trace.sampled_kept"),
        (names::tracing::SAMPLED_DROPPED, "trace.sampled_dropped"),
        (names::tracing::BUDGET_EVICTIONS, "trace.budget_evictions"),
        (names::tracing::CLOCK_OFFSET_MS, "trace.clock_offset_ms"),
        (
            names::tracing::SAMPLING_OVERHEAD_PCT,
            "trace.sampling_overhead_pct",
        ),
        (names::tsdb::SERIES, "tsdb.series"),
        (names::tsdb::SAMPLES, "tsdb.samples"),
        (names::tsdb::POINTS_EVICTED, "tsdb.points_evicted"),
    ] {
        assert_eq!(constant, value, "renaming breaks dashboards and goldens");
        assert!(declared.contains(value), "{value} missing from names.rs");
    }
}

#[test]
fn audit_helpers_catch_a_planted_violation() {
    let declared = declared_names("pub const GOOD: &str = \"net.good\";");
    assert_eq!(declared.len(), 1);
    let hits = literal_registrations("registry.counter(\"net.bad\").inc();");
    assert_eq!(hits, vec!["net.bad".to_string()]);
    assert!(!declared.contains(&hits[0]));
    // Windowed-stream registrations are swept like the other three.
    let hits = literal_registrations("registry.windowed(\"win.bad\", slot, 64);");
    assert_eq!(hits, vec!["win.bad".to_string()]);
    // Comment-stripping keeps doc examples out of the sweep.
    let line = "// registry.counter(\"net.doc_example\")";
    assert!(literal_registrations(line.split("//").next().unwrap_or("")).is_empty());
}
