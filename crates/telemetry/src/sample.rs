//! Tail-sampled retention of per-frame trace trees.
//!
//! Tracing every frame of a 256-session fabric is exactly the
//! fleet-scale cost problem tail sampling exists for: the verdict runs
//! at frame *retirement*, when the frame's fate is known, and keeps
//! only the traces an operator would actually open — SLO-violating
//! frames, frames presented inside an open incident window, frames
//! that crossed a migration cutover, and a deterministic 1-in-N head
//! sample for baseline context. Everything else is counted and
//! discarded.
//!
//! Retention is bounded per tenant by a byte budget over the
//! serialized trace lines. When a tenant exceeds its budget the
//! *oldest kept* trace is evicted first — except the tenant's
//! worst-latency kept trace, which is pinned so the trace-id exemplars
//! the latency histograms carry (see
//! [`crate::hist::HistogramCore::record_tagged`]) always resolve to a
//! retained trace. Every decision is a pure function of the offered
//! sequence, so two identical runs retain byte-identical sets.

use std::collections::{BTreeMap, VecDeque};

use crate::trace::FrameTrace;

/// Default deterministic head-sample interval: keep 1 frame in 16
/// regardless of verdict.
pub const DEFAULT_HEAD_INTERVAL: u64 = 16;

/// Default per-tenant budget over serialized trace bytes. Generous
/// enough that, at fabric frame rates, must-keep traces are never
/// evicted in the chaos scenarios; small enough to bound a 256-tenant
/// run to tens of megabytes.
pub const DEFAULT_TENANT_BUDGET_BYTES: u64 = 256 * 1024;

/// Builds the fabric trace id: the session id in the high 32 bits, the
/// frame seq in the low 32. Fits histogram exemplar tags (`u64`), and
/// both halves stay recoverable for display.
#[must_use]
pub fn trace_id(session_id: u64, seq: u64) -> u64 {
    (session_id << 32) | (seq & 0xffff_ffff)
}

/// Why the tail sampler retained a frame, in precedence order: a frame
/// matching several criteria is labelled with the highest one.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum KeepReason {
    /// End-to-end latency exceeded the tenant's SLO.
    SloViolation,
    /// Presented while a pool incident window was open.
    Incident,
    /// In flight or presented across a migration cutover.
    Migration,
    /// The deterministic 1-in-N baseline sample (`seq % N == 0`).
    HeadSample,
}

impl KeepReason {
    /// The serialized tag.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            KeepReason::SloViolation => "slo_violation",
            KeepReason::Incident => "incident",
            KeepReason::Migration => "migration",
            KeepReason::HeadSample => "head_sample",
        }
    }
}

/// The facts about one retired frame that the tail verdict weighs.
#[derive(Clone, Copy, Debug, Default)]
pub struct FrameVerdict {
    /// End-to-end latency exceeded the tenant's SLO.
    pub slo_violation: bool,
    /// An incident window (node loss, degrade, drain…) was open at
    /// presentation.
    pub in_incident: bool,
    /// The tenant was mid-migration, or a cutover landed between issue
    /// and presentation.
    pub migration: bool,
}

/// One retained frame trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeptTrace {
    /// Owning tenant.
    pub tenant: u32,
    /// `(session_id << 32) | seq` — the exemplar tag on the latency
    /// histograms.
    pub trace_id: u64,
    /// Frame sequence within the tenant.
    pub seq: u64,
    /// Highest-precedence keep criterion the frame matched.
    pub reason: KeepReason,
    /// End-to-end latency in µs (the tail verdict's input).
    pub latency_us: u64,
    /// Serialized size in bytes — the unit the budget is enforced in.
    pub bytes: u64,
    /// The serialized JSONL line (no trailing newline).
    pub line: String,
}

/// Per-tenant retention state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct TenantTraces {
    /// Kept traces, oldest first.
    entries: VecDeque<KeptTrace>,
    /// Sum of `entries[*].bytes`, maintained ≤ the budget.
    bytes: u64,
    /// `(latency_us, trace_id)` of the pinned worst kept trace. The
    /// update rule is `latency >= worst` — identical to
    /// [`crate::hist::HistogramCore::record_tagged`], so the pin always
    /// names the same frame as the histogram exemplar.
    worst: Option<(u64, u64)>,
}

/// The deterministic tail sampler. One per fabric run; feeds from
/// frame retirement, answers for the retained set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TailSampler {
    head_interval: u64,
    tenant_budget_bytes: u64,
    tenants: BTreeMap<u32, TenantTraces>,
    kept: u64,
    dropped: u64,
    evictions: u64,
}

impl TailSampler {
    /// Creates a sampler keeping a 1-in-`head_interval` baseline sample
    /// (`0` disables head sampling) under a per-tenant byte budget.
    #[must_use]
    pub fn new(head_interval: u64, tenant_budget_bytes: u64) -> Self {
        TailSampler {
            head_interval,
            tenant_budget_bytes,
            tenants: BTreeMap::new(),
            kept: 0,
            dropped: 0,
            evictions: 0,
        }
    }

    /// The configured per-tenant budget in bytes.
    #[must_use]
    pub fn tenant_budget_bytes(&self) -> u64 {
        self.tenant_budget_bytes
    }

    /// Runs the tail verdict on one retired frame. Returns the keep
    /// reason when the trace was retained — the caller should then tag
    /// the frame's latency samples with `trace_id` — or `None` when it
    /// was discarded (counted in [`TailSampler::dropped`]).
    pub fn offer(
        &mut self,
        tenant: u32,
        seq: u64,
        trace_id: u64,
        latency_us: u64,
        verdict: FrameVerdict,
        trace: &FrameTrace,
    ) -> Option<KeepReason> {
        self.offer_with(tenant, seq, trace_id, latency_us, verdict, |out, reason| {
            serialize_into(out, tenant, trace_id, reason, trace);
        })
    }

    /// Like [`TailSampler::offer`], but the trace is produced lazily:
    /// `serialize` runs only after the verdict decides to keep the
    /// frame. The fabric's hot retirement path uses this so the ~15/16
    /// of healthy frames the head sample discards never pay for span
    /// tree construction or serialization.
    pub fn offer_with(
        &mut self,
        tenant: u32,
        seq: u64,
        trace_id: u64,
        latency_us: u64,
        verdict: FrameVerdict,
        serialize: impl FnOnce(&mut String, KeepReason),
    ) -> Option<KeepReason> {
        let reason = if verdict.slo_violation {
            KeepReason::SloViolation
        } else if verdict.in_incident {
            KeepReason::Incident
        } else if verdict.migration {
            KeepReason::Migration
        } else if self.head_interval > 0 && seq.is_multiple_of(self.head_interval) {
            KeepReason::HeadSample
        } else {
            self.dropped += 1;
            return None;
        };
        let mut line = String::with_capacity(128);
        serialize(&mut line, reason);
        let bytes = line.len() as u64;
        if bytes > self.tenant_budget_bytes {
            // One line wider than the whole budget can never be
            // retained without breaking the budget invariant.
            self.dropped += 1;
            return None;
        }
        let t = self.tenants.entry(tenant).or_default();
        if t.worst.is_none_or(|(lat, _)| latency_us >= lat) {
            t.worst = Some((latency_us, trace_id));
        }
        t.entries.push_back(KeptTrace {
            tenant,
            trace_id,
            seq,
            reason,
            latency_us,
            bytes,
            line,
        });
        t.bytes += bytes;
        self.kept += 1;
        // Oldest-kept eviction down to the budget, skipping the pinned
        // worst trace so exemplars keep resolving. At most one entry is
        // pinned, and every entry fits the budget alone, so the loop
        // always terminates within budget.
        while t.bytes > self.tenant_budget_bytes {
            let pinned = t.worst.map(|(_, id)| id);
            let victim = t
                .entries
                .iter()
                .position(|e| Some(e.trace_id) != pinned)
                .expect("a tenant over budget holds a non-pinned entry");
            let evicted = t.entries.remove(victim).expect("victim index in bounds");
            t.bytes -= evicted.bytes;
            self.evictions += 1;
        }
        Some(reason)
    }

    /// Traces accepted by the verdict (including any later evicted for
    /// budget).
    #[must_use]
    pub fn kept(&self) -> u64 {
        self.kept
    }

    /// Traces the verdict discarded outright.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Kept traces later evicted to enforce a tenant budget.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Currently retained traces, ordered by tenant then retention
    /// order (oldest first).
    pub fn retained(&self) -> impl Iterator<Item = &KeptTrace> {
        self.tenants.values().flat_map(|t| t.entries.iter())
    }

    /// Retained trace count.
    #[must_use]
    pub fn retained_count(&self) -> usize {
        self.tenants.values().map(|t| t.entries.len()).sum()
    }

    /// Whether `trace_id` is currently retained.
    #[must_use]
    pub fn is_retained(&self, trace_id: u64) -> bool {
        self.retained().any(|e| e.trace_id == trace_id)
    }

    /// Bytes currently retained for `tenant` (always ≤ the budget).
    #[must_use]
    pub fn tenant_bytes(&self, tenant: u32) -> u64 {
        self.tenants.get(&tenant).map_or(0, |t| t.bytes)
    }

    /// The retained set as JSON Lines, in [`TailSampler::retained`]
    /// order — the byte string the double-run identity tests compare.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.retained() {
            out.push_str(&e.line);
            out.push('\n');
        }
        out
    }
}

/// One retained trace as a deterministic JSONL line (test reference
/// for the streaming [`serialize_into`] the hot path uses).
#[cfg(test)]
fn serialize_line(tenant: u32, trace_id: u64, reason: KeepReason, trace: &FrameTrace) -> String {
    let mut out = String::with_capacity(128);
    serialize_into(&mut out, tenant, trace_id, reason, trace);
    out
}

/// Writes the deterministic JSONL form of one retained trace.
pub fn serialize_into(
    out: &mut String,
    tenant: u32,
    trace_id: u64,
    reason: KeepReason,
    trace: &FrameTrace,
) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "{{\"tenant\":{tenant},\"trace_id\":{trace_id},\"seq\":{},\"reason\":\"{}\",\"span\":",
        trace.seq,
        reason.as_str()
    );
    trace.root.write_json(out);
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::stage;
    use crate::trace::SpanNode;
    use gbooster_sim::time::SimTime;

    fn frame(seq: u64) -> FrameTrace {
        let t = |us: u64| SimTime::from_micros(us);
        let mut root = SpanNode::new(stage::FRAME, t(seq * 1_000), t(seq * 1_000 + 900));
        root.stage(stage::DISPATCH_WAIT, t(seq * 1_000), t(seq * 1_000 + 100));
        FrameTrace { seq, root }
    }

    #[test]
    fn verdict_precedence_and_head_sampling() {
        let mut s = TailSampler::new(4, u64::MAX);
        let all = FrameVerdict {
            slo_violation: true,
            in_incident: true,
            migration: true,
        };
        assert_eq!(
            s.offer(0, 1, trace_id(1, 1), 500, all, &frame(1)),
            Some(KeepReason::SloViolation)
        );
        let incident = FrameVerdict {
            in_incident: true,
            ..FrameVerdict::default()
        };
        assert_eq!(
            s.offer(0, 2, trace_id(1, 2), 10, incident, &frame(2)),
            Some(KeepReason::Incident)
        );
        // seq 4 is the head sample at interval 4; seq 3 is dropped.
        assert_eq!(
            s.offer(0, 3, trace_id(1, 3), 10, FrameVerdict::default(), &frame(3)),
            None
        );
        assert_eq!(
            s.offer(0, 4, trace_id(1, 4), 10, FrameVerdict::default(), &frame(4)),
            Some(KeepReason::HeadSample)
        );
        assert_eq!(s.kept(), 3);
        assert_eq!(s.dropped(), 1);
        assert_eq!(s.evictions(), 0);
        assert_eq!(s.retained_count(), 3);
    }

    #[test]
    fn budget_evicts_oldest_but_pins_the_worst() {
        // Budget fits roughly two lines; the worst-latency trace must
        // survive while older cheap ones rotate out.
        let line_len =
            serialize_line(0, trace_id(1, 0), KeepReason::SloViolation, &frame(0)).len() as u64;
        let mut s = TailSampler::new(0, line_len * 2 + 8);
        let slo = FrameVerdict {
            slo_violation: true,
            ..FrameVerdict::default()
        };
        // Worst latency arrives first.
        s.offer(0, 0, trace_id(1, 0), 9_999, slo, &frame(0));
        for seq in 1..6u64 {
            s.offer(0, seq, trace_id(1, seq), 100 + seq, slo, &frame(seq));
        }
        assert!(s.tenant_bytes(0) <= s.tenant_budget_bytes());
        assert!(s.is_retained(trace_id(1, 0)), "worst trace evicted");
        assert_eq!(s.evictions(), 4);
        let ids: Vec<u64> = s.retained().map(|e| e.trace_id).collect();
        assert_eq!(ids, vec![trace_id(1, 0), trace_id(1, 5)]);
    }

    #[test]
    fn oversized_lines_are_dropped_not_kept() {
        let mut s = TailSampler::new(1, 8);
        let slo = FrameVerdict {
            slo_violation: true,
            ..FrameVerdict::default()
        };
        assert_eq!(s.offer(0, 0, trace_id(1, 0), 1, slo, &frame(0)), None);
        assert_eq!(s.dropped(), 1);
        assert_eq!(s.retained_count(), 0);
    }

    #[test]
    fn jsonl_is_deterministic_and_ordered_by_tenant() {
        let mut a = TailSampler::new(1, u64::MAX);
        let mut b = TailSampler::new(1, u64::MAX);
        for s in [&mut a, &mut b] {
            for tenant in [1u32, 0] {
                for seq in 0..3u64 {
                    s.offer(
                        tenant,
                        seq,
                        trace_id(u64::from(tenant) + 1, seq),
                        10,
                        FrameVerdict::default(),
                        &frame(seq),
                    );
                }
            }
        }
        assert_eq!(a.to_jsonl(), b.to_jsonl());
        assert_eq!(a, b);
        let jsonl = a.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 6);
        assert!(lines[0].starts_with("{\"tenant\":0,"));
        assert!(lines[3].starts_with("{\"tenant\":1,"));
    }
}
