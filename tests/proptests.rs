//! Property-based tests on the core data structures and invariants.

use std::sync::Arc;

use gbooster::codec::lru::CommandCache;
use gbooster::codec::turbo::{TurboDecoder, TurboEncoder};
use gbooster::codec::{jpeg, lz4};
use gbooster::core::scheduler::{Dispatcher, ReorderBuffer, ServiceNode};
use gbooster::gles::command::{GlCommand, UniformValue, VertexSource};
use gbooster::gles::serialize::{decode_command, decode_stream, encode_command, encode_stream};
use gbooster::gles::state::GlContext;
use gbooster::gles::types::{
    AttribType, BlendFactor, BufferId, BufferTarget, BufferUsage, Capability, ClearMask, IndexType,
    PixelFormat, Primitive, ProgramId, ShaderId, ShaderKind, TextureId, TextureTarget,
    UniformLocation,
};
use gbooster::net::channel::ChannelModel;
use gbooster::net::rudp::{simulate_transfer, RudpConfig};
use gbooster::sim::device::DeviceSpec;
use gbooster::sim::display::FpsRecorder;
use gbooster::sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

fn arb_primitive() -> impl Strategy<Value = Primitive> {
    prop_oneof![
        Just(Primitive::Points),
        Just(Primitive::Lines),
        Just(Primitive::Triangles),
        Just(Primitive::TriangleStrip),
        Just(Primitive::TriangleFan),
    ]
}

fn arb_uniform() -> impl Strategy<Value = UniformValue> {
    prop_oneof![
        any::<f32>().prop_map(UniformValue::F1),
        any::<[f32; 2]>().prop_map(UniformValue::F2),
        any::<[f32; 3]>().prop_map(UniformValue::F3),
        any::<[f32; 4]>().prop_map(UniformValue::F4),
        any::<i32>().prop_map(UniformValue::I1),
        prop::array::uniform16(any::<f32>()).prop_map(UniformValue::Mat4),
    ]
}

/// Arbitrary *serializable* commands (no unresolved client pointers).
fn arb_command() -> impl Strategy<Value = GlCommand> {
    prop_oneof![
        any::<u32>().prop_map(|v| GlCommand::GenTexture(TextureId(v))),
        any::<u32>().prop_map(|v| GlCommand::DeleteBuffer(BufferId(v))),
        any::<u32>().prop_map(|v| GlCommand::UseProgram(ProgramId(v))),
        (any::<u32>(), any::<bool>()).prop_map(|(id, vertex)| GlCommand::CreateShader(
            ShaderId(id),
            if vertex {
                ShaderKind::Vertex
            } else {
                ShaderKind::Fragment
            }
        )),
        "[ -~]{0,64}".prop_map(|source| GlCommand::ShaderSource {
            shader: ShaderId(1),
            source,
        }),
        (any::<bool>(), prop::collection::vec(any::<u8>(), 0..256)).prop_map(|(elem, data)| {
            GlCommand::BufferData {
                target: if elem {
                    BufferTarget::ElementArray
                } else {
                    BufferTarget::Array
                },
                data: Arc::new(data),
                usage: BufferUsage::DynamicDraw,
            }
        }),
        (any::<u8>(), any::<u8>()).prop_map(|(w, h)| {
            let (w, h) = (w as u32 % 8 + 1, h as u32 % 8 + 1);
            GlCommand::TexImage2D {
                target: TextureTarget::Texture2D,
                level: 0,
                format: PixelFormat::Rgba8,
                width: w,
                height: h,
                data: Arc::new(vec![0xAB; (w * h * 4) as usize]),
            }
        }),
        (any::<f32>(), any::<f32>(), any::<f32>(), any::<f32>())
            .prop_map(|(r, g, b, a)| { GlCommand::ClearColor { r, g, b, a } }),
        (any::<u32>(), arb_uniform()).prop_map(|(loc, value)| GlCommand::Uniform {
            location: UniformLocation(loc),
            value,
        }),
        (arb_primitive(), any::<u16>(), 1u32..10_000).prop_map(|(mode, first, count)| {
            GlCommand::DrawArrays {
                mode,
                first: first as u32,
                count,
            }
        }),
        (0u32..16, 1u8..=4, any::<bool>(), any::<u32>()).prop_map(
            |(index, size, normalized, off)| GlCommand::VertexAttribPointer {
                index,
                size,
                ty: AttribType::F32,
                normalized,
                stride: 0,
                source: VertexSource::BufferOffset(off),
            }
        ),
        prop::collection::vec(any::<u8>(), 0..128).prop_map(|data| {
            GlCommand::VertexAttribPointer {
                index: 0,
                size: 2,
                ty: AttribType::I16,
                normalized: false,
                stride: 4,
                source: VertexSource::Materialized(Arc::new(data)),
            }
        }),
        (any::<bool>(), any::<bool>(), any::<bool>()).prop_map(|(color, depth, stencil)| {
            GlCommand::Clear(ClearMask {
                color,
                depth,
                stencil,
            })
        }),
        Just(GlCommand::Enable(Capability::Blend)),
        Just(GlCommand::BlendFunc {
            src: BlendFactor::SrcAlpha,
            dst: BlendFactor::OneMinusSrcAlpha,
        }),
        (1u32..1000, prop::collection::vec(any::<u8>(), 0..64)).prop_map(|(count, data)| {
            GlCommand::DrawElements {
                mode: Primitive::Triangles,
                count,
                index_type: IndexType::U16,
                indices: gbooster::gles::command::IndexSource::Inline(Arc::new(data)),
            }
        }),
        Just(GlCommand::SwapBuffers),
        Just(GlCommand::Finish),
    ]
}

fn bits_equal(a: &GlCommand, b: &GlCommand) -> bool {
    // Float fields must survive bit-exactly (NaN != NaN under PartialEq).
    format!("{a:?}") == format!("{b:?}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn wire_roundtrip_single_command(cmd in arb_command()) {
        let mut buf = Vec::new();
        encode_command(&cmd, &mut buf).unwrap();
        let (decoded, used) = decode_command(&buf).unwrap();
        prop_assert_eq!(used, buf.len());
        prop_assert!(bits_equal(&decoded, &cmd), "{:?} != {:?}", decoded, cmd);
    }

    #[test]
    fn wire_roundtrip_streams(cmds in prop::collection::vec(arb_command(), 0..40)) {
        let bytes = encode_stream(&cmds).unwrap();
        let decoded = decode_stream(&bytes).unwrap();
        prop_assert_eq!(decoded.len(), cmds.len());
        for (a, b) in decoded.iter().zip(cmds.iter()) {
            prop_assert!(bits_equal(a, b));
        }
    }

    #[test]
    fn wire_decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_stream(&bytes); // error or success, never a panic
    }

    /// The rejoin resync path (docs/RESILIENCE.md) hands a node a
    /// snapshot instead of the command history: for any command prefix,
    /// restoring the snapshot must reproduce the context bit-exactly —
    /// same state digest, same resident GPU memory.
    #[test]
    fn snapshot_restore_preserves_digest_and_residency(
        cmds in prop::collection::vec(arb_command(), 0..60)
    ) {
        let mut ctx = GlContext::new();
        for cmd in &cmds {
            // Arbitrary prefixes are not always valid GL: apply errors
            // are fine, panics are not.
            let _ = ctx.apply(cmd);
        }
        let snap = ctx.snapshot();
        let restored = GlContext::restore(&snap);
        prop_assert_eq!(restored.digest(), ctx.digest());
        prop_assert_eq!(restored.resident_bytes(), ctx.resident_bytes());
    }

    /// Live migration (docs/MIGRATION.md): checkpoint an in-flight
    /// session at an arbitrary cut point, restore on the destination,
    /// then keep applying the remaining stream to both sides — source
    /// and destination stay digest-identical after every command, and
    /// the delta snapshot never ships more than the full one.
    #[test]
    fn live_migration_checkpoint_stays_in_lockstep(
        prefix in prop::collection::vec(arb_command(), 0..40),
        suffix in prop::collection::vec(arb_command(), 0..40),
    ) {
        let mut src = GlContext::new();
        let baseline = src.snapshot();
        for cmd in &prefix {
            let _ = src.apply(cmd);
        }
        let snap = src.snapshot();
        prop_assert!(
            snap.delta_wire_bytes(&baseline) <= snap.wire_bytes(),
            "a delta against any base must not exceed the full snapshot"
        );
        let mut dst = GlContext::restore(&snap);
        prop_assert_eq!(dst.digest(), src.digest());
        for cmd in &suffix {
            let a = src.apply(cmd);
            let b = dst.apply(cmd);
            prop_assert_eq!(a.is_ok(), b.is_ok());
            prop_assert_eq!(dst.digest(), src.digest());
            prop_assert_eq!(dst.resident_bytes(), src.resident_bytes());
        }
    }

    #[test]
    fn lz4_roundtrip_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let compressed = lz4::compress(&data);
        let back = lz4::decompress(&compressed, data.len()).unwrap();
        prop_assert_eq!(back, data);
    }

    #[test]
    fn lz4_roundtrip_repetitive_bytes(
        unit in prop::collection::vec(any::<u8>(), 1..16),
        reps in 1usize..200,
    ) {
        let data: Vec<u8> = unit.iter().cycle().take(unit.len() * reps).copied().collect();
        let compressed = lz4::compress(&data);
        prop_assert_eq!(lz4::decompress(&compressed, data.len()).unwrap(), data);
    }

    #[test]
    fn lz4_decompress_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = lz4::decompress(&bytes, 1 << 16);
    }

    #[test]
    fn jpeg_stays_within_lossy_bounds(
        w in 1u32..40,
        h in 1u32..40,
        quality in 1u8..=100,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut rgba = vec![0u8; (w * h * 4) as usize];
        // Smooth content: lossy error must stay bounded.
        for (i, b) in rgba.iter_mut().enumerate() {
            let x = (i / 4) as u32 % w;
            *b = ((x * 4) as u8).wrapping_add(rng.gen::<u8>() & 1);
        }
        let data = jpeg::compress(w, h, &rgba, quality);
        let (dw, dh, back) = jpeg::decompress(&data).unwrap();
        prop_assert_eq!((dw, dh), (w, h));
        prop_assert_eq!(back.len(), rgba.len());
    }

    #[test]
    fn turbo_roundtrip_reconstructs(
        w in 17u32..70,
        h in 17u32..70,
        frames in 1usize..6,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut enc = TurboEncoder::new(w, h, 90);
        let mut dec = TurboDecoder::new(w, h);
        let mut frame = vec![100u8; (w * h * 4) as usize];
        for _ in 0..frames {
            // Mutate a random block.
            let bx = rng.gen_range(0..w);
            let by = rng.gen_range(0..h);
            for y in by..(by + 8).min(h) {
                for x in bx..(bx + 8).min(w) {
                    let i = ((y * w + x) * 4) as usize;
                    frame[i] = rng.gen();
                }
            }
            let (bytes, stats) = enc.encode(&frame);
            let shown = dec.decode(&bytes).unwrap();
            prop_assert_eq!(shown.len(), frame.len());
            prop_assert!(stats.tiles_sent <= stats.tiles_total);
        }
    }

    #[test]
    fn lru_sender_receiver_never_desync(
        stream in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..32), 1..300),
        capacity in 2usize..64,
    ) {
        let mut tx = CommandCache::new(capacity);
        let mut rx = CommandCache::new(capacity);
        for msg in &stream {
            let token = tx.offer(msg);
            let out = rx.accept(&token);
            prop_assert_eq!(out.as_deref(), Some(msg.as_slice()));
        }
        prop_assert_eq!(tx.len(), rx.len());
    }

    #[test]
    fn rudp_delivers_everything_under_any_loss(
        bytes in 0usize..200_000,
        loss in 0.0f64..0.35,
        seed in any::<u64>(),
    ) {
        let ch = ChannelModel::lossy(loss);
        let stats = simulate_transfer(bytes, &ch, RudpConfig::default(), seed);
        prop_assert_eq!(stats.bytes, bytes as u64);
    }

    /// A [`ReorderBuffer`] fed any arrival order drawn from a sliding
    /// window of `w` in-flight frames — the pipelined engine's invariant:
    /// frame `s` can only be in flight once everything below `s − w` has
    /// arrived — presents every frame exactly once, strictly in order,
    /// and never buffers more than `w − 1` frames.
    #[test]
    fn reorder_buffer_presents_in_order_within_any_window(
        n in 1usize..80,
        w in 1usize..8,
        picks in prop::collection::vec(any::<usize>(), 80),
    ) {
        let mut buf: ReorderBuffer<u64> = ReorderBuffer::new();
        let mut presented: Vec<u64> = Vec::new();
        let mut next_issue = 0u64;
        let mut in_flight: Vec<u64> = Vec::new();
        let mut step = 0usize;
        while presented.len() < n {
            // Keep the window full: issue while the oldest unarrived
            // frame is within `w` of the newest.
            while next_issue < n as u64 && next_issue < buf.awaiting() + w as u64 {
                in_flight.push(next_issue);
                next_issue += 1;
            }
            // Deliver one in-flight frame in arbitrary order.
            let pick = picks[step % picks.len()] % in_flight.len();
            step += 1;
            let seq = in_flight.swap_remove(pick);
            buf.insert(seq, seq);
            presented.extend(buf.pop_ready());
            prop_assert!(
                buf.held() < w,
                "buffer held {} with window {w}", buf.held()
            );
        }
        prop_assert_eq!(presented, (0..n as u64).collect::<Vec<_>>());
        prop_assert_eq!(buf.held(), 0);
    }

    /// Eq. 4 scoring is total: for arbitrary backlogs `w_j`, workloads
    /// `r`, and capabilities `c_j` — including zero, negative, infinite
    /// and NaN — every score is non-NaN, dispatch always picks a valid
    /// node, and the booking never runs backwards in time.
    #[test]
    fn dispatcher_scoring_is_total_for_arbitrary_inputs(
        caps in prop::collection::vec(any::<f64>(), 1..6),
        fills in prop::collection::vec(any::<u64>(), 1..30),
        rtt_us in 0u64..1_000_000,
        step_us in 0u64..100_000,
    ) {
        let nodes: Vec<ServiceNode> = caps
            .iter()
            .map(|&c| {
                let mut n = ServiceNode::new(
                    DeviceSpec::nvidia_shield(),
                    SimDuration::from_micros(rtt_us),
                );
                n.capability = c;
                n
            })
            .collect();
        let n_nodes = nodes.len();
        let mut d = Dispatcher::new(nodes);
        let mut now = SimTime::ZERO;
        for (seq, &fill) in fills.iter().enumerate() {
            for node in d.nodes() {
                let score = node.score(fill, now);
                prop_assert!(!score.is_nan(), "score must never be NaN");
            }
            let decision = d.dispatch(seq as u64, fill, SimDuration::ZERO, now);
            prop_assert!(decision.node < n_nodes);
            prop_assert!(decision.finish >= decision.start);
            prop_assert!(decision.start >= now);
            d.complete(decision.node, seq as u64);
            now += SimDuration::from_micros(step_us);
        }
    }

    #[test]
    fn fps_recorder_median_is_bounded_by_samples(
        intervals in prop::collection::vec(1_000u64..200_000, 10..300),
    ) {
        use gbooster::sim::time::SimTime;
        let mut rec = FpsRecorder::new();
        let mut t = 0u64;
        for dt in &intervals {
            t += dt;
            rec.record(SimTime::from_micros(t));
        }
        let median = rec.median_fps();
        prop_assert!(median >= 0.0);
        prop_assert!(median <= 1_001.0, "median {} exceeds 1/min-interval", median);
        let stability = rec.stability();
        prop_assert!((0.0..=1.0).contains(&stability));
    }
}

// ---- Multi-tenant fabric invariants (docs/FABRIC.md). Fabric runs
// are whole-system simulations, so these blocks use few, fat cases.

fn fabric_pool(nodes: usize) -> Vec<DeviceSpec> {
    let all = [
        DeviceSpec::nvidia_shield(),
        DeviceSpec::dell_optiplex_9010(),
        DeviceSpec::dell_m4600(),
        DeviceSpec::minix_neo_u1(),
    ];
    all[..nodes].to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Max-min fair share: with equal-demand tenants, no admitted
    /// tenant's scheduled GPU time falls below `1/(2·n_tenants)` of the
    /// pool's scheduled time over any interior 1 s window.
    #[test]
    fn fabric_fair_share_holds_in_every_window(
        n_tenants in 2usize..10,
        nodes in 1usize..4,
        fps in prop_oneof![Just(10.0f64), Just(20.0f64)],
        seed in 0u64..1_000,
    ) {
        use gbooster::core::fabric::{FabricConfig, SessionManager, TenantSpec};
        use gbooster::workload::games::GameTitle;

        let mut cfg = FabricConfig::uniform(1, fabric_pool(nodes), seed);
        cfg.duration = SimDuration::from_secs(3);
        // Equal demand: same title, same rate, for every tenant.
        cfg.tenants = (0..n_tenants)
            .map(|_| TenantSpec {
                title: GameTitle::g5_candy_crush(),
                fps,
                slo_ms: 100.0,
            })
            .collect();
        let report = SessionManager::run(&cfg).unwrap();
        if report.admitted != n_tenants {
            // Equal-demand g5 streams fit any pool here; a rejection
            // means the case drew a degenerate config — skip it.
            return Ok(());
        }

        let last_window = cfg.duration.as_secs_f64() as u64 - 1;
        for w in &report.windows {
            // Skip the staggered-start and drain windows, and windows
            // where the pool barely ran.
            if w.window == 0 || w.window >= last_window || w.pool_busy_secs < 0.05 {
                continue;
            }
            let floor = w.pool_busy_secs / (2.0 * n_tenants as f64);
            for (t, &got) in w.tenant_busy_secs.iter().enumerate() {
                prop_assert!(
                    got >= floor - 1e-9,
                    "window {}: tenant {t} got {got:.6}s of {:.6}s pool \
                     (floor {floor:.6}s, {n_tenants} tenants, {nodes} nodes)",
                    w.window,
                    w.pool_busy_secs
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Admission control never books past the configured pool capacity,
    /// regardless of the offered mix.
    #[test]
    fn fabric_admission_never_exceeds_pool_capacity(
        sessions in 1usize..80,
        nodes in 1usize..4,
        cap in 0.3f64..1.0,
        per_node in 1usize..32,
        seed in 0u64..1_000,
    ) {
        use gbooster::core::fabric::{FabricConfig, SessionManager};

        let mut cfg = FabricConfig::uniform(sessions, fabric_pool(nodes), seed);
        cfg.duration = SimDuration::from_secs(1);
        cfg.admission.utilization_cap = cap;
        cfg.admission.max_sessions_per_node = per_node;
        match SessionManager::run(&cfg) {
            Ok(report) => {
                prop_assert_eq!(report.admitted + report.rejected, sessions);
                prop_assert!(
                    report.admitted_load <= report.load_cap + 1e-9,
                    "load {} > cap {}",
                    report.admitted_load,
                    report.load_cap
                );
                prop_assert!(
                    report.admitted <= per_node * nodes,
                    "admitted {} past the per-node ceiling {}",
                    report.admitted,
                    per_node * nodes
                );
                prop_assert!(
                    (report.rejected_rate
                        - report.rejected as f64 / sessions as f64)
                        .abs()
                        < 1e-12
                );
            }
            // A tiny cap can reject every tenant; that is the one
            // config the fabric refuses outright.
            Err(_) => prop_assert!(cap < 0.9, "healthy cap rejected everyone"),
        }
    }
}
