//! Section V-B: traffic-prediction quality — ARMA versus ARMAX, plus the
//! AIC sweep over the four candidate exogenous attributes.
//!
//! Paper: ARMA FP 23.7 % / FN 35.1 %; ARMAX FP 23 % / FN 17 %; AIC selects
//! attributes 1 (touchstroke frequency) and 3 (textures per frame).

use gbooster_bench::{compare, header};
use gbooster_forecast::aic::{all_subsets, select_attributes};
use gbooster_forecast::ewma::Ewma;
use gbooster_forecast::predictor::TrafficPredictor;
use gbooster_sim::rng::derived;
use rand::Rng;

/// Synthesizes the evaluation traffic trace: AR base load, touch-driven
/// scene bursts, and *independent* texture-streaming bursts (asset
/// loading is not user-input-driven), with the paper's four candidate
/// attributes observed alongside:
///   0: touchstroke frequency        (informative: input-driven surges)
///   1: command-sequence length      (weakly informative, lags traffic)
///   2: textures per frame           (informative: streaming surges)
///   3: command diff vs prev frame   (noisy echo of attribute 0)
fn trace(seed: u64, len: usize) -> (Vec<f64>, Vec<Vec<f64>>) {
    let mut rng = derived(seed, "prediction");
    let mut traffic = Vec::with_capacity(len);
    let mut exo_rows = Vec::with_capacity(len);
    let mut base: f64 = 9.0;
    let mut burst = 0u32;
    let mut burst_touch = 0.0;
    let mut tex_burst = 0u32;
    let mut prev_touch = 0.0;
    for _ in 0..len {
        if burst == 0 && rng.gen_bool(0.05) {
            burst = rng.gen_range(2..6);
            burst_touch = rng.gen_range(3.0..8.0);
        }
        if tex_burst == 0 && rng.gen_bool(0.04) {
            tex_burst = rng.gen_range(2..5);
        }
        let touch = if burst > 0 {
            burst -= 1;
            burst_touch + rng.gen_range(-1.0..1.0)
        } else {
            rng.gen_range(0.0..0.6)
        };
        let streaming = if tex_burst > 0 {
            tex_burst -= 1;
            rng.gen_range(3.0..7.0)
        } else {
            0.0
        };
        base = 0.8 * base + 2.4 + rng.gen_range(-1.6..1.6);
        // The traffic response to input varies by scene, so the observed
        // attributes are informative but imperfect predictors.
        let touch_gain = rng.gen_range(1.6..3.4);
        let stream_gain = rng.gen_range(1.2..2.4);
        let mbps = (base + touch_gain * touch + stream_gain * streaming + rng.gen_range(-3.5..3.5))
            .max(0.0);
        // Command-sequence length echoes the *previous* window's load:
        // by the time it is observable the traffic already moved.
        let cmd_len =
            150.0 + 2.0 * traffic.last().copied().unwrap_or(9.0) + rng.gen_range(-30.0..30.0);
        let textures = 18.0 + 2.0 * streaming + 0.8 * touch + rng.gen_range(-2.0..2.0);
        let cmd_diff = (touch - prev_touch).abs() * 3.0 + rng.gen_range(0.0..6.0);
        prev_touch = touch;
        traffic.push(mbps);
        exo_rows.push(vec![touch, cmd_len, textures, cmd_diff]);
    }
    (traffic, exo_rows)
}

fn main() {
    header("Section V-B: ARMA vs ARMAX prediction quality (500 ms windows)");
    let (traffic, exo_rows) = trace(20170605, 6000);
    let threshold = 21.0 * 0.8;

    let no_exo: Vec<Vec<f64>> = vec![Vec::new(); traffic.len()];
    let ewma = Ewma::new(0.3).evaluate(&traffic, threshold, 500);
    let arma = TrafficPredictor::arma(3, 2, threshold).evaluate(&traffic, &no_exo, 500);

    // The paper's final model: exogenous attributes 1 and 3.
    let selected: Vec<Vec<f64>> = exo_rows.iter().map(|row| vec![row[0], row[2]]).collect();
    let armax = TrafficPredictor::armax(3, 2, 2, 2, threshold).evaluate(&traffic, &selected, 500);

    println!(
        "EWMA  : FP {:>5.1}%  FN {:>5.1}%   (naive baseline, not in the paper)",
        ewma.fp_rate * 100.0,
        ewma.fn_rate * 100.0
    );
    println!(
        "ARMA  : FP {:>5.1}%  FN {:>5.1}%   ({} windows)",
        arma.fp_rate * 100.0,
        arma.fn_rate * 100.0,
        arma.samples
    );
    println!(
        "ARMAX : FP {:>5.1}%  FN {:>5.1}%   (attributes 1+3)",
        armax.fp_rate * 100.0,
        armax.fn_rate * 100.0
    );
    println!();

    header("AIC sweep over all 15 attribute subsets");
    let (train_traffic, train_exo) = trace(7, 2500);
    let exo_cols: Vec<Vec<f64>> = (0..4)
        .map(|i| train_exo.iter().map(|row| row[i]).collect())
        .collect();
    let scores = select_attributes(&train_traffic, &exo_cols, &all_subsets(4), 2, 1, 2, 300);
    for (rank, s) in scores.iter().take(5).enumerate() {
        let names: Vec<String> = s.attributes.iter().map(|a| (a + 1).to_string()).collect();
        println!(
            "  #{:<2} attributes {{{}}}  AIC {:>10.1}",
            rank + 1,
            names.join(","),
            s.aic
        );
    }
    let best = &scores[0];
    println!();
    compare(
        "ARMA FN rate",
        "35.1%",
        &format!("{:.1}%", arma.fn_rate * 100.0),
    );
    compare(
        "ARMA FP rate",
        "23.7%",
        &format!("{:.1}%", arma.fp_rate * 100.0),
    );
    compare(
        "ARMAX FN rate",
        "17%",
        &format!("{:.1}%", armax.fn_rate * 100.0),
    );
    compare(
        "ARMAX FP rate",
        "23%",
        &format!("{:.1}%", armax.fp_rate * 100.0),
    );
    compare(
        "AIC-selected attributes",
        "{1, 3}",
        &format!(
            "{{{}}}",
            best.attributes
                .iter()
                .map(|a| (a + 1).to_string())
                .collect::<Vec<_>>()
                .join(",")
        ),
    );
    assert!(
        armax.fn_rate < arma.fn_rate * 0.7,
        "ARMAX must cut the FN rate substantially"
    );
    assert!(
        arma.fn_rate <= ewma.fn_rate,
        "ARMA must not be worse than the EWMA baseline"
    );
    assert!(
        best.attributes.contains(&0) && best.attributes.contains(&2),
        "AIC must select the informative attributes 1 and 3"
    );
}
