//! Point-in-time telemetry snapshots and the end-of-session report.

use std::collections::BTreeMap;

use crate::hist::HistogramSnapshot;
use crate::names;

/// A copy of every instrument in a [`crate::Registry`] at one instant.
///
/// Missing names read as zero/empty, so report code never needs to care
/// whether a subsystem was actually exercised.
#[derive(Clone, Debug, Default)]
pub struct TelemetrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl TelemetrySnapshot {
    /// The counter registered under `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The gauge registered under `name` (0.0 when absent).
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// The histogram registered under `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// LRU command-cache hit rate in `[0, 1]` (0 when never exercised).
    pub fn cache_hit_rate(&self) -> f64 {
        let hits = self.counter(names::forward::CACHE_HITS);
        let total = hits + self.counter(names::forward::CACHE_MISSES);
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Command-stream compression ratio, wire ÷ raw (1.0 when nothing
    /// was forwarded; lower is better).
    pub fn compression_ratio(&self) -> f64 {
        let raw = self.counter(names::forward::RAW_BYTES);
        if raw == 0 {
            1.0
        } else {
            self.counter(names::forward::WIRE_BYTES) as f64 / raw as f64
        }
    }

    /// Turbo changed-tile fraction in `[0, 1]` (0 when never exercised).
    pub fn turbo_changed_tile_fraction(&self) -> f64 {
        let total = self.counter(names::service::TURBO_TILES_TOTAL);
        if total == 0 {
            0.0
        } else {
            self.counter(names::service::TURBO_TILES_SENT) as f64 / total as f64
        }
    }

    /// Datagram retransmissions: the session-path estimate plus any RUDP
    /// transfers measured directly.
    pub fn retransmit_count(&self) -> u64 {
        self.counter(names::net::RETRANSMITS) + self.counter(names::net::RUDP_RETRANSMITS)
    }

    /// Radio-switch mispredictions (sends degraded onto Bluetooth).
    pub fn misprediction_count(&self) -> u64 {
        self.counter(names::net::MISPREDICTIONS)
    }

    /// Merges `other` into `self`: counters add, histograms merge
    /// union-exactly (see [`HistogramSnapshot::merge`]), gauges take
    /// `other`'s value (a gauge is a last-observation instrument).
    /// Useful for aggregating per-device or per-section registries into
    /// one fleet view.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name.clone(), *v);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// Renders the human-readable end-of-session report.
    pub fn render_report(&self) -> String {
        let mut out = String::new();
        out.push_str("=== telemetry report ===\n");

        if !self.histograms.is_empty() {
            out.push_str(&format!(
                "{:<22} {:>8} {:>9} {:>9} {:>9} {:>9}  {}\n",
                "latency (ms)", "count", "p50", "p90", "p99", "max", "worst frame"
            ));
            for (name, h) in &self.histograms {
                if h.count() == 0 {
                    continue;
                }
                let worst = match h.exemplar() {
                    Some(ex) => format!("seq {}", ex.tag),
                    None => "-".to_string(),
                };
                out.push_str(&format!(
                    "{:<22} {:>8} {:>9.3} {:>9.3} {:>9.3} {:>9.3}  {}\n",
                    name,
                    h.count(),
                    h.p50_ms(),
                    h.p90_ms(),
                    h.p99_ms(),
                    h.max() as f64 / 1000.0,
                    worst,
                ));
            }
        }

        out.push_str(&format!(
            "cache hit rate        {:>8.1}%\n",
            self.cache_hit_rate() * 100.0
        ));
        out.push_str(&format!(
            "compression ratio     {:>8.3}\n",
            self.compression_ratio()
        ));
        if self.counter(names::service::TURBO_TILES_TOTAL) > 0 {
            out.push_str(&format!(
                "turbo changed tiles   {:>8.1}%\n",
                self.turbo_changed_tile_fraction() * 100.0
            ));
        }
        out.push_str(&format!(
            "retransmits           {:>8}\n",
            self.retransmit_count()
        ));
        out.push_str(&format!(
            "radio mispredictions  {:>8}\n",
            self.misprediction_count()
        ));

        if !self.counters.is_empty() {
            out.push_str("--- counters ---\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("{name:<28} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("--- gauges ---\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("{name:<28} {v:.6}\n"));
            }
        }
        out
    }

    /// Exports every instrument as one JSON object (a single line;
    /// suitable as a trailer record after the frame JSONL stream).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&crate::json::quote(k));
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&crate::json::quote(k));
            out.push(':');
            out.push_str(&crate::json::number(*v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&crate::json::quote(k));
            let exemplar = match h.exemplar() {
                Some(ex) => format!(",\"worst_frame\":{},\"worst_us\":{}", ex.tag, ex.value),
                None => String::new(),
            };
            out.push_str(&format!(
                ":{{\"count\":{},\"sum_us\":{},\"p50_us\":{},\"p90_us\":{},\"p99_us\":{},\"max_us\":{}{exemplar}}}",
                h.count(),
                h.sum(),
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
                h.max()
            ));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn derived_rates_handle_empty_and_populated() {
        let empty = TelemetrySnapshot::default();
        assert_eq!(empty.cache_hit_rate(), 0.0);
        assert_eq!(empty.compression_ratio(), 1.0);
        assert_eq!(empty.retransmit_count(), 0);

        let reg = Registry::new();
        reg.counter(names::forward::CACHE_HITS).add(3);
        reg.counter(names::forward::CACHE_MISSES).add(1);
        reg.counter(names::forward::RAW_BYTES).add(1000);
        reg.counter(names::forward::WIRE_BYTES).add(250);
        reg.counter(names::net::MISPREDICTIONS).add(2);
        let snap = reg.snapshot();
        assert!((snap.cache_hit_rate() - 0.75).abs() < 1e-12);
        assert!((snap.compression_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(snap.misprediction_count(), 2);
    }

    #[test]
    fn report_renders_quantile_table() {
        let reg = Registry::new();
        let h = reg.histogram(names::stage::UPLINK);
        for v in [1000u64, 2000, 3000, 50_000] {
            h.record(v);
        }
        let report = reg.snapshot().render_report();
        assert!(report.contains("stage.uplink"));
        assert!(report.contains("p99"));
        assert!(report.contains("cache hit rate"));
        assert!(report.contains("radio mispredictions"));
    }

    #[test]
    fn report_surfaces_worst_frame_exemplars() {
        let reg = Registry::new();
        let h = reg.histogram(names::stage::TOTAL);
        h.record_tagged(8_000, 3);
        h.record_tagged(120_000, 57);
        h.record_tagged(9_000, 4);
        reg.histogram(names::stage::UPLINK).record(2_000); // untagged
        let snap = reg.snapshot();
        let report = snap.render_report();
        assert!(report.contains("worst frame"));
        assert!(report.contains("seq 57"));
        let json = snap.to_json();
        assert!(json.contains("\"worst_frame\":57"));
        assert!(json.contains("\"worst_us\":120000"));
        // The untagged histogram carries no exemplar fields.
        let uplink = json.split("\"stage.uplink\"").nth(1).unwrap();
        assert!(!uplink.split('}').next().unwrap().contains("worst_frame"));
    }

    #[test]
    fn snapshot_merge_aggregates_per_kind() {
        let a_reg = Registry::new();
        a_reg.counter(names::net::WIFI_WAKES).add(2);
        a_reg.gauge(names::session::CPU_UTILIZATION).set(0.3);
        a_reg.histogram(names::stage::UPLINK).record(1_000);
        let b_reg = Registry::new();
        b_reg.counter(names::net::WIFI_WAKES).add(5);
        b_reg.counter(names::net::BT_BYTES).add(100);
        b_reg.gauge(names::session::CPU_UTILIZATION).set(0.6);
        b_reg.histogram(names::stage::UPLINK).record(3_000);

        let mut merged = a_reg.snapshot();
        merged.merge(&b_reg.snapshot());
        assert_eq!(merged.counter(names::net::WIFI_WAKES), 7);
        assert_eq!(merged.counter(names::net::BT_BYTES), 100);
        assert_eq!(merged.gauge(names::session::CPU_UTILIZATION), 0.6);
        let h = merged.histogram(names::stage::UPLINK).unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 4_000);
    }

    #[test]
    fn json_trailer_is_well_formed_enough() {
        let reg = Registry::new();
        reg.counter(names::session::FRAMES_DISPLAYED).add(7);
        reg.gauge(names::session::CPU_UTILIZATION).set(0.5);
        reg.histogram(names::stage::DECODE).record(123);
        let json = reg.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"frames.displayed\":7"));
        assert!(json.contains("\"cpu.utilization\":0.5"));
        assert!(json.contains("\"stage.decode\""));
    }
}
