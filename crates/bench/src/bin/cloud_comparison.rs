//! Section VII-F: comparison with the OnLive cloud-gaming platform —
//! 1280×720 at 30 FPS with ~150 ms response over a 10 Mbps Internet link,
//! versus GBooster's LAN offloading.

use gbooster_bench::{compare, header, run_offloaded, session_secs, SEED};
use gbooster_core::config::{CloudConfig, ExecutionMode, SessionConfig};
use gbooster_core::session::Session;
use gbooster_sim::device::DeviceSpec;
use gbooster_workload::games::GameTitle;

fn main() {
    header("Section VII-F: GBooster versus cloud-based remote rendering");
    let nexus = DeviceSpec::nexus5();
    // The paper averages over ten platform titles; the platform streams
    // every genre at the same encoder settings, so genre barely matters.
    let mut cloud_fps = Vec::new();
    let mut cloud_resp = Vec::new();
    for game in GameTitle::corpus() {
        let report = Session::run(
            &SessionConfig::builder(game.clone(), nexus.clone())
                .duration_secs(session_secs())
                .seed(SEED)
                .mode(ExecutionMode::Cloud(CloudConfig::default()))
                .build(),
        );
        cloud_fps.push(report.median_fps);
        cloud_resp.push(report.response_time_ms);
    }
    let avg_fps = cloud_fps.iter().sum::<f64>() / cloud_fps.len() as f64;
    let avg_resp = cloud_resp.iter().sum::<f64>() / cloud_resp.len() as f64;

    let gb = run_offloaded(&GameTitle::g1_gta_san_andreas(), &nexus);
    println!(
        "cloud:    {:>5.1} fps, response {:>6.1} ms (1280x720, 10 Mbps Internet)",
        avg_fps, avg_resp
    );
    println!(
        "gbooster: {:>5.1} fps, response {:>6.1} ms (1280x720, in-home LAN)",
        gb.median_fps, gb.response_time_ms
    );
    println!();
    compare("cloud stream FPS", "capped at 30", &format!("{avg_fps:.0}"));
    compare(
        "cloud response time",
        "~150 ms",
        &format!("{avg_resp:.0} ms"),
    );
    compare(
        "response ratio (cloud / gbooster)",
        "almost 5x",
        &format!("{:.1}x", avg_resp / gb.response_time_ms),
    );
    assert!((avg_fps - 30.0).abs() <= 2.0);
    assert!(avg_resp > 100.0);
    assert!(avg_resp / gb.response_time_ms > 3.0);
}
