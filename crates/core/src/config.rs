//! Session configuration (builder-style).

use gbooster_sim::device::{DeviceClass, DeviceSpec};
use gbooster_sim::time::SimDuration;
use gbooster_telemetry::{names, AlertConfig, SloObjective};
use gbooster_workload::apps::AppTitle;
use gbooster_workload::games::GameTitle;
use gbooster_workload::genre::GenreProfile;

use crate::error::GBoosterError;

/// The application under test: a game from Table II, an app from Table
/// III, or a custom profile.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Display name.
    pub name: String,
    /// Genre profile shaping the frame stream.
    pub profile: GenreProfile,
    /// Per-title intensity scalar.
    pub intensity: f64,
}

impl From<GameTitle> for Workload {
    fn from(game: GameTitle) -> Self {
        Workload {
            name: format!("{}: {}", game.id, game.name),
            profile: game.profile(),
            intensity: game.intensity,
        }
    }
}

impl From<AppTitle> for Workload {
    fn from(app: AppTitle) -> Self {
        Workload {
            name: app.name.to_string(),
            profile: app.profile(),
            intensity: app.intensity,
        }
    }
}

/// How the session executes its GPU work.
// One config per session: the size gap between variants is irrelevant,
// and boxing would clutter every construction site.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum ExecutionMode {
    /// Everything on the phone (the paper's baseline).
    Local,
    /// GBooster offloading to nearby service devices.
    Offloaded(OffloadConfig),
    /// OnLive-style remote cloud rendering (Section VII-F comparison).
    Cloud(CloudConfig),
}

/// Offloading parameters.
#[derive(Clone, Debug)]
pub struct OffloadConfig {
    /// Service devices, in discovery order. Must be non-empty and
    /// offload-capable.
    pub service_devices: Vec<DeviceSpec>,
    /// Enable the ARMAX-driven Bluetooth/WiFi switching (Fig. 6b ablates
    /// this).
    pub interface_switching: bool,
    /// Maximum rendering requests in flight (the paper observes the
    /// internal buffer holds at most 3 — Section VI-A / Fig. 7).
    pub buffer_depth: usize,
    /// Hard cap on frames between SwapBuffers return and vsync
    /// presentation (dispatched, in transit, or held for reordering).
    /// Issuing stalls at this bound; stalls are counted under
    /// `sched.window_stalls`. Must be ≥ 1.
    pub max_inflight: usize,
    /// How long after a node failure its orphaned frames wait before
    /// being re-dispatched to the next-best node (detection delay of the
    /// keep-alive protocol).
    pub redispatch_timeout_ms: u64,
    /// Multiplier on the channel's datagram loss rate (1.0 = the profiled
    /// link). Values above 1.0 model a lossy link: retransmit accounting
    /// scales with it and each transfer pays a deterministic recovery
    /// delay. Must be finite and ≥ 1.0.
    pub loss_scale: f64,
    /// Resolution rendered remotely and streamed back.
    pub render_resolution: (u32, u32),
    /// Stitched frame traces retained by the flight recorder (the last N
    /// frames dumped on a fault).
    pub flight_recorder_depth: usize,
    /// Frame-latency SLO driving the local-render fallback.
    pub slo: SloConfig,
    /// Live-ops layer: streaming SLO objectives, alerting, anomaly
    /// detection, and incident correlation.
    pub ops: OpsConfig,
    /// Deterministic fault-injection schedule (all disabled by default).
    pub faults: FaultInjection,
}

impl Default for OffloadConfig {
    fn default() -> Self {
        OffloadConfig {
            service_devices: vec![DeviceSpec::nvidia_shield()],
            interface_switching: true,
            buffer_depth: 3,
            max_inflight: 4,
            redispatch_timeout_ms: 30,
            loss_scale: 1.0,
            render_resolution: (1280, 720),
            flight_recorder_depth: 32,
            slo: SloConfig::default(),
            ops: OpsConfig::default(),
            faults: FaultInjection::default(),
        }
    }
}

/// Live-ops layer tuning: which SLO objectives are evaluated during the
/// run, how their alerts dwell, and how incidents correlate. The
/// defaults are scaled to the simulator's seconds-long sessions (the
/// Google-SRE structure with sub-second windows) and sit far enough
/// above healthy behavior that a fault-free run raises nothing.
#[derive(Clone, Debug)]
pub struct OpsConfig {
    /// Master switch: `false` runs the session with no ops layer at
    /// all (no streams, no alerts, no incidents).
    pub enabled: bool,
    /// SLO objectives evaluated once per presented frame.
    pub objectives: Vec<SloObjective>,
    /// Dwell/hysteresis shared by every objective's alert machine.
    pub alert: AlertConfig,
    /// z-score bound for the anomaly detectors on objective-less
    /// streams (per-interface power draw).
    pub anomaly_z: f64,
    /// Incident timeline lookback before the trigger, in milliseconds.
    pub incident_lookback_ms: u64,
    /// Minimum incident open time before quiescence closes it, in
    /// milliseconds.
    pub incident_min_open_ms: u64,
    /// Recording rules: persist each objective's burn-rate evaluation
    /// into an embedded [`gbooster_telemetry::Tsdb`] so postmortem
    /// queries reproduce the alerting inputs exactly. Off by default —
    /// the extra per-evaluation storage is opt-in.
    pub record_rules: bool,
}

impl Default for OpsConfig {
    fn default() -> Self {
        let fast = SimDuration::from_millis(800);
        let slow = SimDuration::from_millis(2_500);
        OpsConfig {
            enabled: true,
            objectives: vec![
                // End-to-end frame latency: a healthy offloaded session
                // presents in ~30–60 ms; 100 ms is user-visible jank.
                SloObjective {
                    name: names::slo::FRAME_LATENCY,
                    stream: names::ops::WIN_FRAME_LATENCY,
                    unit: "us",
                    threshold: 100_000,
                    budget: 0.05,
                    fast_window: fast,
                    slow_window: slow,
                    fast_burn: 4.0,
                    slow_burn: 2.0,
                    warmup: SimDuration::from_millis(1_500),
                },
                // Presented fps, as the inter-frame gap: a 60 ms gap is
                // a drop below ~17 fps.
                SloObjective {
                    name: names::slo::PRESENTED_FPS,
                    stream: names::ops::WIN_FRAME_INTERVAL,
                    unit: "us",
                    threshold: 60_000,
                    budget: 0.05,
                    fast_window: fast,
                    slow_window: slow,
                    fast_burn: 4.0,
                    slow_burn: 2.0,
                    warmup: SimDuration::from_millis(1_500),
                },
                // Command-cache effectiveness, as per-frame miss
                // permille: the warmed cache hits ~95%; sustained
                // >70% misses means the cache stopped carrying traffic.
                SloObjective {
                    name: names::slo::CACHE_HIT,
                    stream: names::ops::WIN_CACHE_MISS,
                    unit: "permille",
                    threshold: 700,
                    budget: 0.15,
                    fast_window: fast,
                    slow_window: slow,
                    fast_burn: 4.0,
                    slow_burn: 2.0,
                    warmup: SimDuration::from_millis(2_000),
                },
            ],
            alert: AlertConfig::default(),
            anomaly_z: 5.0,
            incident_lookback_ms: 500,
            incident_min_open_ms: 500,
            record_rules: false,
        }
    }
}

/// Frame-latency SLO and fallback hysteresis. The engine tracks an EWMA
/// of end-to-end frame latency; when it exceeds `engage_ms` for
/// `breach_frames` consecutive presented frames (or the service pool
/// empties), SwapBuffers flips to local rendering. Offloading resumes
/// only after `min_fallback_frames` locally rendered frames AND the pool
/// reporting healthy again — the engage/release split plus the dwell is
/// the hysteresis that stops the switch from flapping.
#[derive(Clone, Copy, Debug)]
pub struct SloConfig {
    /// EWMA frame latency (ms) above which the SLO counts a breach.
    pub engage_ms: f64,
    /// EWMA frame latency (ms) the *local* path must beat before the
    /// engine considers re-offloading. Must not exceed `engage_ms`.
    pub release_ms: f64,
    /// Consecutive breaching frames required to engage the fallback.
    pub breach_frames: u32,
    /// Minimum locally rendered frames before release is considered.
    pub min_fallback_frames: u32,
    /// EWMA smoothing factor in `(0, 1]`.
    pub alpha: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        // Default thresholds sit far above the ~30–60 ms latencies of a
        // healthy session, so the fallback only fires on real trouble.
        SloConfig {
            engage_ms: 250.0,
            release_ms: 120.0,
            breach_frames: 4,
            min_fallback_frames: 30,
            alpha: 0.2,
        }
    }
}

/// One scheduled change to a service node's availability, keyed by the
/// frame index at whose dispatch the event applies.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NodeEvent {
    /// Hard-kill the node: in-flight frames orphan and re-dispatch, the
    /// health monitor marks it dead without waiting for probe timeouts.
    Kill {
        /// Displayed-frame index at which the node drops.
        frame: u64,
        /// Index into `service_devices`.
        node: usize,
    },
    /// Bring a previously killed node back: probes start succeeding, and
    /// once the health monitor walks it through rejoin it receives a
    /// one-shot state resync and re-enters the dispatch pool.
    Revive {
        /// Displayed-frame index at which the node returns.
        frame: u64,
        /// Index into `service_devices`.
        node: usize,
    },
    /// Multiply the node's effective GPU capability by `factor` (in
    /// `(0, 1]`) — a thermal or contention brownout. The dispatcher's
    /// Eq. 4 score shifts load away organically.
    Degrade {
        /// Displayed-frame index at which the slowdown begins.
        frame: u64,
        /// Index into `service_devices`.
        node: usize,
        /// Capability multiplier in `(0, 1]`.
        factor: f64,
    },
}

impl NodeEvent {
    /// The frame index the event fires at.
    pub fn frame(&self) -> u64 {
        match *self {
            NodeEvent::Kill { frame, .. }
            | NodeEvent::Revive { frame, .. }
            | NodeEvent::Degrade { frame, .. } => frame,
        }
    }

    /// The node the event targets.
    pub fn node(&self) -> usize {
        match *self {
            NodeEvent::Kill { node, .. }
            | NodeEvent::Revive { node, .. }
            | NodeEvent::Degrade { node, .. } => node,
        }
    }
}

/// A window of frames during which a node's link drops all liveness
/// probes without the node itself dying. The health monitor sees probe
/// timeouts, walks Healthy → Suspect → Dead, and evicts the node; when
/// the window closes, probes succeed again and the node rejoins via
/// resync. Frames already dispatched to the node still complete — only
/// the control channel is cut, which is exactly what distinguishes a
/// partition drill from a kill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkPartition {
    /// Index into `service_devices`.
    pub node: usize,
    /// First frame index whose probes are lost (inclusive).
    pub from_frame: u64,
    /// First frame index whose probes succeed again (exclusive).
    pub until_frame: u64,
}

/// Deterministic fault-injection schedule for flight-recorder drills.
/// Each knob names the displayed-frame index at which the fault is
/// forced; `None` leaves the session fault-free (the recorder still
/// arms and triggers on organically detected faults).
#[derive(Clone, Debug, Default)]
pub struct FaultInjection {
    /// Inject a datagram loss storm before this frame: a burst of
    /// retransmissions large enough to trip the loss-storm detector.
    pub loss_storm_at_frame: Option<u64>,
    /// Stall dispatch before this frame: the frame's dispatch wait is
    /// inflated past the dispatch-timeout threshold.
    pub dispatch_stall_at_frame: Option<u64>,
    /// Rapidly power-cycle the WiFi interface before this frame.
    pub iface_flap_at_frame: Option<u64>,
    /// Kill service node `.1` (index into `service_devices`) when frame
    /// `.0` is dispatched: the node stops serving, its in-flight frames
    /// are re-dispatched to the next-best node after the re-dispatch
    /// timeout, and the flight recorder latches a `node_loss` fault.
    /// Requires at least two service devices. Sugar for a lone
    /// [`NodeEvent::Kill`] in `node_events`.
    pub kill_node_at_frame: Option<(u64, usize)>,
    /// Scheduled node kills / revivals / degradations. Unlike the
    /// `kill_node_at_frame` sugar, a `Kill` here is allowed with a
    /// single service device: the session survives via the local-render
    /// fallback instead of re-dispatching.
    pub node_events: Vec<NodeEvent>,
    /// Link-partition windows cutting a node's probe channel.
    pub partitions: Vec<LinkPartition>,
}

impl FaultInjection {
    /// True if any fault is scheduled.
    pub fn any(&self) -> bool {
        self.loss_storm_at_frame.is_some()
            || self.dispatch_stall_at_frame.is_some()
            || self.iface_flap_at_frame.is_some()
            || self.kill_node_at_frame.is_some()
            || !self.node_events.is_empty()
            || !self.partitions.is_empty()
    }

    /// The full node-event schedule with the `kill_node_at_frame` sugar
    /// folded in, sorted by (frame, node) for deterministic application.
    pub fn node_schedule(&self) -> Vec<NodeEvent> {
        let mut events = self.node_events.clone();
        if let Some((frame, node)) = self.kill_node_at_frame {
            events.push(NodeEvent::Kill { frame, node });
        }
        events.sort_by_key(|e| (e.frame(), e.node()));
        events
    }
}

/// Cloud-baseline parameters (OnLive measurements of ref \[43\]).
#[derive(Clone, Debug)]
pub struct CloudConfig {
    /// Stream FPS cap imposed by the platform's video encoder.
    pub encoder_fps_cap: u32,
    /// Stream resolution.
    pub resolution: (u32, u32),
}

impl Default for CloudConfig {
    fn default() -> Self {
        CloudConfig {
            encoder_fps_cap: 30,
            resolution: (1280, 720),
        }
    }
}

/// A complete session description.
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// Application under test.
    pub workload: Workload,
    /// The phone running it.
    pub user_device: DeviceSpec,
    /// Execution mode.
    pub mode: ExecutionMode,
    /// Played session length in simulated seconds (the paper plays
    /// 15 minutes; tests use shorter sessions with thermal time
    /// compression).
    pub duration_secs: u64,
    /// RNG seed for full reproducibility.
    pub seed: u64,
    /// Resolution games render at locally (internal render target;
    /// commercial titles render near 1080p regardless of panel).
    pub local_render_resolution: (u32, u32),
    /// Multiplier on GPU heating so shortened sessions still reach the
    /// Fig. 1 throttle point at the same *proportional* session position
    /// (e.g. 5.0 compresses the 10-minute throttle onset to 2 minutes).
    pub thermal_time_compression: f64,
    /// Traffic forecasting window (the paper forecasts 500 ms ahead).
    pub predictor_window_ms: u64,
}

impl SessionConfig {
    /// Starts a builder for `workload` on `user_device`.
    pub fn builder(workload: impl Into<Workload>, user_device: DeviceSpec) -> SessionConfigBuilder {
        SessionConfigBuilder {
            config: SessionConfig {
                workload: workload.into(),
                user_device,
                mode: ExecutionMode::Local,
                duration_secs: 120,
                seed: 42,
                local_render_resolution: (1920, 1080),
                thermal_time_compression: 900.0 / 120.0,
                predictor_window_ms: 500,
            },
        }
    }

    /// Validates cross-field invariants.
    ///
    /// # Errors
    ///
    /// Returns [`GBoosterError::Config`] for empty sessions, phones used
    /// as service devices, or empty device lists.
    pub fn validate(&self) -> Result<(), GBoosterError> {
        if self.duration_secs == 0 {
            return Err(GBoosterError::Config("session duration is zero".into()));
        }
        if let ExecutionMode::Offloaded(off) = &self.mode {
            if off.service_devices.is_empty() {
                return Err(GBoosterError::Config(
                    "offloading requires at least one service device".into(),
                ));
            }
            if off.buffer_depth == 0 {
                return Err(GBoosterError::Config("buffer depth is zero".into()));
            }
            if off.max_inflight == 0 {
                return Err(GBoosterError::Config("max_inflight is zero".into()));
            }
            if !off.loss_scale.is_finite() || off.loss_scale < 1.0 {
                return Err(GBoosterError::Config(format!(
                    "loss_scale must be finite and >= 1.0, got {}",
                    off.loss_scale
                )));
            }
            if let Some((_, node)) = off.faults.kill_node_at_frame {
                if off.service_devices.len() < 2 {
                    return Err(GBoosterError::Config(
                        "kill_node_at_frame needs at least two service devices".into(),
                    ));
                }
                if node >= off.service_devices.len() {
                    return Err(GBoosterError::Config(format!(
                        "kill_node_at_frame node index {node} out of range",
                    )));
                }
            }
            for ev in &off.faults.node_events {
                if ev.node() >= off.service_devices.len() {
                    return Err(GBoosterError::Config(format!(
                        "node event targets node {} but only {} service devices exist",
                        ev.node(),
                        off.service_devices.len()
                    )));
                }
                if let NodeEvent::Degrade { factor, .. } = *ev {
                    if !factor.is_finite() || factor <= 0.0 || factor > 1.0 {
                        return Err(GBoosterError::Config(format!(
                            "degrade factor must be in (0, 1], got {factor}"
                        )));
                    }
                }
            }
            for p in &off.faults.partitions {
                if p.node >= off.service_devices.len() {
                    return Err(GBoosterError::Config(format!(
                        "partition targets node {} but only {} service devices exist",
                        p.node,
                        off.service_devices.len()
                    )));
                }
                if p.from_frame >= p.until_frame {
                    return Err(GBoosterError::Config(format!(
                        "partition window [{}, {}) is empty",
                        p.from_frame, p.until_frame
                    )));
                }
            }
            let slo = &off.slo;
            if !slo.engage_ms.is_finite() || slo.engage_ms <= 0.0 {
                return Err(GBoosterError::Config(format!(
                    "SLO engage_ms must be finite and positive, got {}",
                    slo.engage_ms
                )));
            }
            if !slo.release_ms.is_finite()
                || slo.release_ms <= 0.0
                || slo.release_ms > slo.engage_ms
            {
                return Err(GBoosterError::Config(format!(
                    "SLO release_ms must be in (0, engage_ms], got {}",
                    slo.release_ms
                )));
            }
            if slo.breach_frames == 0 || slo.min_fallback_frames == 0 {
                return Err(GBoosterError::Config(
                    "SLO breach_frames and min_fallback_frames must be >= 1".into(),
                ));
            }
            if !slo.alpha.is_finite() || slo.alpha <= 0.0 || slo.alpha > 1.0 {
                return Err(GBoosterError::Config(format!(
                    "SLO alpha must be in (0, 1], got {}",
                    slo.alpha
                )));
            }
            for obj in &off.ops.objectives {
                if let Err(e) = obj.validate() {
                    return Err(GBoosterError::Config(format!("ops objective {e}")));
                }
            }
            if !off.ops.anomaly_z.is_finite() || off.ops.anomaly_z <= 0.0 {
                return Err(GBoosterError::Config(format!(
                    "ops anomaly_z must be finite and positive, got {}",
                    off.ops.anomaly_z
                )));
            }
            for dev in &off.service_devices {
                if dev.class == DeviceClass::Phone {
                    return Err(GBoosterError::Config(format!(
                        "{} is a phone and cannot serve",
                        dev.name
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Builder for [`SessionConfig`].
#[derive(Clone, Debug)]
pub struct SessionConfigBuilder {
    config: SessionConfig,
}

impl SessionConfigBuilder {
    /// Sets the execution mode.
    pub fn mode(mut self, mode: ExecutionMode) -> Self {
        self.config.mode = mode;
        self
    }

    /// Shortcut: offload to the given devices with default options.
    pub fn offload_to(mut self, devices: Vec<DeviceSpec>) -> Self {
        self.config.mode = ExecutionMode::Offloaded(OffloadConfig {
            service_devices: devices,
            ..OffloadConfig::default()
        });
        self
    }

    /// Sets the simulated session length. Thermal time compression is
    /// rescaled so the session still covers a 15-minute thermal arc.
    pub fn duration_secs(mut self, secs: u64) -> Self {
        self.config.duration_secs = secs;
        self.config.thermal_time_compression = 900.0 / secs.max(1) as f64;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Overrides thermal time compression (1.0 = real time).
    pub fn thermal_time_compression(mut self, factor: f64) -> Self {
        self.config.thermal_time_compression = factor;
        self
    }

    /// Overrides the local render resolution.
    pub fn local_render_resolution(mut self, width: u32, height: u32) -> Self {
        self.config.local_render_resolution = (width, height);
        self
    }

    /// Overrides the predictor window.
    pub fn predictor_window_ms(mut self, ms: u64) -> Self {
        self.config.predictor_window_ms = ms;
        self
    }

    /// Finishes the builder.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use
    /// [`SessionConfigBuilder::try_build`] to handle errors.
    pub fn build(self) -> SessionConfig {
        self.try_build().expect("invalid session configuration")
    }

    /// Finishes the builder, returning configuration errors.
    ///
    /// # Errors
    ///
    /// See [`SessionConfig::validate`].
    pub fn try_build(self) -> Result<SessionConfig, GBoosterError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_sane() {
        let cfg =
            SessionConfig::builder(GameTitle::g1_gta_san_andreas(), DeviceSpec::nexus5()).build();
        assert!(matches!(cfg.mode, ExecutionMode::Local));
        assert_eq!(cfg.local_render_resolution, (1920, 1080));
        assert_eq!(cfg.predictor_window_ms, 500);
    }

    #[test]
    fn duration_rescales_thermal_compression() {
        let cfg = SessionConfig::builder(GameTitle::g1_gta_san_andreas(), DeviceSpec::nexus5())
            .duration_secs(90)
            .build();
        assert!((cfg.thermal_time_compression - 10.0).abs() < 1e-9);
    }

    #[test]
    fn offloading_to_a_phone_is_rejected() {
        let err = SessionConfig::builder(GameTitle::g2_modern_combat(), DeviceSpec::nexus5())
            .offload_to(vec![DeviceSpec::lg_g5()])
            .try_build()
            .unwrap_err();
        assert!(matches!(err, GBoosterError::Config(_)));
    }

    #[test]
    fn empty_device_list_is_rejected() {
        let err = SessionConfig::builder(GameTitle::g2_modern_combat(), DeviceSpec::nexus5())
            .offload_to(vec![])
            .try_build()
            .unwrap_err();
        assert!(matches!(err, GBoosterError::Config(_)));
    }

    #[test]
    fn zero_duration_is_rejected() {
        let err = SessionConfig::builder(GameTitle::g2_modern_combat(), DeviceSpec::nexus5())
            .duration_secs(0)
            .try_build()
            .unwrap_err();
        assert!(matches!(err, GBoosterError::Config(_)));
    }

    #[test]
    fn invalid_pipeline_knobs_are_rejected() {
        let base = |off: OffloadConfig| {
            SessionConfig::builder(GameTitle::g2_modern_combat(), DeviceSpec::nexus5())
                .mode(ExecutionMode::Offloaded(off))
                .try_build()
        };
        let err = base(OffloadConfig {
            max_inflight: 0,
            ..OffloadConfig::default()
        })
        .unwrap_err();
        assert!(matches!(err, GBoosterError::Config(_)));
        let err = base(OffloadConfig {
            loss_scale: 0.5,
            ..OffloadConfig::default()
        })
        .unwrap_err();
        assert!(matches!(err, GBoosterError::Config(_)));
        let err = base(OffloadConfig {
            loss_scale: f64::NAN,
            ..OffloadConfig::default()
        })
        .unwrap_err();
        assert!(matches!(err, GBoosterError::Config(_)));
    }

    #[test]
    fn kill_node_fault_requires_a_spare_device() {
        // One device: nobody to re-dispatch to.
        let err = SessionConfig::builder(GameTitle::g2_modern_combat(), DeviceSpec::nexus5())
            .mode(ExecutionMode::Offloaded(OffloadConfig {
                faults: FaultInjection {
                    kill_node_at_frame: Some((10, 0)),
                    ..FaultInjection::default()
                },
                ..OffloadConfig::default()
            }))
            .try_build()
            .unwrap_err();
        assert!(matches!(err, GBoosterError::Config(_)));
        // Out-of-range node index.
        let err = SessionConfig::builder(GameTitle::g2_modern_combat(), DeviceSpec::nexus5())
            .mode(ExecutionMode::Offloaded(OffloadConfig {
                service_devices: vec![DeviceSpec::nvidia_shield(), DeviceSpec::minix_neo_u1()],
                faults: FaultInjection {
                    kill_node_at_frame: Some((10, 2)),
                    ..FaultInjection::default()
                },
                ..OffloadConfig::default()
            }))
            .try_build()
            .unwrap_err();
        assert!(matches!(err, GBoosterError::Config(_)));
    }

    #[test]
    fn node_event_schedule_folds_in_the_kill_sugar_and_sorts() {
        let faults = FaultInjection {
            kill_node_at_frame: Some((50, 1)),
            node_events: vec![
                NodeEvent::Revive { frame: 90, node: 1 },
                NodeEvent::Kill { frame: 20, node: 0 },
            ],
            ..FaultInjection::default()
        };
        assert!(faults.any());
        let sched = faults.node_schedule();
        assert_eq!(
            sched,
            vec![
                NodeEvent::Kill { frame: 20, node: 0 },
                NodeEvent::Kill { frame: 50, node: 1 },
                NodeEvent::Revive { frame: 90, node: 1 },
            ]
        );
    }

    #[test]
    fn node_events_and_partitions_are_validated() {
        let base = |faults: FaultInjection| {
            SessionConfig::builder(GameTitle::g2_modern_combat(), DeviceSpec::nexus5())
                .mode(ExecutionMode::Offloaded(OffloadConfig {
                    service_devices: vec![DeviceSpec::nvidia_shield(), DeviceSpec::minix_neo_u1()],
                    faults,
                    ..OffloadConfig::default()
                }))
                .try_build()
        };
        // Out-of-range node index.
        let err = base(FaultInjection {
            node_events: vec![NodeEvent::Kill { frame: 5, node: 7 }],
            ..FaultInjection::default()
        })
        .unwrap_err();
        assert!(matches!(err, GBoosterError::Config(_)));
        // Degrade factor outside (0, 1].
        let err = base(FaultInjection {
            node_events: vec![NodeEvent::Degrade {
                frame: 5,
                node: 0,
                factor: 1.5,
            }],
            ..FaultInjection::default()
        })
        .unwrap_err();
        assert!(matches!(err, GBoosterError::Config(_)));
        // Empty partition window.
        let err = base(FaultInjection {
            partitions: vec![LinkPartition {
                node: 0,
                from_frame: 10,
                until_frame: 10,
            }],
            ..FaultInjection::default()
        })
        .unwrap_err();
        assert!(matches!(err, GBoosterError::Config(_)));
        // A well-formed schedule passes.
        assert!(base(FaultInjection {
            node_events: vec![
                NodeEvent::Kill { frame: 5, node: 0 },
                NodeEvent::Revive { frame: 40, node: 0 },
                NodeEvent::Degrade {
                    frame: 8,
                    node: 1,
                    factor: 0.5
                },
            ],
            partitions: vec![LinkPartition {
                node: 1,
                from_frame: 60,
                until_frame: 80,
            }],
            ..FaultInjection::default()
        })
        .is_ok());
        // Unlike the sugar, a scheduled Kill is fine with one device:
        // the local-render fallback absorbs an empty pool.
        assert!(
            SessionConfig::builder(GameTitle::g2_modern_combat(), DeviceSpec::nexus5())
                .mode(ExecutionMode::Offloaded(OffloadConfig {
                    faults: FaultInjection {
                        node_events: vec![NodeEvent::Kill { frame: 5, node: 0 }],
                        ..FaultInjection::default()
                    },
                    ..OffloadConfig::default()
                }))
                .try_build()
                .is_ok()
        );
    }

    #[test]
    fn slo_thresholds_are_validated() {
        let base = |slo: SloConfig| {
            SessionConfig::builder(GameTitle::g2_modern_combat(), DeviceSpec::nexus5())
                .mode(ExecutionMode::Offloaded(OffloadConfig {
                    slo,
                    ..OffloadConfig::default()
                }))
                .try_build()
        };
        // Release above engage breaks the hysteresis ordering.
        let err = base(SloConfig {
            engage_ms: 100.0,
            release_ms: 200.0,
            ..SloConfig::default()
        })
        .unwrap_err();
        assert!(matches!(err, GBoosterError::Config(_)));
        let err = base(SloConfig {
            breach_frames: 0,
            ..SloConfig::default()
        })
        .unwrap_err();
        assert!(matches!(err, GBoosterError::Config(_)));
        let err = base(SloConfig {
            alpha: 0.0,
            ..SloConfig::default()
        })
        .unwrap_err();
        assert!(matches!(err, GBoosterError::Config(_)));
        assert!(base(SloConfig::default()).is_ok());
    }

    #[test]
    fn workload_from_game_and_app() {
        let w: Workload = GameTitle::g1_gta_san_andreas().into();
        assert!(w.name.contains("GTA"));
        let w: Workload = AppTitle::tumblr().into();
        assert_eq!(w.name, "Tumblr");
    }
}
