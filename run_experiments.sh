#!/usr/bin/env bash
# Regenerates every table and figure of the GBooster paper (see
# EXPERIMENTS.md). Outputs land in ./results/.
set -euo pipefail
mkdir -p results
BINARIES=(
  table1 table2 fig1_thermal motivation_power fig5_acceleration
  fig6_energy fig7_multidevice table3_nongaming cloud_comparison
  overhead prediction_quality traffic_reduction ablation_traffic
  ablation_offload multiuser_queues battery_lifetime
)
for bin in "${BINARIES[@]}"; do
  echo "== ${bin}"
  cargo run --release -q -p gbooster-bench --bin "${bin}" | tee "results/${bin}.txt"
done

# Refresh the committed regression-gate baselines (BENCH_fig5.json /
# BENCH_traffic.json). They are collected under smoke mode so the CI
# bench-gate job compares like for like, and with host-prof on so the
# host.alloc_bytes_per_frame row counts real heap traffic; commit the
# refreshed files together with the change that legitimately moved the
# numbers (docs/OBSERVABILITY.md, "Baseline refresh policy").
echo "== bench_baseline (regression-gate baselines, smoke mode)"
GBOOSTER_BENCH_SMOKE=1 cargo run --release -q -p gbooster-bench --features host-prof \
  --bin bench_baseline | tee "results/bench_baseline.txt"

# Profile the simulator itself: one offloaded smoke session under the
# scoped host profiler + counting allocator. Prints the top-N host-cost
# table (wall self/total µs, allocs, bytes per collapsed call path) and
# writes BENCH_profile.collapsed — render it with
# `flamegraph.pl BENCH_profile.collapsed > results/flame.svg`
# (docs/OBSERVABILITY.md, "Host-time profiling & flamegraphs").
echo "== profile_smoke (host-time top-N table + collapsed stacks)"
GBOOSTER_BENCH_SMOKE=1 cargo run --release -q -p gbooster-bench --features host-prof \
  --bin profile_smoke | tee "results/profile_smoke.txt"
cp BENCH_profile.collapsed results/

echo "All experiment outputs written to ./results/"
