//! Property tests for the telemetry histograms (quantile ordering and
//! the merge-equals-union law).

use gbooster_telemetry::Histogram;
use proptest::prelude::*;

/// Samples spanning the linear region, the log region, and the clamp.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        prop_oneof![
            0u64..128,
            128u64..100_000,
            100_000u64..10_000_000_000,
            Just(u64::MAX),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn quantiles_are_ordered(values in samples()) {
        let h = Histogram::detached();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.50);
        let p90 = s.quantile(0.90);
        let p99 = s.quantile(0.99);
        prop_assert!(p50 <= p90, "p50 {p50} > p90 {p90}");
        prop_assert!(p90 <= p99, "p90 {p90} > p99 {p99}");
        prop_assert!(p99 <= s.max(), "p99 {p99} > max {}", s.max());
        prop_assert!(s.min() <= p50, "min {} > p50 {p50}", s.min());
    }

    #[test]
    fn quantiles_bracket_true_order_statistics(values in samples()) {
        // The estimate may round up within its bucket (≤ 1/16 relative
        // error in the log region) but must never cross the neighboring
        // order statistics' buckets.
        let h = Histogram::detached();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let s = h.snapshot();
        for &(q, pct) in &[(0.50f64, 50u64), (0.90, 90), (0.99, 99)] {
            let rank = ((pct as f64 / 100.0 * sorted.len() as f64).ceil() as usize)
                .clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let est = s.quantile(q);
            prop_assert!(
                est >= exact,
                "q{pct} estimate {est} below exact {exact}"
            );
            // Upper bound: bucket width is at most max(1, exact/16) above
            // the exact value, and never beyond the observed max.
            let slack = (exact / 8).max(1);
            prop_assert!(
                est <= exact.saturating_add(slack).min(s.max().max(exact)),
                "q{pct} estimate {est} too far above exact {exact}"
            );
        }
    }

    #[test]
    fn merge_equals_recording_the_union(a in samples(), b in samples()) {
        let ha = Histogram::detached();
        let hb = Histogram::detached();
        let hu = Histogram::detached();
        for &v in &a {
            ha.record(v);
            hu.record(v);
        }
        for &v in &b {
            hb.record(v);
            hu.record(v);
        }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());
        let union = hu.snapshot();
        prop_assert_eq!(&merged, &union);
        // Spot-check the derived views agree too.
        prop_assert_eq!(merged.quantile(0.5), union.quantile(0.5));
        prop_assert_eq!(merged.max(), union.max());
        prop_assert_eq!(merged.count(), union.count());
    }

    #[test]
    fn count_and_sum_are_exact(values in samples()) {
        let h = Histogram::detached();
        let mut sum = 0u128;
        for &v in &values {
            h.record(v);
            sum += v as u128;
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count(), values.len() as u64);
        // Sum wraps at u64 in the store; compare modulo 2^64.
        prop_assert_eq!(s.sum(), sum as u64);
    }
}
