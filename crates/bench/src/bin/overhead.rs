//! Section VII-G: GBooster's memory and CPU overhead on the user device.
//!
//! The paper measures ≈47.8 MB of extra memory and a CPU usage increase
//! from 68 % to 79 % for G1 on the Nexus 5.

use gbooster_bench::{compare, header, run_local, run_offloaded};
use gbooster_sim::device::DeviceSpec;
use gbooster_workload::games::GameTitle;

fn main() {
    header("Section VII-G: system overhead (Nexus 5)");
    let nexus = DeviceSpec::nexus5();
    println!(
        "{:<6} {:>12} {:>14} {:>14}",
        "game", "extra MB", "cpu local", "cpu gbooster"
    );
    let mut mem_total = 0.0;
    let mut count = 0;
    for game in GameTitle::corpus() {
        let local = run_local(&game, &nexus);
        let off = run_offloaded(&game, &nexus);
        mem_total += off.extra_memory_mb;
        count += 1;
        println!(
            "{:<6} {:>12.1} {:>13.0}% {:>13.0}%",
            game.id,
            off.extra_memory_mb,
            local.cpu_utilization * 100.0,
            off.cpu_utilization * 100.0
        );
        assert!(
            off.cpu_utilization > local.cpu_utilization,
            "offloading adds CPU work for (de)serialization and decoding"
        );
        assert!(off.cpu_utilization < 0.9, "CPU must stay underutilized");
    }
    let avg_mem = mem_total / count as f64;
    println!();
    compare(
        "average memory footprint",
        "47.8 MB",
        &format!("{avg_mem:.1} MB (caches + frame buffers)"),
    );
    compare(
        "G1 CPU usage local -> offloaded",
        "68% -> 79% (of busiest core group)",
        "rises by a comparable margin, CPU stays underutilized",
    );
    compare(
        "impact",
        "negligible on gigabyte-class devices",
        "negligible",
    );
    assert!(
        (10.0..=100.0).contains(&avg_mem),
        "memory footprint should be tens of MB, got {avg_mem:.1}"
    );
}
