//! Pixel-exact pipeline fidelity: rendering a frame locally must produce
//! the *same image* as intercepting it, shipping it over the wire, and
//! replaying it on a service device — the paper's transparency claim made
//! literal.

use gbooster::core::forward::{CommandForwarder, ServiceReceiver};
use gbooster::gles::command::GlCommand;
use gbooster::gles::exec::{ExecMode, SoftGpu};
use gbooster::workload::genre::{Genre, GenreProfile};
use gbooster::workload::tracegen::TraceGenerator;

/// Drives `frames` frames of `genre` both locally and through the wire,
/// asserting pixel equality after every swap.
fn assert_pixel_exact(genre: Genre, frames: usize, seed: u64) {
    let (w, h) = (64u32, 64u32);
    let mut app = TraceGenerator::new(GenreProfile::for_genre(genre), 1.0, w, h, seed);
    let mut local_gpu = SoftGpu::new(w, h, ExecMode::Full);
    let mut remote_gpu = SoftGpu::new(w, h, ExecMode::Full);
    let mut forwarder = CommandForwarder::new();
    let mut receiver = ServiceReceiver::new();

    let run_frame = |commands: &[GlCommand],
                     app: &TraceGenerator,
                     local_gpu: &mut SoftGpu,
                     remote_gpu: &mut SoftGpu,
                     forwarder: &mut CommandForwarder,
                     receiver: &mut ServiceReceiver| {
        // Local path: the driver reads client memory directly.
        for cmd in commands {
            if cmd.is_swap() {
                continue;
            }
            local_gpu
                .execute_mem(cmd, Some(app.client_memory()))
                .expect("local execution");
        }
        // Remote path: resolve -> cache -> lz4 -> wire -> decode -> replay.
        let fwd = forwarder
            .forward_frame(commands, app.client_memory())
            .expect("forwarding");
        let decoded = receiver.receive(&fwd.wire).expect("receive");
        for cmd in &decoded {
            if cmd.is_swap() {
                continue;
            }
            remote_gpu.execute(cmd).expect("remote execution");
        }
        let local_frame = local_gpu.swap_buffers();
        let remote_frame = remote_gpu.swap_buffers();
        assert_eq!(
            local_frame.image.as_bytes(),
            remote_frame.image.as_bytes(),
            "local and remote renders diverged"
        );
        assert_eq!(
            local_frame.workload.draw_calls,
            remote_frame.workload.draw_calls
        );
    };

    let setup = app.setup_trace();
    run_frame(
        &setup.commands,
        &app,
        &mut local_gpu,
        &mut remote_gpu,
        &mut forwarder,
        &mut receiver,
    );
    for _ in 0..frames {
        let frame = app.next_frame(1.0 / 30.0);
        run_frame(
            &frame.commands,
            &app,
            &mut local_gpu,
            &mut remote_gpu,
            &mut forwarder,
            &mut receiver,
        );
    }
    // The contexts must also agree bit-for-bit.
    assert_eq!(
        local_gpu.context().digest(),
        remote_gpu.context().digest(),
        "context state diverged between local and remote"
    );
}

#[test]
fn action_frames_render_identically_after_the_wire() {
    assert_pixel_exact(Genre::Action, 25, 7);
}

#[test]
fn puzzle_frames_render_identically_after_the_wire() {
    assert_pixel_exact(Genre::Puzzle, 25, 8);
}

#[test]
fn role_playing_frames_render_identically_after_the_wire() {
    assert_pixel_exact(Genre::RolePlaying, 25, 9);
}

#[test]
fn ui_frames_render_identically_after_the_wire() {
    assert_pixel_exact(Genre::AppUi, 25, 10);
}

#[test]
fn long_session_survives_scene_changes_pixel_exact() {
    // Enough frames to hit texture churn, scene changes and cache
    // evictions along the way.
    assert_pixel_exact(Genre::Action, 150, 11);
}
