//! Recursive least squares with exponential forgetting.
//!
//! The paper applies "a recursive algorithm \[30\] for online estimating and
//! updating the order … and the corresponding parameters" of its ARMA(X)
//! models. RLS is the standard such algorithm: it refines the parameter
//! vector θ after every observation in O(d²) without refitting, and the
//! forgetting factor λ < 1 lets the model track the non-stationary traffic
//! of an interactive game session (the "sliding data window" of ref \[30\]).

/// An online least-squares estimator for `y ≈ θᵀx`.
///
/// # Examples
///
/// ```
/// use gbooster_forecast::rls::Rls;
///
/// // Learn y = 2·a + 3·b online.
/// let mut rls = Rls::new(2, 0.99);
/// for i in 0..200 {
///     let a = (i % 7) as f64;
///     let b = (i % 5) as f64;
///     rls.update(&[a, b], 2.0 * a + 3.0 * b);
/// }
/// assert!((rls.predict(&[1.0, 0.0]) - 2.0).abs() < 0.05);
/// assert!((rls.predict(&[0.0, 1.0]) - 3.0).abs() < 0.05);
/// ```
#[derive(Clone, Debug)]
pub struct Rls {
    dim: usize,
    theta: Vec<f64>,
    /// Inverse covariance matrix P, row-major `dim × dim`.
    p: Vec<f64>,
    lambda: f64,
    updates: u64,
}

impl Rls {
    /// Creates an estimator for `dim` regressors with forgetting factor
    /// `lambda` (1.0 = infinite memory; 0.95–0.999 typical for tracking).
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `lambda` is outside `(0, 1]`.
    pub fn new(dim: usize, lambda: f64) -> Self {
        assert!(dim > 0, "dimension must be nonzero");
        assert!(
            lambda > 0.0 && lambda <= 1.0,
            "forgetting factor must be in (0, 1]: {lambda}"
        );
        // P starts as δ·I with large δ (uninformative prior).
        let delta = 1e4;
        let mut p = vec![0.0; dim * dim];
        for i in 0..dim {
            p[i * dim + i] = delta;
        }
        Rls {
            dim,
            theta: vec![0.0; dim],
            p,
            lambda,
            updates: 0,
        }
    }

    /// Number of regressors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Current parameter estimate θ.
    pub fn theta(&self) -> &[f64] {
        &self.theta
    }

    /// Number of updates performed.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Predicted output for regressor vector `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim`.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim, "regressor dimension mismatch");
        self.theta.iter().zip(x.iter()).map(|(t, v)| t * v).sum()
    }

    /// Incorporates one observation `(x, y)`; returns the a-priori
    /// prediction error `y − θᵀx`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim` or any input is non-finite.
    pub fn update(&mut self, x: &[f64], y: f64) -> f64 {
        assert_eq!(x.len(), self.dim, "regressor dimension mismatch");
        assert!(
            y.is_finite() && x.iter().all(|v| v.is_finite()),
            "non-finite observation"
        );
        let d = self.dim;
        // px = P x
        let mut px = vec![0.0; d];
        for (i, pxi) in px.iter_mut().enumerate() {
            let row = &self.p[i * d..(i + 1) * d];
            *pxi = row.iter().zip(x.iter()).map(|(a, b)| a * b).sum();
        }
        // g = P x / (λ + xᵀ P x)
        let denom = self.lambda + x.iter().zip(px.iter()).map(|(a, b)| a * b).sum::<f64>();
        let err = y - self.predict(x);
        for (theta, pxi) in self.theta.iter_mut().zip(px.iter()) {
            *theta += pxi / denom * err;
        }
        // P ← (P − g xᵀ P) / λ
        let mut xtp = vec![0.0; d]; // xᵀP (row vector)
        for (j, xtpj) in xtp.iter_mut().enumerate() {
            *xtpj = (0..d).map(|i| x[i] * self.p[i * d + j]).sum();
        }
        for (i, pxi) in px.iter().enumerate() {
            for (j, xtpj) in xtp.iter().enumerate() {
                self.p[i * d + j] = (self.p[i * d + j] - pxi * xtpj / denom) / self.lambda;
            }
        }
        self.updates += 1;
        err
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_true_parameters() {
        let mut rls = Rls::new(3, 1.0);
        let truth = [1.5, -2.0, 0.25];
        for i in 0..500 {
            let x = [
                ((i * 13) % 17) as f64 / 17.0,
                ((i * 7) % 11) as f64 / 11.0,
                ((i * 3) % 5) as f64 / 5.0,
            ];
            let y: f64 = truth.iter().zip(x.iter()).map(|(t, v)| t * v).sum();
            rls.update(&x, y);
        }
        for (est, tru) in rls.theta().iter().zip(truth.iter()) {
            assert!((est - tru).abs() < 1e-3, "estimate {est} vs {tru}");
        }
    }

    #[test]
    fn forgetting_tracks_parameter_drift() {
        let mut rls = Rls::new(1, 0.95);
        // First regime: y = 1·x, then y = 5·x.
        for i in 0..300 {
            let x = [1.0 + (i % 3) as f64];
            rls.update(&x, 1.0 * x[0]);
        }
        for i in 0..300 {
            let x = [1.0 + (i % 3) as f64];
            rls.update(&x, 5.0 * x[0]);
        }
        assert!(
            (rls.theta()[0] - 5.0).abs() < 0.1,
            "theta {:?}",
            rls.theta()
        );
    }

    #[test]
    fn prediction_error_decreases() {
        let mut rls = Rls::new(2, 1.0);
        let mut early = 0.0;
        let mut late = 0.0;
        for i in 0..200 {
            let x = [(i % 9) as f64, 1.0];
            let err = rls.update(&x, 3.0 * x[0] + 7.0).abs();
            if i < 20 {
                early += err;
            } else if i >= 180 {
                late += err;
            }
        }
        assert!(late < early / 10.0, "early {early} late {late}");
    }

    #[test]
    fn updates_counter() {
        let mut rls = Rls::new(1, 1.0);
        rls.update(&[1.0], 2.0);
        rls.update(&[2.0], 4.0);
        assert_eq!(rls.updates(), 2);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dimension_panics() {
        let mut rls = Rls::new(2, 1.0);
        rls.update(&[1.0], 1.0);
    }

    #[test]
    #[should_panic(expected = "forgetting factor")]
    fn bad_lambda_panics() {
        let _ = Rls::new(1, 1.5);
    }
}
