//! UDP multicast for state replication (Section VI-B).
//!
//! "As we need to transmit duplicated data to multiple devices, a unicast
//! connection is not an optimal option since it could result in waste of
//! network bandwidth and limited system scalability. Instead, we take
//! advantage of the multi-cast capability of UDP, which allows a stream of
//! data to be sent to multiple destinations with a single transmission
//! operation."
//!
//! [`MulticastGroup`] models group membership and accounts the bandwidth
//! saved versus per-member unicast — the quantity the scalability argument
//! rests on.

use std::collections::BTreeSet;

use gbooster_sim::time::SimTime;
use rand::Rng;

use crate::channel::ChannelModel;

/// A delivery of one multicast datagram to one member.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// Receiving member id.
    pub member: u32,
    /// Arrival time.
    pub at: SimTime,
    /// Whether the (unreliable) datagram was lost for this member.
    pub lost: bool,
}

/// A multicast group with byte accounting.
#[derive(Clone, Debug, Default)]
pub struct MulticastGroup {
    members: BTreeSet<u32>,
    bytes_sent: u64,
    bytes_unicast_equivalent: u64,
}

impl MulticastGroup {
    /// Creates an empty group.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a member; returns false if already present.
    pub fn join(&mut self, member: u32) -> bool {
        self.members.insert(member)
    }

    /// Removes a member; returns false if absent.
    pub fn leave(&mut self, member: u32) -> bool {
        self.members.remove(&member)
    }

    /// Current member ids.
    pub fn members(&self) -> impl Iterator<Item = u32> + '_ {
        self.members.iter().copied()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the group has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Sends `bytes` to every member with a *single* link transmission;
    /// per-member loss is sampled independently (multicast is unreliable;
    /// GBooster's state replication tolerates this by re-sending state on
    /// divergence, and the simulation surfaces lost deliveries).
    pub fn send<R: Rng>(
        &mut self,
        bytes: usize,
        now: SimTime,
        channel: &ChannelModel,
        rng: &mut R,
    ) -> Vec<Delivery> {
        self.bytes_sent += bytes as u64;
        self.bytes_unicast_equivalent += bytes as u64 * self.members.len() as u64;
        let tx_end = now + channel.tx_time(bytes);
        self.members
            .iter()
            .map(|&member| Delivery {
                member,
                at: tx_end + channel.sample_latency(rng),
                lost: channel.should_drop(rng),
            })
            .collect()
    }

    /// Bytes actually put on the link.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Bytes a unicast fan-out would have cost.
    pub fn unicast_equivalent_bytes(&self) -> u64 {
        self.bytes_unicast_equivalent
    }

    /// Bandwidth saving factor versus unicast (1.0 with one member).
    pub fn savings_factor(&self) -> f64 {
        if self.bytes_sent == 0 {
            1.0
        } else {
            self.bytes_unicast_equivalent as f64 / self.bytes_sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbooster_sim::rng::seeded;

    #[test]
    fn single_transmission_reaches_all_members() {
        let mut group = MulticastGroup::new();
        for m in 0..3 {
            assert!(group.join(m));
        }
        let mut rng = seeded(1);
        let mut ch = ChannelModel::wifi_80211n();
        ch.loss_rate = 0.0;
        let deliveries = group.send(10_000, SimTime::ZERO, &ch, &mut rng);
        assert_eq!(deliveries.len(), 3);
        assert!(deliveries.iter().all(|d| !d.lost));
        assert_eq!(group.bytes_sent(), 10_000);
        assert_eq!(group.unicast_equivalent_bytes(), 30_000);
        assert!((group.savings_factor() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_join_is_rejected() {
        let mut group = MulticastGroup::new();
        assert!(group.join(1));
        assert!(!group.join(1));
        assert_eq!(group.len(), 1);
        assert!(group.leave(1));
        assert!(!group.leave(1));
        assert!(group.is_empty());
    }

    #[test]
    fn per_member_loss_is_independent() {
        let mut group = MulticastGroup::new();
        for m in 0..4 {
            group.join(m);
        }
        let ch = ChannelModel::lossy(0.5);
        let mut rng = seeded(9);
        let mut lost_counts = [0u32; 4];
        for _ in 0..500 {
            for d in group.send(100, SimTime::ZERO, &ch, &mut rng) {
                if d.lost {
                    lost_counts[d.member as usize] += 1;
                }
            }
        }
        // Every member loses roughly half, not all-or-nothing.
        for (m, &c) in lost_counts.iter().enumerate() {
            assert!((150..350).contains(&c), "member {m} lost {c}/500");
        }
    }

    #[test]
    fn savings_grow_linearly_with_members() {
        let mut group = MulticastGroup::new();
        let mut rng = seeded(4);
        let ch = ChannelModel::wifi_80211n();
        group.join(0);
        group.send(1000, SimTime::ZERO, &ch, &mut rng);
        assert!((group.savings_factor() - 1.0).abs() < 1e-12);
        for m in 1..5 {
            group.join(m);
        }
        group.send(1000, SimTime::ZERO, &ch, &mut rng);
        // 1000*1 + 1000*5 = 6000 equivalent over 2000 sent.
        assert!((group.savings_factor() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_group_send_is_harmless() {
        let mut group = MulticastGroup::new();
        let mut rng = seeded(2);
        let out = group.send(500, SimTime::ZERO, &ChannelModel::bluetooth(), &mut rng);
        assert!(out.is_empty());
    }
}
