//! Host-time (wall-clock) scoped profiler with allocation attribution.
//!
//! Everything else in this crate measures *sim time* — the modeled
//! phone and pool. This module measures the simulator's own cost on
//! the host: where wall-clock nanoseconds and heap allocations go
//! while a session runs. It exists so that hot-path rework (zero-copy
//! serialization, parallel Turbo encode) can be judged against real
//! numbers instead of intuition.
//!
//! Three pieces:
//!
//! * [`HostProfiler`] — an explicit-scope-stack profiler. Scopes are
//!   opened with [`enter`] (or the [`prof_scope!`] macro) using names
//!   from [`crate::names::host`]; the RAII guard aggregates elapsed
//!   wall time into the *collapsed call path* (the full stack of open
//!   scope names), so a snapshot can be rendered as a top-N cost table
//!   ([`HostProfileSnapshot::render_top`]) or exported as
//!   flamegraph.pl-compatible collapsed-stack text
//!   ([`crate::flame::collapsed_stack`]).
//! * A **counting global allocator**, compiled only under the
//!   `host-prof` feature: a zero-overhead-when-absent wrapper around
//!   the system allocator that charges every allocation to the
//!   innermost open scope via a fixed static table (the allocation
//!   path itself never allocates or locks).
//! * A **thread-local install point** ([`install`]) so hot-path code in
//!   other crates can call `prof::enter(name)` without any handle
//!   threading: with no profiler installed the call is one TLS read
//!   and a branch.
//!
//! Single-threaded by design: the engine loop owns the profiler, and
//! scope nesting is tracked per install. Guards must drop in LIFO
//! order (the natural RAII order).

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Maximum distinct scope names trackable by the allocation table.
/// Names past the cap still profile wall time; their allocations fall
/// into the shared overflow slot.
pub const MAX_SCOPES: usize = 64;

/// Per-scope allocation counts, indexed by scope slot. Slot 0 is the
/// "unscoped" catch-all; the last slot absorbs name-table overflow.
static SCOPE_ALLOCS: [AtomicU64; MAX_SCOPES] = [const { AtomicU64::new(0) }; MAX_SCOPES];
static SCOPE_ALLOC_BYTES: [AtomicU64; MAX_SCOPES] = [const { AtomicU64::new(0) }; MAX_SCOPES];

/// Process-wide allocation totals (only advance under `host-prof`).
static TOTAL_ALLOCS: AtomicU64 = AtomicU64::new(0);
static TOTAL_ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// Scope-name table: slot `i` holds the name registered for slot
/// `i + 1` (slot 0 is reserved for "unscoped" and has no name).
static SCOPE_NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

thread_local! {
    /// The profiler receiving this thread's scopes, if any.
    static ACTIVE: RefCell<Option<HostProfiler>> = const { RefCell::new(None) };
    /// Slot of the innermost open scope — what the allocator charges.
    static CURRENT_SCOPE: Cell<usize> = const { Cell::new(0) };
}

/// Whether the counting allocator is compiled into this build.
pub const fn alloc_tracking_enabled() -> bool {
    cfg!(feature = "host-prof")
}

#[cfg(feature = "host-prof")]
mod counting_alloc {
    use super::{
        Ordering, CURRENT_SCOPE, MAX_SCOPES, SCOPE_ALLOCS, SCOPE_ALLOC_BYTES, TOTAL_ALLOCS,
        TOTAL_ALLOC_BYTES,
    };
    use std::alloc::{GlobalAlloc, Layout, System};

    /// System-allocator wrapper charging each allocation to the
    /// innermost open profiler scope. The accounting path is atomics
    /// plus one const-initialized TLS read — it never allocates, so it
    /// cannot recurse.
    pub struct CountingAllocator;

    fn charge(bytes: usize) {
        let slot = CURRENT_SCOPE.with(|c| c.get()).min(MAX_SCOPES - 1);
        SCOPE_ALLOCS[slot].fetch_add(1, Ordering::Relaxed);
        SCOPE_ALLOC_BYTES[slot].fetch_add(bytes as u64, Ordering::Relaxed);
        TOTAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
        TOTAL_ALLOC_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = unsafe { System.alloc(layout) };
            if !p.is_null() {
                charge(layout.size());
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = unsafe { System.realloc(ptr, layout, new_size) };
            if !p.is_null() && new_size > layout.size() {
                // Count only the grown tail: a realloc is one logical
                // allocation event for the extra bytes.
                charge(new_size - layout.size());
            }
            p
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAllocator = CountingAllocator;
}

/// Resolves `name` to its allocation-table slot, registering it on
/// first use. Slot 0 is never handed out (it is the unscoped slot).
fn scope_slot(name: &'static str) -> usize {
    let mut names = SCOPE_NAMES.lock().expect("scope name table poisoned");
    if let Some(pos) = names
        .iter()
        .position(|&n| std::ptr::eq(n, name) || n == name)
    {
        return pos + 1;
    }
    if names.len() + 1 >= MAX_SCOPES {
        return MAX_SCOPES - 1; // overflow slot
    }
    names.push(name);
    names.len()
}

/// Looks up the name registered for `slot` (None for the reserved
/// unscoped/overflow slots with no registration).
fn slot_name(slot: usize) -> Option<&'static str> {
    let names = SCOPE_NAMES.lock().expect("scope name table poisoned");
    slot.checked_sub(1).and_then(|i| names.get(i).copied())
}

/// Wall-time and allocation totals for one collapsed call path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct PathStats {
    calls: u64,
    total_ns: u64,
    allocs: u64,
    alloc_bytes: u64,
}

#[derive(Default)]
struct ProfState {
    /// Slots of the currently open scopes, outermost first.
    stack: Vec<usize>,
    /// Aggregated stats per collapsed path (stack of slots).
    paths: BTreeMap<Vec<usize>, PathStats>,
}

struct Inner {
    started: Instant,
    allocs_at_start: u64,
    alloc_bytes_at_start: u64,
    /// Per-slot counter baselines, so allocation-only scopes (slots
    /// that never open a timed guard) can report their delta since the
    /// profiler was created.
    slot_allocs_at_start: [u64; MAX_SCOPES],
    slot_bytes_at_start: [u64; MAX_SCOPES],
    state: Mutex<ProfState>,
}

/// The host-time profiler. Cheaply clonable (an `Arc`); install it on
/// the engine thread with [`install`] and take a
/// [`HostProfileSnapshot`] at teardown.
#[derive(Clone)]
pub struct HostProfiler {
    inner: Arc<Inner>,
}

impl Default for HostProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for HostProfiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostProfiler")
            .field("wall_secs", &self.inner.started.elapsed().as_secs_f64())
            .finish()
    }
}

impl HostProfiler {
    /// Creates a profiler; the wall clock starts now.
    pub fn new() -> Self {
        let mut slot_allocs_at_start = [0u64; MAX_SCOPES];
        let mut slot_bytes_at_start = [0u64; MAX_SCOPES];
        for i in 0..MAX_SCOPES {
            slot_allocs_at_start[i] = SCOPE_ALLOCS[i].load(Ordering::Relaxed);
            slot_bytes_at_start[i] = SCOPE_ALLOC_BYTES[i].load(Ordering::Relaxed);
        }
        HostProfiler {
            inner: Arc::new(Inner {
                started: Instant::now(),
                allocs_at_start: TOTAL_ALLOCS.load(Ordering::Relaxed),
                alloc_bytes_at_start: TOTAL_ALLOC_BYTES.load(Ordering::Relaxed),
                slot_allocs_at_start,
                slot_bytes_at_start,
                state: Mutex::new(ProfState::default()),
            }),
        }
    }

    /// Opens a scope on this profiler directly (most callers use the
    /// free function [`enter`] against the installed profiler).
    pub fn begin(&self, name: &'static str) -> ScopeGuard {
        let slot = scope_slot(name);
        self.inner
            .state
            .lock()
            .expect("profiler state poisoned")
            .stack
            .push(slot);
        let prev_scope = CURRENT_SCOPE.with(|c| c.replace(slot));
        ScopeGuard {
            prof: self.clone(),
            slot,
            prev_scope,
            allocs0: SCOPE_ALLOCS[slot].load(Ordering::Relaxed),
            bytes0: SCOPE_ALLOC_BYTES[slot].load(Ordering::Relaxed),
            start: Instant::now(),
        }
    }

    /// Wall seconds since the profiler was created.
    pub fn wall_secs(&self) -> f64 {
        self.inner.started.elapsed().as_secs_f64()
    }

    /// Takes a point-in-time copy of every collapsed path, with
    /// self-time derived from the path tree.
    pub fn snapshot(&self) -> HostProfileSnapshot {
        let state = self.inner.state.lock().expect("profiler state poisoned");
        let mut paths: Vec<ProfPath> = Vec::with_capacity(state.paths.len());
        for (key, stats) in &state.paths {
            // Self time/allocs = this path's totals minus its direct
            // children's. Children sort immediately after their parent
            // in the BTreeMap, but a range scan is simpler than prefix
            // iteration games at this (tiny) table size.
            let mut child_ns = 0u64;
            for (other, os) in &state.paths {
                if other.len() == key.len() + 1 && other.starts_with(key) {
                    child_ns += os.total_ns;
                }
            }
            let path: Vec<&'static str> = key
                .iter()
                .map(|&slot| slot_name(slot).unwrap_or("host.overflow"))
                .collect();
            paths.push(ProfPath {
                path,
                calls: stats.calls,
                total_ns: stats.total_ns,
                self_ns: stats.total_ns.saturating_sub(child_ns),
                // Slot deltas are already self-attribution: the
                // allocator charges the innermost open scope, so a
                // child's allocations never advance the parent's slot
                // while the child is open.
                self_allocs: stats.allocs,
                self_alloc_bytes: stats.alloc_bytes,
            });
        }
        // Allocation-only scopes ([`prof_alloc_scope!`]) never open a
        // timed guard, so no collapsed path carries their slot. Surface
        // their counter deltas as synthetic single-frame paths with
        // zero wall time, keeping the heap churn of million-call paths
        // visible in the table and the flamegraph export.
        if alloc_tracking_enabled() {
            for slot in 1..MAX_SCOPES - 1 {
                let Some(name) = slot_name(slot) else {
                    continue;
                };
                if state.paths.keys().any(|k| k.contains(&slot)) {
                    continue;
                }
                let allocs = SCOPE_ALLOCS[slot]
                    .load(Ordering::Relaxed)
                    .saturating_sub(self.inner.slot_allocs_at_start[slot]);
                let bytes = SCOPE_ALLOC_BYTES[slot]
                    .load(Ordering::Relaxed)
                    .saturating_sub(self.inner.slot_bytes_at_start[slot]);
                if allocs == 0 && bytes == 0 {
                    continue;
                }
                paths.push(ProfPath {
                    path: vec![name],
                    calls: 0,
                    total_ns: 0,
                    self_ns: 0,
                    self_allocs: allocs,
                    self_alloc_bytes: bytes,
                });
            }
        }
        HostProfileSnapshot {
            wall_secs: self.wall_secs(),
            total_allocs: TOTAL_ALLOCS
                .load(Ordering::Relaxed)
                .saturating_sub(self.inner.allocs_at_start),
            total_alloc_bytes: TOTAL_ALLOC_BYTES
                .load(Ordering::Relaxed)
                .saturating_sub(self.inner.alloc_bytes_at_start),
            alloc_tracking: alloc_tracking_enabled(),
            paths,
        }
    }
}

/// Process-wide kill switch, default on. Turning it off makes
/// [`install`] a no-op, so harnesses can time an unprofiled run of the
/// same code path to measure the profiler's own overhead.
static ENABLED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(true);

/// Enables or disables profiler installation process-wide. Scopes on an
/// already-installed profiler keep recording; only future [`install`]
/// calls observe the switch.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Installs `profiler` as this thread's scope sink; the previous
/// installation (usually none) is restored when the guard drops. With
/// the process-wide switch off ([`set_enabled`]) nothing is installed
/// and the guard restores nothing.
pub fn install(profiler: &HostProfiler) -> InstallGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return InstallGuard {
            prev: None,
            installed: false,
        };
    }
    let prev = ACTIVE.with(|a| a.borrow_mut().replace(profiler.clone()));
    InstallGuard {
        prev,
        installed: true,
    }
}

/// Restores the previously installed profiler on drop.
pub struct InstallGuard {
    prev: Option<HostProfiler>,
    installed: bool,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        if !self.installed {
            return;
        }
        let prev = self.prev.take();
        ACTIVE.with(|a| *a.borrow_mut() = prev);
    }
}

/// Opens a scope on the installed profiler. Returns `None` — at the
/// cost of one TLS read and a branch — when no profiler is installed,
/// which is the permanent state of every non-profiled run.
pub fn enter(name: &'static str) -> Option<ScopeGuard> {
    let prof = ACTIVE.with(|a| a.borrow().clone())?;
    Some(prof.begin(name))
}

/// Opens a host-profiler scope for the rest of the enclosing block.
///
/// ```
/// use gbooster_telemetry::{names, prof, prof_scope};
/// let profiler = prof::HostProfiler::new();
/// let _install = prof::install(&profiler);
/// {
///     prof_scope!(names::host::TICK);
///     // ... work measured under host.tick ...
/// }
/// assert_eq!(profiler.snapshot().scope_names(), vec![names::host::TICK]);
/// ```
#[macro_export]
macro_rules! prof_scope {
    ($name:expr) => {
        let _prof_guard = $crate::prof::enter($name);
    };
}

/// Resolves and caches `name`'s allocation slot at a call site (the
/// [`prof_alloc_scope!`] expansion's `OnceLock`).
#[doc(hidden)]
pub fn cached_slot(name: &'static str, cell: &std::sync::OnceLock<usize>) -> usize {
    *cell.get_or_init(|| scope_slot(name))
}

/// Re-points allocation attribution (never wall time) at `slot` for
/// the guard's lifetime. This is the million-calls-per-second variant
/// of a scope: two thread-local cell swaps, no clock read, no lock —
/// cheap enough for per-command hot paths where a timed guard's clock
/// reads and path bookkeeping would dominate the work being measured.
pub fn enter_alloc(slot: usize) -> AllocScopeGuard {
    AllocScopeGuard {
        prev: CURRENT_SCOPE.with(|c| c.replace(slot.min(MAX_SCOPES - 1))),
    }
}

/// Restores the previous allocation-attribution target on drop.
pub struct AllocScopeGuard {
    prev: usize,
}

impl Drop for AllocScopeGuard {
    fn drop(&mut self) {
        CURRENT_SCOPE.with(|c| c.set(self.prev));
    }
}

/// Attributes the enclosing block's allocations (not its wall time) to
/// `$name`. Use on per-command paths called millions of times per
/// session, where [`prof_scope!`]'s clock reads would distort the
/// measurement; the scope's heap churn surfaces in the snapshot as a
/// zero-wall-time path. Use a name that no timed scope shares, and at
/// most one per block (the expansion declares a static).
#[macro_export]
macro_rules! prof_alloc_scope {
    ($name:expr) => {
        static __PROF_ALLOC_SLOT: ::std::sync::OnceLock<usize> = ::std::sync::OnceLock::new();
        let _prof_alloc_guard =
            $crate::prof::enter_alloc($crate::prof::cached_slot($name, &__PROF_ALLOC_SLOT));
    };
}

/// RAII scope handle: measures wall time from creation to drop and
/// charges the scope's allocation-slot delta to its collapsed path.
pub struct ScopeGuard {
    prof: HostProfiler,
    slot: usize,
    prev_scope: usize,
    allocs0: u64,
    bytes0: u64,
    start: Instant,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        let elapsed_ns = self.start.elapsed().as_nanos() as u64;
        CURRENT_SCOPE.with(|c| c.set(self.prev_scope));
        let allocs = SCOPE_ALLOCS[self.slot]
            .load(Ordering::Relaxed)
            .wrapping_sub(self.allocs0);
        let bytes = SCOPE_ALLOC_BYTES[self.slot]
            .load(Ordering::Relaxed)
            .wrapping_sub(self.bytes0);
        let mut state = self
            .prof
            .inner
            .state
            .lock()
            .expect("profiler state poisoned");
        debug_assert_eq!(
            state.stack.last().copied(),
            Some(self.slot),
            "profiler scopes must drop in LIFO order"
        );
        let key = state.stack.clone();
        let entry = state.paths.entry(key).or_default();
        entry.calls += 1;
        entry.total_ns += elapsed_ns;
        entry.allocs += allocs;
        entry.alloc_bytes += bytes;
        state.stack.pop();
    }
}

/// One collapsed call path in a [`HostProfileSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfPath {
    /// Scope names, outermost first.
    pub path: Vec<&'static str>,
    /// Times the path's leaf scope completed.
    pub calls: u64,
    /// Wall nanoseconds inside the leaf scope, children included.
    pub total_ns: u64,
    /// Wall nanoseconds minus direct children's totals.
    pub self_ns: u64,
    /// Heap allocations charged to the leaf scope itself (0 without
    /// the `host-prof` allocator).
    pub self_allocs: u64,
    /// Heap bytes charged to the leaf scope itself.
    pub self_alloc_bytes: u64,
}

impl ProfPath {
    /// The leaf scope name.
    pub fn leaf(&self) -> &'static str {
        self.path.last().copied().unwrap_or("?")
    }
}

/// Subsystem groups the per-frame host-cost split is reported under.
pub const GROUPS: [&str; 4] = ["serialize", "codec", "net", "core"];

/// Maps a scope name onto its reporting group for the
/// `host.ns_per_frame.*` split. Unknown scopes count as engine core.
pub fn scope_group(name: &str) -> &'static str {
    use crate::names::host;
    match name {
        host::GLES_ENCODE | host::GLES_DECODE => "serialize",
        host::CACHE
        | host::LZ4
        | host::LZ4_DECODE
        | host::TURBO_ENCODE
        | host::TURBO_DECODE
        | host::JPEG
        | host::JPEG_DECODE => "codec",
        host::TRANSPORT_SEND | host::TRANSPORT_RECV | host::RUDP | host::CHANNEL => "net",
        _ => "core",
    }
}

/// A point-in-time copy of a [`HostProfiler`]'s aggregated paths.
#[derive(Clone, Debug, Default)]
pub struct HostProfileSnapshot {
    /// Wall seconds since the profiler was created.
    pub wall_secs: f64,
    /// Heap allocations process-wide over the profiler's lifetime
    /// (0 without `host-prof`).
    pub total_allocs: u64,
    /// Heap bytes process-wide over the profiler's lifetime.
    pub total_alloc_bytes: u64,
    /// Whether the counting allocator was compiled in.
    pub alloc_tracking: bool,
    /// Every collapsed path observed, in path order.
    pub paths: Vec<ProfPath>,
}

impl HostProfileSnapshot {
    /// Distinct leaf scope names observed, sorted.
    pub fn scope_names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = self.paths.iter().map(|p| p.leaf()).collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Sum of self-time across every path — the profiled wall total.
    /// Always ≤ the measured session wall time (what the collapsed
    /// export reconciliation checks).
    pub fn profiled_ns(&self) -> u64 {
        self.paths.iter().map(|p| p.self_ns).sum()
    }

    /// Self-nanoseconds summed per reporting group ([`scope_group`]).
    pub fn group_self_ns(&self) -> BTreeMap<&'static str, u64> {
        let mut out: BTreeMap<&'static str, u64> = GROUPS.iter().map(|&g| (g, 0)).collect();
        for p in &self.paths {
            *out.entry(scope_group(p.leaf())).or_insert(0) += p.self_ns;
        }
        out
    }

    /// Renders the top-`n` host-cost table (by self time), mirroring
    /// the attribution tables on `SessionReport`.
    pub fn render_top(&self, n: usize) -> String {
        let mut rows: Vec<&ProfPath> = self.paths.iter().collect();
        rows.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.path.cmp(&b.path)));
        let mut out = String::new();
        out.push_str("=== host cost (wall clock) ===\n");
        out.push_str(&format!(
            "{:<46} {:>9} {:>11} {:>11} {:>10} {:>12}\n",
            "scope path", "calls", "self µs", "total µs", "allocs", "alloc bytes"
        ));
        for p in rows.iter().take(n) {
            out.push_str(&format!(
                "{:<46} {:>9} {:>11} {:>11} {:>10} {:>12}\n",
                p.path.join(";"),
                p.calls,
                p.self_ns / 1_000,
                p.total_ns / 1_000,
                p.self_allocs,
                p.self_alloc_bytes,
            ));
        }
        out.push_str(&format!(
            "profiled {} µs of {} µs wall; {} allocs / {} bytes process-wide{}\n",
            self.profiled_ns() / 1_000,
            (self.wall_secs * 1e6) as u64,
            self.total_allocs,
            self.total_alloc_bytes,
            if self.alloc_tracking {
                ""
            } else {
                " (alloc tracking off: build with --features host-prof)"
            }
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names;

    fn spin_at_least(ns: u64) {
        let start = Instant::now();
        while (start.elapsed().as_nanos() as u64) < ns {
            std::hint::black_box(0u64);
        }
    }

    #[test]
    fn no_profiler_installed_means_no_scopes() {
        assert!(enter(names::host::TICK).is_none());
    }

    #[test]
    fn nested_scopes_collapse_into_paths_with_self_time() {
        let prof = HostProfiler::new();
        let _install = install(&prof);
        {
            prof_scope!(names::host::SESSION);
            for _ in 0..3 {
                prof_scope!(names::host::TICK);
                spin_at_least(200_000);
                {
                    prof_scope!(names::host::FORWARD);
                    spin_at_least(100_000);
                }
            }
        }
        let snap = prof.snapshot();
        let find = |leaf: &str| {
            snap.paths
                .iter()
                .find(|p| p.leaf() == leaf)
                .unwrap_or_else(|| panic!("missing path for {leaf}"))
        };
        let session = find(names::host::SESSION);
        let tick = find(names::host::TICK);
        let forward = find(names::host::FORWARD);
        assert_eq!(session.path, vec![names::host::SESSION]);
        assert_eq!(tick.path, vec![names::host::SESSION, names::host::TICK]);
        assert_eq!(
            forward.path,
            vec![
                names::host::SESSION,
                names::host::TICK,
                names::host::FORWARD
            ]
        );
        assert_eq!(tick.calls, 3);
        assert_eq!(forward.calls, 3);
        // Totals nest: session ⊇ tick ⊇ forward.
        assert!(session.total_ns >= tick.total_ns);
        assert!(tick.total_ns >= forward.total_ns);
        // Self excludes children: tick spun ~600 µs itself on top of
        // forward's ~300 µs.
        assert!(tick.self_ns >= 500_000, "tick self {}", tick.self_ns);
        assert_eq!(tick.self_ns, tick.total_ns - forward.total_ns);
        // Profiled self-time reconciles against the wall clock.
        assert!(snap.profiled_ns() as f64 <= snap.wall_secs * 1e9);
    }

    #[test]
    fn install_guard_restores_the_previous_profiler() {
        let outer = HostProfiler::new();
        let inner = HostProfiler::new();
        let _outer_install = install(&outer);
        {
            let _inner_install = install(&inner);
            prof_scope!(names::host::ISSUE);
        }
        {
            prof_scope!(names::host::RETIRE);
        }
        assert_eq!(inner.snapshot().scope_names(), vec![names::host::ISSUE]);
        assert_eq!(outer.snapshot().scope_names(), vec![names::host::RETIRE]);
    }

    #[test]
    fn group_split_covers_the_vocabulary() {
        assert_eq!(scope_group(names::host::GLES_ENCODE), "serialize");
        assert_eq!(scope_group(names::host::LZ4), "codec");
        assert_eq!(scope_group(names::host::RUDP), "net");
        assert_eq!(scope_group(names::host::TICK), "core");
        assert_eq!(scope_group("anything.else"), "core");
    }

    #[test]
    fn render_top_mentions_cost_columns() {
        let prof = HostProfiler::new();
        let _install = install(&prof);
        {
            prof_scope!(names::host::PRESENT);
            spin_at_least(50_000);
        }
        let table = prof.snapshot().render_top(5);
        assert!(table.contains("host cost"));
        assert!(table.contains(names::host::PRESENT));
        assert!(table.contains("self µs"));
        assert!(table.contains("alloc bytes"));
    }

    #[cfg(feature = "host-prof")]
    #[test]
    fn counting_allocator_charges_the_innermost_scope() {
        let prof = HostProfiler::new();
        let _install = install(&prof);
        {
            prof_scope!(names::host::GLES_ENCODE);
            let v: Vec<u8> = Vec::with_capacity(1 << 16);
            std::hint::black_box(&v);
        }
        let snap = prof.snapshot();
        assert!(snap.alloc_tracking);
        let p = snap
            .paths
            .iter()
            .find(|p| p.leaf() == names::host::GLES_ENCODE)
            .expect("scope recorded");
        assert!(p.self_allocs >= 1, "allocs {}", p.self_allocs);
        assert!(
            p.self_alloc_bytes >= 1 << 16,
            "bytes {}",
            p.self_alloc_bytes
        );
        assert!(snap.total_alloc_bytes >= p.self_alloc_bytes);
    }

    #[test]
    fn alloc_scope_restores_the_previous_target() {
        let prof = HostProfiler::new();
        let _install = install(&prof);
        prof_scope!(names::host::TICK);
        let tick_slot = CURRENT_SCOPE.with(Cell::get);
        {
            crate::prof_alloc_scope!(names::host::CACHE);
            assert_ne!(CURRENT_SCOPE.with(Cell::get), tick_slot);
        }
        assert_eq!(CURRENT_SCOPE.with(Cell::get), tick_slot);
    }

    #[cfg(feature = "host-prof")]
    #[test]
    fn alloc_only_scopes_surface_as_zero_wall_paths() {
        let prof = HostProfiler::new();
        let _install = install(&prof);
        {
            // A dedicated name no timed scope uses, so the churn can
            // only reach the snapshot through the synthetic path.
            crate::prof_alloc_scope!(names::host::JPEG);
            let v: Vec<u8> = Vec::with_capacity(1 << 14);
            std::hint::black_box(&v);
        }
        let snap = prof.snapshot();
        let p = snap
            .paths
            .iter()
            .find(|p| p.path == [names::host::JPEG])
            .expect("alloc-only scope surfaces a synthetic path");
        assert_eq!((p.calls, p.total_ns, p.self_ns), (0, 0, 0));
        assert!(
            p.self_alloc_bytes >= 1 << 14,
            "bytes {}",
            p.self_alloc_bytes
        );
    }
}
