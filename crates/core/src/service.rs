//! The service-device runtime (Section IV-C).
//!
//! "Upon receiving the graphics commands, the service device delivers them
//! to its local GPU for execution. … When the computation is completed,
//! the rendered images are transmitted back to the user device."
//!
//! [`ServiceRuntime`] couples a [`ServiceReceiver`] (wire → commands), a
//! [`GlContext`] replica (state consistency, Section VI-B), a GPU cost
//! model, and the Turbo encode-cost model. The actively-cooled service
//! GPU never thermally throttles — the paper's explanation for GBooster's
//! improved FPS *stability*.

use gbooster_gles::command::GlCommand;
use gbooster_gles::state::GlContext;
use gbooster_sim::device::DeviceSpec;
use gbooster_sim::gpu::GpuModel;
use gbooster_sim::time::{SimDuration, SimTime};
use gbooster_telemetry::{names, Counter, Histogram, Registry, RemoteSpanLog, TraceContext};

use crate::error::GBoosterError;
use crate::forward::ServiceReceiver;

// The Turbo encode-cost model lives with the codec; re-exported here so
// existing consumers keep their import paths.
pub use gbooster_codec::turbo::{
    ENCODE_COMPRESSION, ENCODE_HEADER_BYTES, ENCODE_JPEG_PIXELS_PER_SEC, ENCODE_SCAN_PIXELS_PER_SEC,
};

/// Outcome of replaying one frame's commands on a service device.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Commands applied to the context replica.
    pub commands_applied: u32,
    /// Draw calls executed (only on the dispatched device).
    pub draws_executed: u32,
    /// Commands refused by the validation pass (out-of-bounds buffer or
    /// texture references); only [`ServiceRuntime::apply_frame_validated`]
    /// produces a non-zero count.
    pub commands_rejected: u32,
}

/// Per-session command-stream validation at the service boundary.
///
/// Once streams from many apps share one node (the multi-tenant
/// fabric), a malformed or hostile stream must not be able to corrupt
/// the shared replica or abort every co-tenant's session: a reference
/// that writes outside its object's storage is *rejected* — skipped and
/// counted under [`names::service::REJECTED_COMMANDS`] — instead of
/// propagating a session-fatal state-machine error. The check mirrors
/// the bounds the GL state machine itself enforces, evaluated *before*
/// apply so a bad command is dropped without side effects.
fn command_in_bounds(ctx: &GlContext, cmd: &GlCommand) -> bool {
    match cmd {
        GlCommand::BufferSubData {
            target,
            offset,
            data,
        } => {
            let id = ctx.buffer_binding(*target);
            match ctx.buffer(id) {
                Ok(buf) => (*offset as usize).saturating_add(data.len()) <= buf.data.len(),
                Err(_) => false,
            }
        }
        GlCommand::TexSubImage2D {
            x,
            y,
            width,
            height,
            ..
        } => {
            let Some(id) = ctx.texture_binding() else {
                return false;
            };
            match ctx.texture(id) {
                Ok(tex) => {
                    x.saturating_add(*width) <= tex.width && y.saturating_add(*height) <= tex.height
                }
                Err(_) => false,
            }
        }
        _ => true,
    }
}

/// One service device's GBooster runtime.
#[derive(Debug)]
pub struct ServiceRuntime {
    spec: DeviceSpec,
    gpu: GpuModel,
    context: GlContext,
    receiver: ServiceReceiver,
    frames_rendered: u64,
    telemetry: Option<(Counter, Histogram)>,
    rejected: Option<Counter>,
    /// Distributed-tracing capture: spans this device records are
    /// stamped on *its* clock (sim time shifted by `clock_skew_us`) and
    /// shipped back tagged with the originating [`TraceContext`].
    remote_log: Option<RemoteSpanLog>,
    clock_skew_us: i64,
}

impl ServiceRuntime {
    /// Boots the runtime on `spec`.
    pub fn new(spec: DeviceSpec) -> Self {
        ServiceRuntime {
            gpu: GpuModel::new(spec.gpu.clone()),
            spec,
            context: GlContext::new(),
            receiver: ServiceReceiver::new(),
            frames_rendered: 0,
            telemetry: None,
            rejected: None,
            remote_log: None,
            clock_skew_us: 0,
        }
    }

    /// Attaches the span log this device appends its service-clock spans
    /// to, and the ground-truth (service − user) clock skew in µs. The
    /// skew shapes only the recorded timestamps; nothing on the user
    /// device may read it — stitching must rely on the estimated offset.
    pub fn attach_remote_log(&mut self, log: RemoteSpanLog, clock_skew_us: i64) {
        self.remote_log = Some(log);
        self.clock_skew_us = clock_skew_us;
    }

    /// Records one service-side span for the frame identified by `ctx`.
    /// `start`/`end` are the simulator's ground-truth instants; the span
    /// is stamped as this device's clock would see them.
    pub fn record_remote_span(
        &self,
        ctx: TraceContext,
        name: &'static str,
        start: SimTime,
        end: SimTime,
    ) {
        let Some(log) = &self.remote_log else { return };
        if ctx.is_none() {
            return;
        }
        log.record(gbooster_telemetry::RemoteSpan {
            ctx,
            name,
            start_us: start.as_micros() as i64 + self.clock_skew_us,
            end_us: end.as_micros() as i64 + self.clock_skew_us,
        });
    }

    /// Mirrors service-side activity into `registry`: applied-command
    /// counts under [`names::service::COMMANDS_APPLIED`] and modeled
    /// Turbo encode times under [`names::service::ENCODE_TIME`].
    pub fn attach_registry(&mut self, registry: &Registry) {
        self.telemetry = Some((
            registry.counter(names::service::COMMANDS_APPLIED),
            registry.histogram(names::service::ENCODE_TIME),
        ));
        self.rejected = Some(registry.counter(names::service::REJECTED_COMMANDS));
    }

    /// The hardware description.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// The GL context replica.
    pub fn context(&self) -> &GlContext {
        &self.context
    }

    /// Frames this device has rendered.
    pub fn frames_rendered(&self) -> u64 {
        self.frames_rendered
    }

    /// Decodes a wire frame into commands (does not apply them).
    ///
    /// # Errors
    ///
    /// Propagates receiver decode errors.
    pub fn decode(&mut self, wire: &[u8]) -> Result<Vec<GlCommand>, GBoosterError> {
        self.receiver.receive(wire)
    }

    /// Applies one frame of commands to this device's context replica.
    ///
    /// With `execute_draws = false` the device only ingests state-mutating
    /// commands (it is a replica, not the dispatch target); draws and
    /// frame boundaries are skipped, exactly the multicast-replication
    /// split of Section VI-B.
    ///
    /// # Errors
    ///
    /// Propagates GL state-machine errors.
    pub fn apply_frame(
        &mut self,
        commands: &[GlCommand],
        execute_draws: bool,
    ) -> Result<ReplayStats, GBoosterError> {
        self.apply_frame_inner(commands, execute_draws, false)
    }

    fn apply_frame_inner(
        &mut self,
        commands: &[GlCommand],
        execute_draws: bool,
        validate: bool,
    ) -> Result<ReplayStats, GBoosterError> {
        gbooster_telemetry::prof_scope!(names::host::REPLAY);
        let mut stats = ReplayStats::default();
        for cmd in commands {
            // Validation interleaves with apply: bounds depend on state
            // earlier commands of this same frame may have created
            // (BufferData before BufferSubData), so each command is
            // checked against the replica exactly as it stands when the
            // command would run.
            if validate && !command_in_bounds(&self.context, cmd) {
                stats.commands_rejected += 1;
                continue;
            }
            if cmd.is_state_mutating() {
                self.context.apply(cmd)?;
                stats.commands_applied += 1;
            } else if execute_draws {
                self.context.apply(cmd)?;
                stats.commands_applied += 1;
                if cmd.is_draw() {
                    stats.draws_executed += 1;
                }
            }
        }
        if execute_draws {
            self.context.end_frame();
            self.frames_rendered += 1;
        }
        if let Some((applied, _)) = &self.telemetry {
            applied.add(stats.commands_applied as u64);
        }
        if stats.commands_rejected > 0 {
            if let Some(c) = &self.rejected {
                c.add(stats.commands_rejected as u64);
            }
        }
        Ok(stats)
    }

    /// [`Self::apply_frame`] behind the per-session validation pass
    /// (arXiv:2111.03065's service-boundary model): each command's
    /// buffer/texture references are bounds-checked against the replica
    /// *before* apply. Out-of-bounds commands are skipped and counted
    /// into [`ReplayStats::commands_rejected`] (and the
    /// [`names::service::REJECTED_COMMANDS`] counter when a registry is
    /// attached) instead of failing the whole session — the replica
    /// never observes them, so its digest matches a stream that never
    /// contained them.
    ///
    /// # Errors
    ///
    /// Propagates GL state-machine errors from the *valid* commands
    /// only.
    pub fn apply_frame_validated(
        &mut self,
        commands: &[GlCommand],
        execute_draws: bool,
    ) -> Result<ReplayStats, GBoosterError> {
        self.apply_frame_inner(commands, execute_draws, true)
    }

    /// Re-executes the draw commands of a frame this device originally
    /// skipped as a replica, because the dispatch target failed and the
    /// frame was re-dispatched here.
    ///
    /// The frame's state-mutating commands were already replicated (every
    /// node ingests them in stream order — Section VI-B), so only the
    /// draws are missing; draws never touch replicated state, which keeps
    /// the replica digests consistent. The context may have advanced past
    /// the frame by the time recovery runs, so draws that no longer apply
    /// (for example against an object a later frame deleted) are skipped
    /// best-effort rather than failing the session — their frame is
    /// already superseded on screen.
    pub fn execute_recovered_draws(&mut self, commands: &[GlCommand]) -> ReplayStats {
        let mut stats = ReplayStats::default();
        for cmd in commands {
            if !cmd.is_state_mutating() && self.context.apply(cmd).is_ok() {
                stats.commands_applied += 1;
                if cmd.is_draw() {
                    stats.draws_executed += 1;
                }
            }
        }
        self.context.end_frame();
        self.frames_rendered += 1;
        if let Some((applied, _)) = &self.telemetry {
            applied.add(stats.commands_applied as u64);
        }
        stats
    }

    /// Render time for a request of `effective_fill` complexity-weighted
    /// pixels on this device's GPU.
    pub fn render_time(&self, effective_fill: u64) -> SimDuration {
        self.gpu.render_time(effective_fill, 1.0)
    }

    /// Turbo encode time for a frame of `frame_pixels` total pixels of
    /// which `changed_pixels` changed.
    pub fn encode_time(&self, frame_pixels: u64, changed_pixels: u64) -> SimDuration {
        let t = SimDuration::from_secs_f64(gbooster_codec::turbo::model_encode_secs(
            frame_pixels,
            changed_pixels,
        ));
        if let Some((_, encode)) = &self.telemetry {
            encode.record_duration(t);
        }
        t
    }

    /// Encoded frame size for `changed_pixels` of RGBA content.
    pub fn encoded_bytes(&self, changed_pixels: u64) -> usize {
        gbooster_codec::turbo::model_encoded_bytes(changed_pixels)
    }

    /// Context digest for replica-consistency checks.
    pub fn state_digest(&self) -> u64 {
        self.context.digest()
    }

    /// One-shot rejoin resync: replaces this device's GL replica with a
    /// restored `snapshot` of the reference state and adopts `receiver`
    /// (a clone of a synchronized peer's decoder, so LRU `Ref` tokens in
    /// subsequent frames resolve). After this call the device is current
    /// without replaying any command history — the wire cost is the
    /// snapshot transfer, accounted by the caller from
    /// `StateSnapshot::wire_bytes`.
    pub fn resync(
        &mut self,
        snapshot: &gbooster_gles::state::StateSnapshot,
        receiver: ServiceReceiver,
    ) {
        self.context = GlContext::restore(snapshot);
        self.receiver = receiver;
    }

    /// Delta-aware resync for a destination that already holds a
    /// replica of `resident` — the title's immutable setup segment,
    /// cached by the shared-segment machinery or surviving a restart
    /// content-addressed on disk. The restored state is identical to a
    /// full [`ServiceRuntime::resync`], but only the per-session delta
    /// travels; the returned value is the billable wire cost
    /// (`StateSnapshot::delta_wire_bytes`), which the caller charges to
    /// the uplink. The bytes *not* shipped belong in
    /// `migrate.snapshot_bytes_saved`.
    pub fn resync_with_resident(
        &mut self,
        snapshot: &gbooster_gles::state::StateSnapshot,
        resident: &gbooster_gles::state::StateSnapshot,
        receiver: ServiceReceiver,
    ) -> u64 {
        self.context = GlContext::restore(snapshot);
        self.receiver = receiver;
        snapshot.delta_wire_bytes(resident)
    }

    /// Advances the service GPU's thermal/energy model (it never throttles
    /// thanks to active cooling; asserted in tests).
    pub fn gpu_tick(&mut self, dt: SimDuration, utilization: f64) {
        self.gpu.step(dt, utilization);
        debug_assert!(
            !self.gpu.is_throttled(),
            "actively-cooled service GPU must not throttle"
        );
    }

    /// True if this device's GPU is currently thermally throttled.
    pub fn is_throttled(&self) -> bool {
        self.gpu.is_throttled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward::CommandForwarder;
    use gbooster_gles::command::ClientMemory;
    use gbooster_workload::genre::GenreProfile;
    use gbooster_workload::tracegen::TraceGenerator;

    fn forwarded_frames(n: usize) -> (Vec<Vec<u8>>, ClientMemory) {
        let mut gen = TraceGenerator::new(GenreProfile::action(), 1.0, 320, 240, 17);
        let mut fw = CommandForwarder::new();
        let mut frames = Vec::new();
        let setup = gen.setup_trace();
        frames.push(
            fw.forward_frame(&setup.commands, gen.client_memory())
                .unwrap()
                .wire,
        );
        for _ in 0..n {
            let f = gen.next_frame(1.0 / 30.0);
            frames.push(
                fw.forward_frame(&f.commands, gen.client_memory())
                    .unwrap()
                    .wire,
            );
        }
        (frames, gen.client_memory().clone())
    }

    #[test]
    fn replicas_reach_identical_state_digests() {
        // Two devices receive the same stream; one executes draws, the
        // other only replicates state. Their context digests must match
        // (Section VI-B's consistency requirement).
        let (frames, _) = forwarded_frames(20);
        let mut executor = ServiceRuntime::new(DeviceSpec::nvidia_shield());
        let mut replica = ServiceRuntime::new(DeviceSpec::minix_neo_u1());
        // Each runtime needs its own receiver cache, so decode with
        // per-device receivers fed the identical byte stream.
        for wire in &frames {
            let cmds_a = executor.decode(wire).unwrap();
            let cmds_b = replica.decode(wire).unwrap();
            assert_eq!(cmds_a, cmds_b);
            executor.apply_frame(&cmds_a, true).unwrap();
            replica.apply_frame(&cmds_b, false).unwrap();
        }
        assert_eq!(executor.state_digest(), replica.state_digest());
        assert_eq!(executor.frames_rendered(), frames.len() as u64);
        assert_eq!(replica.frames_rendered(), 0);
    }

    #[test]
    fn replica_skips_draws() {
        let (frames, _) = forwarded_frames(2);
        let mut replica = ServiceRuntime::new(DeviceSpec::nvidia_shield());
        // Prime with the setup stream, then apply one gameplay frame.
        let setup = replica.decode(&frames[0]).unwrap();
        replica.apply_frame(&setup, false).unwrap();
        let cmds = replica.decode(&frames[1]).unwrap();
        let stats = replica.apply_frame(&cmds, false).unwrap();
        assert_eq!(stats.draws_executed, 0);
        assert!(stats.commands_applied > 0);
    }

    #[test]
    fn resynced_replacement_tracks_the_stream_without_history_replay() {
        let (frames, _) = forwarded_frames(30);
        let mut veteran = ServiceRuntime::new(DeviceSpec::nvidia_shield());
        // The veteran ingests the whole history; cache Refs abound.
        let (head, tail) = frames.split_at(frames.len() - 5);
        for wire in head {
            let cmds = veteran.decode(wire).unwrap();
            veteran.apply_frame(&cmds, true).unwrap();
        }
        // A replacement node joins late: one snapshot + receiver clone,
        // zero history replay.
        let mut rookie = ServiceRuntime::new(DeviceSpec::minix_neo_u1());
        let snap = veteran.context().snapshot();
        rookie.resync(&snap, veteran.receiver.clone());
        assert_eq!(rookie.state_digest(), veteran.state_digest());
        // Both stay in lockstep across the remaining frames, Refs and all.
        for wire in tail {
            let a = veteran.decode(wire).unwrap();
            let b = rookie.decode(wire).unwrap();
            assert_eq!(a, b);
            veteran.apply_frame(&a, true).unwrap();
            rookie.apply_frame(&b, true).unwrap();
        }
        assert_eq!(rookie.state_digest(), veteran.state_digest());
    }

    #[test]
    fn delta_resync_restores_full_state_but_bills_only_the_session_delta() {
        let (frames, _) = forwarded_frames(30);
        let mut source = ServiceRuntime::new(DeviceSpec::nvidia_shield());
        // The destination replicated the same title's setup segment
        // earlier (PR 8 shared segments): it holds the resident base.
        let setup = source.decode(&frames[0]).unwrap();
        source.apply_frame(&setup, true).unwrap();
        let resident = source.context().snapshot();

        // The session then plays 29 warm frames on the source only.
        for wire in &frames[1..] {
            let cmds = source.decode(wire).unwrap();
            source.apply_frame(&cmds, true).unwrap();
        }
        let warm = source.context().snapshot();

        let mut dest = ServiceRuntime::new(DeviceSpec::minix_neo_u1());
        let billed = dest.resync_with_resident(&warm, &resident, source.receiver.clone());

        // State is complete — digest-identical to a full resync…
        assert_eq!(dest.state_digest(), source.state_digest());
        // …but the bill excludes the resident setup segment.
        assert_eq!(billed, warm.delta_wire_bytes(&resident));
        assert!(
            billed < warm.wire_bytes(),
            "delta {billed} must undercut the full snapshot {}",
            warm.wire_bytes()
        );
    }

    #[test]
    fn validation_rejects_out_of_bounds_references_without_poisoning_state() {
        use gbooster_gles::types::{
            BufferId, BufferTarget, BufferUsage, PixelFormat, TextureId, TextureTarget,
        };
        use gbooster_telemetry::Registry;
        use std::sync::Arc;

        let setup = vec![
            GlCommand::GenBuffer(BufferId(1)),
            GlCommand::BindBuffer {
                target: BufferTarget::Array,
                buffer: BufferId(1),
            },
            GlCommand::BufferData {
                target: BufferTarget::Array,
                data: Arc::new(vec![0u8; 16]),
                usage: BufferUsage::StaticDraw,
            },
            GlCommand::GenTexture(TextureId(1)),
            GlCommand::BindTexture {
                target: TextureTarget::Texture2D,
                texture: TextureId(1),
            },
            GlCommand::TexImage2D {
                target: TextureTarget::Texture2D,
                level: 0,
                format: PixelFormat::Rgba8,
                width: 4,
                height: 4,
                data: Arc::new(vec![0u8; 64]),
            },
        ];
        let hostile = vec![
            // 8 + 16 > 16-byte buffer: out of bounds.
            GlCommand::BufferSubData {
                target: BufferTarget::Array,
                offset: 8,
                data: Arc::new(vec![1u8; 16]),
            },
            // 2 + 4 > 4-texel texture edge: out of bounds.
            GlCommand::TexSubImage2D {
                target: TextureTarget::Texture2D,
                level: 0,
                x: 2,
                y: 2,
                width: 4,
                height: 4,
                format: PixelFormat::Rgba8,
                data: Arc::new(vec![0u8; 64]),
            },
            // In bounds: must still be applied.
            GlCommand::BufferSubData {
                target: BufferTarget::Array,
                offset: 0,
                data: Arc::new(vec![7u8; 8]),
            },
        ];

        let registry = Registry::new();
        let mut rt = ServiceRuntime::new(DeviceSpec::nvidia_shield());
        rt.attach_registry(&registry);
        rt.apply_frame_validated(&setup, false).unwrap();
        let stats = rt.apply_frame_validated(&hostile, false).unwrap();
        assert_eq!(stats.commands_rejected, 2, "both OOB writes rejected");
        assert_eq!(stats.commands_applied, 1, "the valid write still lands");
        assert_eq!(
            registry
                .snapshot()
                .counter(names::service::REJECTED_COMMANDS),
            2
        );

        // The replica state must equal a stream that never contained
        // the hostile commands at all.
        let mut clean = ServiceRuntime::new(DeviceSpec::nvidia_shield());
        clean.apply_frame(&setup, false).unwrap();
        clean.apply_frame(&hostile[2..], false).unwrap();
        assert_eq!(rt.state_digest(), clean.state_digest());

        // Without the validation pass the same stream is session-fatal.
        let mut unguarded = ServiceRuntime::new(DeviceSpec::nvidia_shield());
        unguarded.apply_frame(&setup, false).unwrap();
        assert!(unguarded.apply_frame(&hostile, false).is_err());
    }

    #[test]
    fn validation_accepts_storage_created_earlier_in_the_same_frame() {
        use gbooster_gles::types::{BufferId, BufferTarget, BufferUsage};
        use std::sync::Arc;

        // BufferData legalizes the BufferSubData that follows it within
        // one frame: validation must track the evolving replica, not the
        // pre-frame snapshot.
        let frame = vec![
            GlCommand::GenBuffer(BufferId(9)),
            GlCommand::BindBuffer {
                target: BufferTarget::Array,
                buffer: BufferId(9),
            },
            GlCommand::BufferData {
                target: BufferTarget::Array,
                data: Arc::new(vec![0u8; 32]),
                usage: BufferUsage::DynamicDraw,
            },
            GlCommand::BufferSubData {
                target: BufferTarget::Array,
                offset: 16,
                data: Arc::new(vec![3u8; 16]),
            },
        ];
        let mut rt = ServiceRuntime::new(DeviceSpec::nvidia_shield());
        let stats = rt.apply_frame_validated(&frame, false).unwrap();
        assert_eq!(stats.commands_rejected, 0);
        assert_eq!(stats.commands_applied, 4);
    }

    #[test]
    fn encode_cost_matches_turbo_envelope() {
        let rt = ServiceRuntime::new(DeviceSpec::nvidia_shield());
        // 720p frame, 45% changed: ~10.2 ms scan + ~10.4 ms jpeg.
        let t = rt.encode_time(1280 * 720, 414_000);
        assert!(
            (t.as_millis_f64() - 20.6).abs() < 1.0,
            "encode {:.1} ms",
            t.as_millis_f64()
        );
        // Static frame: scan only.
        let t0 = rt.encode_time(1280 * 720, 0);
        assert!((t0.as_millis_f64() - 10.2).abs() < 0.5);
    }

    #[test]
    fn encoded_bytes_follow_25_to_1() {
        let rt = ServiceRuntime::new(DeviceSpec::nvidia_shield());
        let bytes = rt.encoded_bytes(250_000);
        assert_eq!(bytes, 40_000 + ENCODE_HEADER_BYTES);
    }

    #[test]
    fn shield_renders_action_frames_in_single_digit_ms() {
        let rt = ServiceRuntime::new(DeviceSpec::nvidia_shield());
        let fill = GenreProfile::action().effective_fill(1280, 720, 1.0);
        let t = rt.render_time(fill);
        assert!(
            t.as_millis_f64() < 5.0,
            "render {:.2} ms",
            t.as_millis_f64()
        );
    }

    #[test]
    fn remote_spans_are_stamped_on_the_service_clock() {
        let mut rt = ServiceRuntime::new(DeviceSpec::nvidia_shield());
        let log = RemoteSpanLog::new();
        rt.attach_remote_log(log.clone(), -30_000);
        let ctx = TraceContext::new(7, 12, 3);
        rt.record_remote_span(
            ctx,
            names::remote::REPLAY,
            SimTime::from_micros(100_000),
            SimTime::from_micros(104_000),
        );
        // Context-less packets (handshakes, acks) never produce spans.
        rt.record_remote_span(
            TraceContext::NONE,
            names::remote::REPLAY,
            SimTime::ZERO,
            SimTime::from_micros(1),
        );
        let spans = log.take_frame(7, 12);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].start_us, 70_000);
        assert_eq!(spans[0].end_us, 74_000);
        assert!(log.is_empty());
    }

    #[test]
    fn service_gpu_never_throttles_under_sustained_load() {
        let mut rt = ServiceRuntime::new(DeviceSpec::nvidia_shield());
        for _ in 0..1800 {
            rt.gpu_tick(SimDuration::from_secs(1), 1.0);
        }
        assert!(!rt.is_throttled());
    }
}
