//! Multi-user service queues (Section VIII, "Towards Multiple Users").
//!
//! "All the service devices maintain a queue buffering the incoming
//! requests and submit them to GPU for execution in a First-Come-First-
//! Served (FCFS) manner. However, it takes no consideration of the tasks'
//! priorities … requests from the shooting game should receive higher
//! processing priorities." The paper leaves priority scheduling as future
//! work; both policies are implemented here, and the FCFS-vs-priority
//! comparison is an ablation bench.

use std::collections::VecDeque;

use gbooster_sim::time::{SimDuration, SimTime};

/// Scheduling policy of a service device's request queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// First come, first served (the paper's prototype).
    Fcfs,
    /// Strict priority, FIFO within a priority class (the paper's
    /// proposed extension).
    Priority,
}

/// One queued rendering request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Request {
    /// Issuing user/application id.
    pub user: u32,
    /// Monotonic sequence number within the user's stream.
    pub seq: u64,
    /// Arrival time at the service device.
    pub arrival: SimTime,
    /// GPU execution cost.
    pub cost: SimDuration,
    /// Priority class: 0 is most time-critical (fast-paced shooter),
    /// larger is more latency-tolerant (chess).
    pub priority: u8,
}

/// A completed request with its queueing outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Completion {
    /// The request.
    pub request: Request,
    /// When execution began.
    pub started: SimTime,
    /// When execution finished.
    pub finished: SimTime,
}

impl Completion {
    /// Total sojourn time (queueing + execution).
    pub fn latency(&self) -> SimDuration {
        self.finished - self.request.arrival
    }
}

/// A non-preemptive single-GPU service queue.
///
/// GPU execution is non-preemptive (Section VI-A, ref \[31\]): once a
/// request starts it runs to completion regardless of policy.
///
/// # Examples
///
/// ```
/// use gbooster_core::queue::{Policy, Request, ServiceQueue};
/// use gbooster_sim::time::{SimDuration, SimTime};
///
/// let mut q = ServiceQueue::new(Policy::Fcfs);
/// q.push(Request {
///     user: 0, seq: 0, arrival: SimTime::ZERO,
///     cost: SimDuration::from_millis(10), priority: 1,
/// });
/// let done = q.drain();
/// assert_eq!(done.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct ServiceQueue {
    policy: Policy,
    pending: VecDeque<Request>,
    gpu_free_at: SimTime,
}

impl ServiceQueue {
    /// Creates an empty queue under `policy`.
    pub fn new(policy: Policy) -> Self {
        ServiceQueue {
            policy,
            pending: VecDeque::new(),
            gpu_free_at: SimTime::ZERO,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Enqueues a request.
    pub fn push(&mut self, request: Request) {
        self.pending.push_back(request);
    }

    /// Queued requests not yet executed.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Selects the next request to execute at `now` under the policy,
    /// considering only requests that have arrived.
    fn select(&mut self, now: SimTime) -> Option<Request> {
        let arrived: Vec<usize> = self
            .pending
            .iter()
            .enumerate()
            .filter(|(_, r)| r.arrival <= now)
            .map(|(i, _)| i)
            .collect();
        let pick = match self.policy {
            Policy::Fcfs => arrived
                .iter()
                .copied()
                .min_by_key(|&i| (self.pending[i].arrival, i)),
            Policy::Priority => arrived
                .iter()
                .copied()
                .min_by_key(|&i| (self.pending[i].priority, self.pending[i].arrival, i)),
        }?;
        self.pending.remove(pick)
    }

    /// Executes every queued request to completion, returning the
    /// completions in execution order.
    pub fn drain(&mut self) -> Vec<Completion> {
        let mut out = Vec::with_capacity(self.pending.len());
        while !self.pending.is_empty() {
            // The GPU may go idle waiting for the next arrival.
            let now = self
                .pending
                .iter()
                .map(|r| r.arrival)
                .min()
                .expect("queue non-empty")
                .max(self.gpu_free_at);
            let request = self.select(now).expect("an arrived request exists");
            let started = now.max(request.arrival);
            let finished = started + request.cost;
            self.gpu_free_at = finished;
            out.push(Completion {
                request,
                started,
                finished,
            });
        }
        out
    }

    /// Mean latency per user from a set of completions.
    pub fn mean_latency_by_user(completions: &[Completion]) -> Vec<(u32, SimDuration)> {
        let mut sums: std::collections::BTreeMap<u32, (u64, u64)> = Default::default();
        for c in completions {
            let e = sums.entry(c.request.user).or_insert((0, 0));
            e.0 += c.latency().as_micros();
            e.1 += 1;
        }
        sums.into_iter()
            .map(|(user, (total, n))| (user, SimDuration::from_micros(total / n.max(1))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two users sharing a device: user 0 is a fast-paced shooter
    /// (priority 0), user 1 a chess app (priority 3). The device is near
    /// saturation (shooter 8 ms every 25 ms plus chess 40 ms every 45 ms),
    /// so queueing policy matters.
    fn mixed_workload() -> Vec<Request> {
        let mut reqs = Vec::new();
        for i in 0..20u64 {
            reqs.push(Request {
                user: 0,
                seq: i,
                arrival: SimTime::from_millis(i * 25),
                cost: SimDuration::from_millis(8),
                priority: 0,
            });
        }
        for i in 0..10u64 {
            reqs.push(Request {
                user: 1,
                seq: i,
                arrival: SimTime::from_millis(i * 45),
                cost: SimDuration::from_millis(40),
                priority: 3,
            });
        }
        reqs
    }

    fn run(policy: Policy) -> Vec<Completion> {
        let mut q = ServiceQueue::new(policy);
        for r in mixed_workload() {
            q.push(r);
        }
        q.drain()
    }

    fn latency_of(completions: &[Completion], user: u32) -> SimDuration {
        ServiceQueue::mean_latency_by_user(completions)
            .into_iter()
            .find(|(u, _)| *u == user)
            .map(|(_, l)| l)
            .expect("user present")
    }

    #[test]
    fn priority_cuts_shooter_latency_versus_fcfs() {
        let fcfs = run(Policy::Fcfs);
        let prio = run(Policy::Priority);
        let shooter_fcfs = latency_of(&fcfs, 0);
        let shooter_prio = latency_of(&prio, 0);
        assert!(
            shooter_prio.as_micros() * 2 <= shooter_fcfs.as_micros(),
            "priority {shooter_prio} vs fcfs {shooter_fcfs}"
        );
    }

    #[test]
    fn priority_costs_the_background_user_little() {
        let fcfs = run(Policy::Fcfs);
        let prio = run(Policy::Priority);
        let chess_fcfs = latency_of(&fcfs, 1);
        let chess_prio = latency_of(&prio, 1);
        // Chess latency may grow, but stays bounded (non-preemptive,
        // shooter requests are short).
        assert!(chess_prio.as_micros() < chess_fcfs.as_micros() * 5);
    }

    #[test]
    fn fcfs_executes_in_arrival_order() {
        let mut q = ServiceQueue::new(Policy::Fcfs);
        for r in mixed_workload() {
            q.push(r);
        }
        let done = q.drain();
        let mut last_arrival = SimTime::ZERO;
        for c in &done {
            assert!(c.request.arrival >= last_arrival || c.started >= c.request.arrival);
            last_arrival = last_arrival.max(c.request.arrival);
        }
        assert_eq!(done.len(), 30);
    }

    #[test]
    fn non_preemptive_execution_never_overlaps() {
        let done = run(Policy::Priority);
        let mut intervals: Vec<(SimTime, SimTime)> =
            done.iter().map(|c| (c.started, c.finished)).collect();
        intervals.sort();
        for pair in intervals.windows(2) {
            assert!(pair[0].1 <= pair[1].0, "GPU executed two requests at once");
        }
    }

    #[test]
    fn gpu_idles_until_first_arrival() {
        let mut q = ServiceQueue::new(Policy::Fcfs);
        q.push(Request {
            user: 0,
            seq: 0,
            arrival: SimTime::from_millis(100),
            cost: SimDuration::from_millis(5),
            priority: 0,
        });
        let done = q.drain();
        assert_eq!(done[0].started, SimTime::from_millis(100));
    }

    #[test]
    fn empty_queue_drains_to_nothing() {
        let mut q = ServiceQueue::new(Policy::Priority);
        assert!(q.is_empty());
        assert!(q.drain().is_empty());
        assert_eq!(q.policy(), Policy::Priority);
        assert_eq!(q.len(), 0);
    }
}
