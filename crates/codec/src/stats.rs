//! Ratio / PSNR / throughput helpers shared by tests and benches.

/// Peak signal-to-noise ratio between two equal-length byte images, in dB.
///
/// Returns `f64::INFINITY` for identical inputs.
///
/// # Panics
///
/// Panics if lengths differ or inputs are empty.
pub fn psnr(reference: &[u8], candidate: &[u8]) -> f64 {
    assert_eq!(reference.len(), candidate.len(), "length mismatch");
    assert!(!reference.is_empty(), "empty images");
    let mse: f64 = reference
        .iter()
        .zip(candidate.iter())
        .map(|(&a, &b)| {
            let d = a as f64 - b as f64;
            d * d
        })
        .sum::<f64>()
        / reference.len() as f64;
    if mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0f64 * 255.0 / mse).log10()
    }
}

/// Compression ratio expressed as the paper does: compressed ÷ original
/// (0.3 means the output is 30 % of the input).
///
/// Returns 1.0 for an empty original.
pub fn compression_ratio(original_bytes: usize, compressed_bytes: usize) -> f64 {
    if original_bytes == 0 {
        1.0
    } else {
        compressed_bytes as f64 / original_bytes as f64
    }
}

/// Encoding throughput in megapixels per second.
///
/// Returns 0 for a zero-duration measurement.
pub fn megapixels_per_sec(pixels: u64, elapsed: std::time::Duration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs == 0.0 {
        0.0
    } else {
        pixels as f64 / 1e6 / secs
    }
}

/// Streaming mean/min/max accumulator for experiment reports.
#[derive(Clone, Debug, Default)]
pub struct Accumulator {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Accumulator {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn add(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample (+inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (−inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn psnr_of_identical_images_is_infinite() {
        assert_eq!(psnr(&[1, 2, 3], &[1, 2, 3]), f64::INFINITY);
    }

    #[test]
    fn psnr_drops_with_error() {
        let a = vec![128u8; 100];
        let close: Vec<u8> = a.iter().map(|&v| v + 1).collect();
        let far: Vec<u8> = a.iter().map(|&v| v + 50).collect();
        assert!(psnr(&a, &close) > psnr(&a, &far));
        assert!((psnr(&a, &close) - 48.13).abs() < 0.1);
    }

    #[test]
    fn ratio_and_throughput() {
        assert!((compression_ratio(100, 30) - 0.3).abs() < 1e-12);
        assert_eq!(compression_ratio(0, 5), 1.0);
        let mps = megapixels_per_sec(2_000_000, Duration::from_secs(1));
        assert!((mps - 2.0).abs() < 1e-9);
        assert_eq!(megapixels_per_sec(5, Duration::ZERO), 0.0);
    }

    #[test]
    fn accumulator_tracks_extremes() {
        let mut acc = Accumulator::new();
        for v in [3.0, 1.0, 2.0] {
            acc.add(v);
        }
        assert_eq!(acc.count(), 3);
        assert!((acc.mean() - 2.0).abs() < 1e-12);
        assert_eq!(acc.min(), 1.0);
        assert_eq!(acc.max(), 3.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn psnr_length_mismatch_panics() {
        let _ = psnr(&[1], &[1, 2]);
    }
}
