//! Shared-object and function-pointer models.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A "function pointer": an opaque handle identifying which library's
/// implementation of a symbol a caller is bound to.
///
/// Calling through a [`FnPtr`] is modeled by inspecting
/// [`FnPtr::provider`] — GBooster's wrapper checks whether the call landed
/// in the wrapper library or the genuine one.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct FnPtr {
    provider: Arc<str>,
    symbol: Arc<str>,
}

impl FnPtr {
    /// Creates a pointer into `provider`'s implementation of `symbol`.
    pub fn new(provider: &str, symbol: &str) -> Self {
        FnPtr {
            provider: provider.into(),
            symbol: symbol.into(),
        }
    }

    /// Library that provides the implementation.
    pub fn provider(&self) -> &str {
        &self.provider
    }

    /// Symbol name the pointer was resolved from.
    pub fn symbol(&self) -> &str {
        &self.symbol
    }
}

impl fmt::Display for FnPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}!{}", self.provider, self.symbol)
    }
}

/// A shared object exporting a set of symbols.
///
/// # Examples
///
/// ```
/// use gbooster_linker::library::SharedLibrary;
///
/// let lib = SharedLibrary::new("libGLESv2.so")
///     .exporting(["glDrawArrays", "glClear"]);
/// assert!(lib.lookup("glClear").is_some());
/// assert!(lib.lookup("glFoo").is_none());
/// ```
#[derive(Clone, Debug)]
pub struct SharedLibrary {
    name: Arc<str>,
    symbols: BTreeMap<String, FnPtr>,
}

impl SharedLibrary {
    /// Creates an empty library called `name`.
    pub fn new(name: &str) -> Self {
        SharedLibrary {
            name: name.into(),
            symbols: BTreeMap::new(),
        }
    }

    /// Adds exports for each symbol name (builder style).
    pub fn exporting<I, S>(mut self, symbols: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        for s in symbols {
            let s = s.into();
            self.symbols.insert(s.clone(), FnPtr::new(&self.name, &s));
        }
        self
    }

    /// Library name (e.g. `libGLESv2.so`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Looks up an exported symbol.
    pub fn lookup(&self, symbol: &str) -> Option<&FnPtr> {
        self.symbols.get(symbol)
    }

    /// All exported symbol names.
    pub fn exports(&self) -> impl Iterator<Item = &str> {
        self.symbols.keys().map(String::as_str)
    }

    /// Number of exports.
    pub fn export_count(&self) -> usize {
        self.symbols.len()
    }
}

/// The OpenGL ES 2.0 entry points GBooster's wrapper must cover. A subset
/// sufficient for the simulated command vocabulary; the real system wraps
/// all ~140 ES 2.0 functions the same mechanical way.
pub const GLES2_SYMBOLS: &[&str] = &[
    "glActiveTexture",
    "glAttachShader",
    "glBindBuffer",
    "glBindFramebuffer",
    "glBindTexture",
    "glBlendFunc",
    "glBufferData",
    "glBufferSubData",
    "glClear",
    "glClearColor",
    "glClearDepthf",
    "glCompileShader",
    "glCreateProgram",
    "glCreateShader",
    "glDeleteBuffers",
    "glDeleteFramebuffers",
    "glDeleteProgram",
    "glDeleteShader",
    "glDeleteTextures",
    "glDepthFunc",
    "glDepthMask",
    "glDisable",
    "glDisableVertexAttribArray",
    "glDrawArrays",
    "glDrawElements",
    "glEnable",
    "glEnableVertexAttribArray",
    "glFinish",
    "glFlush",
    "glFramebufferTexture2D",
    "glGenBuffers",
    "glGenFramebuffers",
    "glGenTextures",
    "glLinkProgram",
    "glScissor",
    "glShaderSource",
    "glTexImage2D",
    "glTexParameteri",
    "glTexSubImage2D",
    "glUniform1f",
    "glUniform1i",
    "glUniform2f",
    "glUniform3f",
    "glUniform4f",
    "glUniformMatrix4fv",
    "glUseProgram",
    "glVertexAttribPointer",
    "glViewport",
];

/// The EGL entry points relevant to interception.
pub const EGL_SYMBOLS: &[&str] = &["eglGetProcAddress", "eglSwapBuffers"];

/// A Direct3D-style entry-point set (Section VIII of the paper: Windows
/// Phone "uses a different graphics API named Direct X \[but\] we could
/// still utilize the same API hooking technique"). Included to
/// demonstrate that the hooking machinery is API-agnostic.
pub const D3D_SYMBOLS: &[&str] = &[
    "Direct3DCreate9",
    "IDirect3DDevice9_DrawPrimitive",
    "IDirect3DDevice9_SetTexture",
    "IDirect3DDevice9_Present",
    "IDirect3DDevice9_SetRenderState",
];

/// Builds the genuine Android GLES library.
pub fn genuine_gles() -> SharedLibrary {
    SharedLibrary::new("libGLESv2.so").exporting(GLES2_SYMBOLS.iter().copied())
}

/// Builds the genuine Android EGL library.
pub fn genuine_egl() -> SharedLibrary {
    SharedLibrary::new("libEGL.so").exporting(EGL_SYMBOLS.iter().copied())
}

/// Builds GBooster's wrapper library, which exports every GL/EGL symbol
/// plus the `dlopen`/`dlsym` interposers.
pub fn wrapper_library() -> SharedLibrary {
    SharedLibrary::new("libgbooster_wrapper.so")
        .exporting(GLES2_SYMBOLS.iter().copied())
        .exporting(EGL_SYMBOLS.iter().copied())
        .exporting(["dlopen", "dlsym"])
}

/// Builds a genuine Direct3D runtime library (the Windows Phone analogue
/// of `libGLESv2.so`).
pub fn genuine_d3d() -> SharedLibrary {
    SharedLibrary::new("d3d9.dll").exporting(D3D_SYMBOLS.iter().copied())
}

/// Builds a GBooster wrapper for the Direct3D surface — mechanically
/// identical to the GL wrapper, per Section VIII's portability argument.
pub fn wrapper_library_d3d() -> SharedLibrary {
    SharedLibrary::new("gbooster_wrapper_d3d.dll").exporting(D3D_SYMBOLS.iter().copied())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_finds_exports() {
        let lib = genuine_gles();
        let ptr = lib.lookup("glDrawArrays").unwrap();
        assert_eq!(ptr.provider(), "libGLESv2.so");
        assert_eq!(ptr.symbol(), "glDrawArrays");
        assert_eq!(ptr.to_string(), "libGLESv2.so!glDrawArrays");
    }

    #[test]
    fn wrapper_covers_every_gles_symbol() {
        let wrapper = wrapper_library();
        for sym in GLES2_SYMBOLS {
            assert!(wrapper.lookup(sym).is_some(), "missing {sym}");
        }
        for sym in EGL_SYMBOLS {
            assert!(wrapper.lookup(sym).is_some(), "missing {sym}");
        }
        assert!(wrapper.lookup("dlopen").is_some());
        assert!(wrapper.lookup("dlsym").is_some());
    }

    #[test]
    fn fn_ptrs_from_different_libraries_differ() {
        let genuine = genuine_gles();
        let wrapper = wrapper_library();
        assert_ne!(
            genuine.lookup("glClear").unwrap(),
            wrapper.lookup("glClear").unwrap()
        );
    }

    #[test]
    fn d3d_wrapper_covers_the_direct3d_surface() {
        // Section VIII portability: the same interposition mechanics
        // apply to a completely different graphics API.
        let wrapper = wrapper_library_d3d();
        for sym in D3D_SYMBOLS {
            assert!(wrapper.lookup(sym).is_some(), "missing {sym}");
        }
        assert_ne!(
            genuine_d3d().lookup("IDirect3DDevice9_Present"),
            wrapper.lookup("IDirect3DDevice9_Present")
        );
    }

    #[test]
    fn d3d_preload_interposes_like_gl() {
        use crate::linker::DynamicLinker;
        let mut linker = DynamicLinker::new();
        linker.load(genuine_d3d());
        linker.preload(wrapper_library_d3d());
        for sym in D3D_SYMBOLS {
            assert_eq!(
                linker.resolve(sym).unwrap().provider(),
                "gbooster_wrapper_d3d.dll"
            );
        }
    }

    #[test]
    fn export_iteration() {
        let lib = SharedLibrary::new("x.so").exporting(["a", "b"]);
        let names: Vec<&str> = lib.exports().collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(lib.export_count(), 2);
    }
}
