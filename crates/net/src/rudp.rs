//! Lightweight reliable transport over UDP (Section IV-B, ref \[19\]).
//!
//! "Due to its complex retransmission mechanism, TCP possesses an inherent
//! delay … To alleviate the delay, instead of TCP, we select the UDP
//! transportation protocol to provide fast delivery of the graphics
//! commands. To prevent packet loss and out-of-order delivery, we
//! implement a light-weight and reliable transmission mechanism in the
//! application layer."
//!
//! The protocol is UDT-flavoured: sequence-numbered datagrams, cumulative
//! ACKs, a sliding send window, timer-based retransmission, and an
//! in-order reassembly buffer on the receiver. [`RudpSender`] and
//! [`RudpReceiver`] are pure state machines (no I/O), and
//! [`simulate_transfer`] drives them through an event-driven lossy channel
//! to measure end-to-end completion times.
//!
//! Every datagram also carries a 20-byte [`TraceContext`] so the far
//! side can attribute its spans to the right frame. Retransmissions
//! reuse the original datagram's context — a retransmit is the same
//! logical send and must attach to the same span — and acks are
//! timestamped on the receiver's clock, which is what
//! [`ClockOffsetEstimator`] consumes to recover the inter-device clock
//! offset (see [`simulate_transfer_ctx`]).

use std::collections::{BTreeMap, VecDeque};

use gbooster_sim::event::EventQueue;
use gbooster_sim::time::{SimDuration, SimTime};
use gbooster_telemetry::{names, ClockOffsetEstimator, Registry, TraceContext};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::channel::ChannelModel;

/// Maximum datagram payload (typical WiFi MTU minus headers).
pub const MTU: usize = 1400;

/// Transport configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RudpConfig {
    /// Payload bytes per datagram.
    pub mtu: usize,
    /// Maximum unacknowledged datagrams in flight.
    pub window: usize,
    /// Retransmission timeout.
    pub rto: SimDuration,
}

impl Default for RudpConfig {
    fn default() -> Self {
        RudpConfig {
            mtu: MTU,
            window: 64,
            rto: SimDuration::from_millis(20),
        }
    }
}

/// A sequence-numbered datagram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Datagram {
    /// Sequence number (0-based, one per datagram).
    pub seq: u64,
    /// Payload length in bytes.
    pub len: usize,
    /// True if this is a retransmission.
    pub retransmit: bool,
    /// Distributed-tracing context riding in the header
    /// ([`TraceContext::NONE`] when untraced). Retransmissions carry
    /// the original context verbatim.
    pub ctx: TraceContext,
}

/// Exponential-backoff cap: a datagram's RTO doubles on each expiry up
/// to `base << MAX_BACKOFF_SHIFT` (8× the configured RTO). A sick link
/// thus backs off instead of hammering retransmissions at a fixed
/// cadence, without ever stalling longer than a bounded interval.
const MAX_BACKOFF_SHIFT: u32 = 3;

/// One unacknowledged datagram tracked by the sender.
#[derive(Clone, Copy, Debug)]
struct Inflight {
    len: usize,
    /// Most recent transmission time (re-stamped on retransmit).
    sent: SimTime,
    /// Retransmissions so far; selects the backoff step.
    attempts: u32,
    ctx: TraceContext,
}

/// Sender-side protocol machine.
///
/// # Examples
///
/// ```
/// use gbooster_net::rudp::{RudpConfig, RudpSender};
/// use gbooster_sim::time::SimTime;
///
/// let mut tx = RudpSender::new(RudpConfig::default());
/// tx.enqueue(3000); // one message, three datagrams at MTU 1400
/// let pkts = tx.poll_send(SimTime::ZERO);
/// assert_eq!(pkts.len(), 3);
/// tx.on_ack(3); // cumulative ACK covers all three
/// assert!(tx.is_complete());
/// ```
#[derive(Clone, Debug)]
pub struct RudpSender {
    config: RudpConfig,
    next_seq: u64,
    /// Datagram lengths + trace contexts waiting to enter the window.
    queue: VecDeque<(usize, TraceContext)>,
    /// In-flight datagrams by sequence number.
    inflight: BTreeMap<u64, Inflight>,
    /// Lowest unacknowledged sequence number.
    base: u64,
    retransmissions: u64,
}

/// Deterministic per-(seq, attempt) jitter hash (FNV-1a). No RNG: the
/// sender must behave identically across runs for a given input.
fn backoff_jitter_hash(seq: u64, attempts: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in seq.to_le_bytes().into_iter().chain(attempts.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl RudpSender {
    /// Creates a sender.
    ///
    /// # Panics
    ///
    /// Panics if the config has a zero MTU or window.
    pub fn new(config: RudpConfig) -> Self {
        assert!(config.mtu > 0 && config.window > 0, "invalid rudp config");
        RudpSender {
            config,
            next_seq: 0,
            queue: VecDeque::new(),
            inflight: BTreeMap::new(),
            base: 0,
            retransmissions: 0,
        }
    }

    /// Splits a `bytes`-long message into untraced datagrams and queues
    /// them.
    pub fn enqueue(&mut self, bytes: usize) {
        self.enqueue_traced(bytes, TraceContext::NONE);
    }

    /// Splits a `bytes`-long message into datagrams carrying `ctx` and
    /// queues them. Every datagram of the message — including any later
    /// retransmission — will carry this context on the wire.
    pub fn enqueue_traced(&mut self, bytes: usize, ctx: TraceContext) {
        let mut remaining = bytes;
        while remaining > 0 {
            let take = remaining.min(self.config.mtu);
            self.queue.push_back((take, ctx));
            remaining -= take;
        }
        if bytes == 0 {
            self.queue.push_back((0, ctx));
        }
    }

    /// Datagrams to put on the wire now, limited by the send window.
    pub fn poll_send(&mut self, now: SimTime) -> Vec<Datagram> {
        let mut out = Vec::new();
        while self.inflight.len() < self.config.window {
            let Some((len, ctx)) = self.queue.pop_front() else {
                break;
            };
            let seq = self.next_seq;
            self.next_seq += 1;
            self.inflight.insert(
                seq,
                Inflight {
                    len,
                    sent: now,
                    attempts: 0,
                    ctx,
                },
            );
            out.push(Datagram {
                seq,
                len,
                retransmit: false,
                ctx,
            });
        }
        out
    }

    /// Processes a cumulative ACK: everything below `ack_seq` is received.
    pub fn on_ack(&mut self, ack_seq: u64) {
        if ack_seq <= self.base {
            return;
        }
        self.inflight.retain(|&seq, _| seq >= ack_seq);
        self.base = ack_seq;
    }

    /// Effective RTO for a datagram on its `attempts`-th retransmission:
    /// the configured base doubled per prior expiry (capped at
    /// `<< MAX_BACKOFF_SHIFT`) plus a deterministic jitter of up to a
    /// quarter RTO. The first timeout uses the bare base RTO so a single
    /// loss recovers as fast as the fixed-RTO design did; jitter only
    /// kicks in once a datagram has already been retransmitted, spreading
    /// repeat offenders apart instead of synchronizing them.
    fn backoff_rto(&self, seq: u64, attempts: u32) -> SimDuration {
        let base = self.config.rto.as_micros() << attempts.min(MAX_BACKOFF_SHIFT);
        let jitter = if attempts == 0 {
            0
        } else {
            backoff_jitter_hash(seq, attempts) % (self.config.rto.as_micros() / 4).max(1)
        };
        SimDuration::from_micros(base + jitter)
    }

    /// Datagrams whose backoff deadline expired; re-stamps their send
    /// time and bumps their attempt counter so the next deadline is
    /// further out. The retransmitted datagrams carry the original trace
    /// context.
    pub fn poll_retransmit(&mut self, now: SimTime) -> Vec<Datagram> {
        let mut out = Vec::new();
        let deadlines: Vec<(u64, SimDuration)> = self
            .inflight
            .iter()
            .map(|(&seq, e)| (seq, self.backoff_rto(seq, e.attempts)))
            .collect();
        for (seq, rto) in deadlines {
            let entry = self.inflight.get_mut(&seq).expect("inflight entry");
            if now - entry.sent >= rto {
                entry.sent = now;
                entry.attempts += 1;
                out.push(Datagram {
                    seq,
                    len: entry.len,
                    retransmit: true,
                    ctx: entry.ctx,
                });
            }
        }
        self.retransmissions += out.len() as u64;
        out
    }

    /// Earliest pending backoff deadline, if any packet is in flight.
    pub fn next_rto_deadline(&self) -> Option<SimTime> {
        self.inflight
            .iter()
            .map(|(&seq, e)| e.sent + self.backoff_rto(seq, e.attempts))
            .min()
    }

    /// Send timestamps of the in-flight datagrams a cumulative ACK for
    /// `seq` would retire (for RTT sampling; uses the most recent
    /// transmission of each datagram).
    pub fn sent_times_below(&self, seq: u64) -> Vec<SimTime> {
        self.inflight.range(..seq).map(|(_, e)| e.sent).collect()
    }

    /// True once every queued datagram is acknowledged.
    pub fn is_complete(&self) -> bool {
        self.queue.is_empty() && self.inflight.is_empty()
    }

    /// Total retransmitted datagrams.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }
}

/// Receiver-side protocol machine: reorders and delivers in sequence.
#[derive(Clone, Debug, Default)]
pub struct RudpReceiver {
    /// Next sequence number expected in order.
    expected: u64,
    /// Out-of-order datagrams held for reassembly.
    buffer: BTreeMap<u64, Datagram>,
    delivered_bytes: u64,
    duplicates: u64,
}

impl RudpReceiver {
    /// Creates a receiver expecting sequence 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Processes an arriving datagram; returns the cumulative ACK to send
    /// back and the lengths of datagrams newly delivered in order.
    pub fn on_datagram(&mut self, dg: Datagram) -> (u64, Vec<usize>) {
        let (ack, delivered) = self.on_datagram_full(dg);
        (ack, delivered.into_iter().map(|d| d.len).collect())
    }

    /// [`RudpReceiver::on_datagram`], but delivery yields the full
    /// datagrams — sequence, length *and* trace context — so a traced
    /// consumer can attribute every in-order delivery to its frame even
    /// when the arrival that completed it was a retransmission.
    pub fn on_datagram_full(&mut self, dg: Datagram) -> (u64, Vec<Datagram>) {
        let mut delivered = Vec::new();
        if dg.seq < self.expected || self.buffer.contains_key(&dg.seq) {
            self.duplicates += 1;
        } else {
            self.buffer.insert(dg.seq, dg);
        }
        while let Some(held) = self.buffer.remove(&self.expected) {
            self.delivered_bytes += held.len as u64;
            delivered.push(held);
            self.expected += 1;
        }
        (self.expected, delivered)
    }

    /// Next expected in-order sequence number (== the cumulative ACK).
    pub fn expected(&self) -> u64 {
        self.expected
    }

    /// Total bytes delivered in order.
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered_bytes
    }

    /// Duplicate datagrams observed (retransmissions that weren't needed).
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }
}

/// Outcome of an end-to-end simulated transfer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransferStats {
    /// Time from first send to final in-order delivery.
    pub completion: SimDuration,
    /// Datagrams sent including retransmissions.
    pub datagrams_sent: u64,
    /// Retransmitted datagrams.
    pub retransmissions: u64,
    /// Bytes delivered.
    pub bytes: u64,
}

#[derive(Debug)]
enum NetEvent {
    /// A datagram reaches the receiver; `sent_at` is when its (most
    /// recent) transmission left the sender, kept for ack timestamping.
    DataArrives {
        dg: Datagram,
        sent_at: SimTime,
    },
    /// A cumulative ACK reaches the sender. `t1` is the send time of
    /// the datagram that triggered the ack, `t2_us` the receiver-clock
    /// timestamp stamped into the ack at delivery — together with the
    /// arrival time they form the NTP quadruple (acks are immediate,
    /// so t3 == t2).
    AckArrives {
        ack: u64,
        t1: SimTime,
        t2_us: i64,
    },
    RtoCheck,
}

/// Clock-synchronization hookup for [`simulate_transfer_ctx`].
///
/// `true_offset_us` is the (service − user) skew the simulation applies
/// when stamping receiver timestamps into acks; the `estimator` sees
/// only the timestamps — never the true offset — and must recover it.
#[derive(Debug)]
pub struct ClockSync<'a> {
    /// Ground-truth receiver-clock skew in µs (may be negative).
    pub true_offset_us: i64,
    /// Estimator fed one quadruple per received ack.
    pub estimator: &'a mut ClockOffsetEstimator,
}

/// Simulates transferring one `bytes`-long message over `channel`,
/// driving the two protocol machines through an event queue with sampled
/// loss and latency. Deterministic for a given `seed`.
pub fn simulate_transfer(
    bytes: usize,
    channel: &ChannelModel,
    config: RudpConfig,
    seed: u64,
) -> TransferStats {
    simulate_transfer_traced(bytes, channel, config, seed, None)
}

/// [`simulate_transfer`] with optional telemetry: when `registry` is
/// given, records datagram/retransmission counters, per-datagram ack
/// RTT samples, and the whole-transfer completion time. Identical
/// protocol behavior either way.
pub fn simulate_transfer_traced(
    bytes: usize,
    channel: &ChannelModel,
    config: RudpConfig,
    seed: u64,
    registry: Option<&Registry>,
) -> TransferStats {
    simulate_transfer_ctx(
        bytes,
        channel,
        config,
        seed,
        registry,
        TraceContext::NONE,
        None,
    )
}

/// The fully-traced transfer simulation: datagrams carry `ctx` on the
/// wire (retransmissions included), and when `clock` is given the
/// receiver stamps its skewed clock into every ack so the caller's
/// [`ClockOffsetEstimator`] can recover the offset. Channel sampling is
/// identical to the untraced path — tracing never changes protocol
/// behavior or timing.
pub fn simulate_transfer_ctx(
    bytes: usize,
    channel: &ChannelModel,
    config: RudpConfig,
    seed: u64,
    registry: Option<&Registry>,
    ctx: TraceContext,
    mut clock: Option<ClockSync<'_>>,
) -> TransferStats {
    gbooster_telemetry::prof_scope!(names::host::RUDP);
    let rtt_hist = registry.map(|r| r.histogram(names::net::RUDP_RTT));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sender = RudpSender::new(config);
    let mut receiver = RudpReceiver::new();
    sender.enqueue_traced(bytes, ctx);
    let true_offset_us = clock.as_ref().map_or(0, |c| c.true_offset_us);

    let mut queue: EventQueue<NetEvent> = EventQueue::new();
    let mut sent: u64 = 0;
    let mut link_free_at = SimTime::ZERO;
    let mut finish = SimTime::ZERO;

    // Helper inline: schedule initial window.
    let initial = sender.poll_send(SimTime::ZERO);
    for dg in initial {
        sent += 1;
        let start = link_free_at.max(SimTime::ZERO);
        let tx_end = start + channel.tx_time(dg.len);
        link_free_at = tx_end;
        if !channel.should_drop(&mut rng) {
            queue.push(
                tx_end + channel.sample_latency(&mut rng),
                NetEvent::DataArrives { dg, sent_at: start },
            );
        }
    }
    queue.push(SimTime::ZERO + config.rto, NetEvent::RtoCheck);

    let mut guard = 0u64;
    while let Some((now, event)) = queue.pop() {
        guard += 1;
        if guard > 10_000_000 {
            panic!("rudp simulation failed to converge");
        }
        match event {
            NetEvent::DataArrives { dg, sent_at } => {
                let (ack, delivered) = receiver.on_datagram_full(dg);
                for d in &delivered {
                    debug_assert_eq!(d.ctx, ctx, "context must survive the wire");
                }
                if !delivered.is_empty() {
                    finish = now;
                }
                // ACK path (ACKs are tiny; serialization ignored). The
                // receiver stamps its own (skewed) clock into the ack.
                if !channel.should_drop(&mut rng) {
                    queue.push(
                        now + channel.sample_latency(&mut rng),
                        NetEvent::AckArrives {
                            ack,
                            t1: sent_at,
                            t2_us: now.as_micros() as i64 + true_offset_us,
                        },
                    );
                }
            }
            NetEvent::AckArrives { ack, t1, t2_us } => {
                if let Some(c) = clock.as_mut() {
                    c.estimator.observe(
                        t1.as_micros() as i64,
                        t2_us,
                        t2_us,
                        now.as_micros() as i64,
                    );
                }
                if let Some(h) = &rtt_hist {
                    for sent_at in sender.sent_times_below(ack) {
                        h.record_duration(now - sent_at);
                    }
                }
                sender.on_ack(ack);
                if sender.is_complete() {
                    break;
                }
                for dg in sender.poll_send(now) {
                    sent += 1;
                    let start = link_free_at.max(now);
                    let tx_end = start + channel.tx_time(dg.len);
                    link_free_at = tx_end;
                    if !channel.should_drop(&mut rng) {
                        queue.push(
                            tx_end + channel.sample_latency(&mut rng),
                            NetEvent::DataArrives { dg, sent_at: start },
                        );
                    }
                }
            }
            NetEvent::RtoCheck => {
                if sender.is_complete() {
                    continue;
                }
                for dg in sender.poll_retransmit(now) {
                    sent += 1;
                    let start = link_free_at.max(now);
                    let tx_end = start + channel.tx_time(dg.len);
                    link_free_at = tx_end;
                    if !channel.should_drop(&mut rng) {
                        queue.push(
                            tx_end + channel.sample_latency(&mut rng),
                            NetEvent::DataArrives { dg, sent_at: start },
                        );
                    }
                }
                let next = sender
                    .next_rto_deadline()
                    .unwrap_or(now + config.rto)
                    .max(now + SimDuration::from_millis(1));
                queue.push(next, NetEvent::RtoCheck);
            }
        }
    }

    let stats = TransferStats {
        completion: finish - SimTime::ZERO,
        datagrams_sent: sent,
        retransmissions: sender.retransmissions(),
        bytes: receiver.delivered_bytes(),
    };
    if let Some(reg) = registry {
        reg.counter(names::net::RUDP_DATAGRAMS)
            .add(stats.datagrams_sent);
        reg.counter(names::net::RUDP_RETRANSMITS)
            .add(stats.retransmissions);
        reg.histogram(names::net::RUDP_TRANSFER)
            .record_duration(stats.completion);
    }
    stats
}

/// Per-message outcome of a [`simulate_pipelined_transfer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MessageCompletion {
    /// Frame id carried by the message's datagrams, read back off the
    /// wire at final delivery (not echoed from the input).
    pub frame_id: u64,
    /// Sim time of the message's last in-order delivery.
    pub completed_at: SimTime,
    /// Bytes delivered for this message.
    pub bytes: u64,
}

/// Outcome of a pipelined multi-message transfer.
#[derive(Clone, Debug, PartialEq)]
pub struct PipelinedStats {
    /// One entry per input message, in input order (in-order delivery
    /// guarantees message *i* finishes before message *i+1*).
    pub completions: Vec<MessageCompletion>,
    /// Aggregate link-level stats for the whole pipelined run.
    pub total: TransferStats,
}

fn datagram_count(bytes: usize, mtu: usize) -> u64 {
    if bytes == 0 {
        1 // enqueue() emits one zero-length datagram
    } else {
        bytes.div_ceil(mtu) as u64
    }
}

/// Simulates transferring several messages back-to-back over one RUDP
/// connection — the pipelined frame window of the offload session: frame
/// `i+1`'s datagrams enter the send window as soon as it has room,
/// without waiting for frame `i`'s final ack. Each message's datagrams
/// carry its own [`TraceContext`] (retransmissions included), and the
/// in-order reassembly buffer guarantees messages complete in input
/// order. Deterministic for a given `seed`.
pub fn simulate_pipelined_transfer(
    messages: &[(usize, TraceContext)],
    channel: &ChannelModel,
    config: RudpConfig,
    seed: u64,
) -> PipelinedStats {
    gbooster_telemetry::prof_scope!(names::host::RUDP);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sender = RudpSender::new(config);
    let mut receiver = RudpReceiver::new();
    for &(bytes, ctx) in messages {
        sender.enqueue_traced(bytes, ctx);
    }
    let counts: Vec<u64> = messages
        .iter()
        .map(|&(bytes, _)| datagram_count(bytes, config.mtu))
        .collect();
    let mut completions = Vec::with_capacity(messages.len());
    let mut msg_idx = 0usize;
    let mut left_in_msg = counts.first().copied().unwrap_or(0);

    let mut queue: EventQueue<NetEvent> = EventQueue::new();
    let mut sent: u64 = 0;
    let mut link_free_at = SimTime::ZERO;
    let mut finish = SimTime::ZERO;

    let initial = sender.poll_send(SimTime::ZERO);
    for dg in initial {
        sent += 1;
        let start = link_free_at.max(SimTime::ZERO);
        let tx_end = start + channel.tx_time(dg.len);
        link_free_at = tx_end;
        if !channel.should_drop(&mut rng) {
            queue.push(
                tx_end + channel.sample_latency(&mut rng),
                NetEvent::DataArrives { dg, sent_at: start },
            );
        }
    }
    queue.push(SimTime::ZERO + config.rto, NetEvent::RtoCheck);

    let mut guard = 0u64;
    while let Some((now, event)) = queue.pop() {
        guard += 1;
        if guard > 10_000_000 {
            panic!("rudp pipelined simulation failed to converge");
        }
        match event {
            NetEvent::DataArrives { dg, sent_at } => {
                let (ack, delivered) = receiver.on_datagram_full(dg);
                for d in &delivered {
                    debug_assert_eq!(
                        d.ctx, messages[msg_idx].1,
                        "context must survive the wire per message"
                    );
                    left_in_msg -= 1;
                    if left_in_msg == 0 {
                        completions.push(MessageCompletion {
                            frame_id: d.ctx.frame_id,
                            completed_at: now,
                            bytes: messages[msg_idx].0 as u64,
                        });
                        msg_idx += 1;
                        left_in_msg = counts.get(msg_idx).copied().unwrap_or(0);
                    }
                }
                if !delivered.is_empty() {
                    finish = now;
                }
                if !channel.should_drop(&mut rng) {
                    queue.push(
                        now + channel.sample_latency(&mut rng),
                        NetEvent::AckArrives {
                            ack,
                            t1: sent_at,
                            t2_us: now.as_micros() as i64,
                        },
                    );
                }
            }
            NetEvent::AckArrives { ack, .. } => {
                sender.on_ack(ack);
                if sender.is_complete() {
                    break;
                }
                for dg in sender.poll_send(now) {
                    sent += 1;
                    let start = link_free_at.max(now);
                    let tx_end = start + channel.tx_time(dg.len);
                    link_free_at = tx_end;
                    if !channel.should_drop(&mut rng) {
                        queue.push(
                            tx_end + channel.sample_latency(&mut rng),
                            NetEvent::DataArrives { dg, sent_at: start },
                        );
                    }
                }
            }
            NetEvent::RtoCheck => {
                if sender.is_complete() {
                    continue;
                }
                for dg in sender.poll_retransmit(now) {
                    sent += 1;
                    let start = link_free_at.max(now);
                    let tx_end = start + channel.tx_time(dg.len);
                    link_free_at = tx_end;
                    if !channel.should_drop(&mut rng) {
                        queue.push(
                            tx_end + channel.sample_latency(&mut rng),
                            NetEvent::DataArrives { dg, sent_at: start },
                        );
                    }
                }
                let next = sender
                    .next_rto_deadline()
                    .unwrap_or(now + config.rto)
                    .max(now + SimDuration::from_millis(1));
                queue.push(next, NetEvent::RtoCheck);
            }
        }
    }

    PipelinedStats {
        completions,
        total: TransferStats {
            completion: finish - SimTime::ZERO,
            datagrams_sent: sent,
            retransmissions: sender.retransmissions(),
            bytes: receiver.delivered_bytes(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sender_splits_messages_at_mtu() {
        let mut tx = RudpSender::new(RudpConfig::default());
        tx.enqueue(MTU * 2 + 1);
        let pkts = tx.poll_send(SimTime::ZERO);
        assert_eq!(pkts.len(), 3);
        assert_eq!(pkts[0].len, MTU);
        assert_eq!(pkts[2].len, 1);
    }

    #[test]
    fn window_limits_inflight() {
        let mut tx = RudpSender::new(RudpConfig {
            window: 4,
            ..RudpConfig::default()
        });
        tx.enqueue(MTU * 10);
        assert_eq!(tx.poll_send(SimTime::ZERO).len(), 4);
        assert_eq!(tx.poll_send(SimTime::ZERO).len(), 0, "window full");
        tx.on_ack(2);
        assert_eq!(tx.poll_send(SimTime::ZERO).len(), 2, "window slides");
    }

    #[test]
    fn receiver_reorders_out_of_order_arrivals() {
        let mut rx = RudpReceiver::new();
        let dg = |seq| Datagram {
            seq,
            len: 100,
            retransmit: false,
            ctx: TraceContext::NONE,
        };
        let (ack, delivered) = rx.on_datagram(dg(1));
        assert_eq!(ack, 0);
        assert!(delivered.is_empty(), "held for reordering");
        let (ack, delivered) = rx.on_datagram(dg(0));
        assert_eq!(ack, 2);
        assert_eq!(delivered.len(), 2, "both delivered in order");
        assert_eq!(rx.delivered_bytes(), 200);
    }

    #[test]
    fn receiver_counts_duplicates() {
        let mut rx = RudpReceiver::new();
        let dg = Datagram {
            seq: 0,
            len: 10,
            retransmit: false,
            ctx: TraceContext::NONE,
        };
        rx.on_datagram(dg);
        rx.on_datagram(dg);
        assert_eq!(rx.duplicates(), 1);
        assert_eq!(rx.delivered_bytes(), 10);
    }

    #[test]
    fn rto_retransmits_unacked_packets() {
        let cfg = RudpConfig::default();
        let mut tx = RudpSender::new(cfg);
        tx.enqueue(100);
        tx.poll_send(SimTime::ZERO);
        assert!(tx.poll_retransmit(SimTime::from_millis(5)).is_empty());
        let re = tx.poll_retransmit(SimTime::ZERO + cfg.rto);
        assert_eq!(re.len(), 1);
        assert!(re[0].retransmit);
        assert_eq!(tx.retransmissions(), 1);
    }

    #[test]
    fn retransmit_spacing_backs_off_exponentially_and_caps() {
        let cfg = RudpConfig::default();
        let mut tx = RudpSender::new(cfg);
        tx.enqueue(100); // one datagram, never acked
        tx.poll_send(SimTime::ZERO);
        let base = cfg.rto.as_micros();
        let mut prev = SimTime::ZERO;
        let mut spacings = Vec::new();
        for _ in 0..8 {
            let deadline = tx.next_rto_deadline().expect("packet in flight");
            let re = tx.poll_retransmit(deadline);
            assert_eq!(re.len(), 1, "deadline must fire exactly one retransmit");
            spacings.push((deadline - prev).as_micros());
            prev = deadline;
        }
        // First timeout is the bare configured RTO: a one-off loss must
        // recover exactly as fast as the fixed-RTO design.
        assert_eq!(spacings[0], base);
        // Backoff grows strictly until the cap...
        for pair in spacings[..=MAX_BACKOFF_SHIFT as usize].windows(2) {
            assert!(pair[1] > pair[0], "spacing must grow: {spacings:?}");
        }
        // ...then every later spacing sits at 8x the base plus at most a
        // quarter-RTO of deterministic jitter.
        for &s in &spacings[MAX_BACKOFF_SHIFT as usize..] {
            assert!(
                s >= base << MAX_BACKOFF_SHIFT && s < (base << MAX_BACKOFF_SHIFT) + base / 4,
                "capped spacing out of range: {spacings:?}"
            );
        }
        // Deterministic: an identical sender replays identical deadlines.
        let mut tx2 = RudpSender::new(cfg);
        tx2.enqueue(100);
        tx2.poll_send(SimTime::ZERO);
        for _ in 0..8 {
            let d = tx2.next_rto_deadline().unwrap();
            tx2.poll_retransmit(d);
        }
        assert_eq!(tx.next_rto_deadline(), tx2.next_rto_deadline());
    }

    #[test]
    fn lossless_transfer_completes_at_line_rate() {
        let mut ch = ChannelModel::wifi_80211n();
        ch.loss_rate = 0.0;
        ch.jitter = SimDuration::ZERO;
        let bytes = 1_500_000; // ~80 ms at 150 Mbps
        let stats = simulate_transfer(bytes, &ch, RudpConfig::default(), 1);
        assert_eq!(stats.bytes, bytes as u64);
        assert_eq!(stats.retransmissions, 0);
        let ideal = ch.tx_time(bytes).as_secs_f64();
        let actual = stats.completion.as_secs_f64();
        assert!(
            actual < ideal * 1.5 + 0.01,
            "actual {actual:.4}s vs ideal {ideal:.4}s"
        );
    }

    #[test]
    fn lossy_transfer_still_delivers_everything() {
        let ch = ChannelModel::lossy(0.05);
        let bytes = 500_000;
        let stats = simulate_transfer(bytes, &ch, RudpConfig::default(), 7);
        assert_eq!(stats.bytes, bytes as u64, "reliability under 5% loss");
        assert!(stats.retransmissions > 0, "loss must trigger retransmits");
    }

    #[test]
    fn heavy_loss_is_survivable() {
        let ch = ChannelModel::lossy(0.3);
        let stats = simulate_transfer(50_000, &ch, RudpConfig::default(), 3);
        assert_eq!(stats.bytes, 50_000);
    }

    #[test]
    fn higher_loss_costs_more_time() {
        let mut clean = ChannelModel::wifi_80211n();
        clean.loss_rate = 0.0;
        let lossy = ChannelModel::lossy(0.1);
        let a = simulate_transfer(300_000, &clean, RudpConfig::default(), 5);
        let b = simulate_transfer(300_000, &lossy, RudpConfig::default(), 5);
        assert!(b.completion > a.completion);
    }

    #[test]
    fn transfer_is_deterministic_per_seed() {
        let ch = ChannelModel::lossy(0.05);
        let a = simulate_transfer(100_000, &ch, RudpConfig::default(), 11);
        let b = simulate_transfer(100_000, &ch, RudpConfig::default(), 11);
        assert_eq!(a, b);
    }

    #[test]
    fn traced_transfer_matches_untraced_and_fills_registry() {
        let ch = ChannelModel::lossy(0.05);
        let registry = Registry::new();
        let plain = simulate_transfer(200_000, &ch, RudpConfig::default(), 9);
        let traced =
            simulate_transfer_traced(200_000, &ch, RudpConfig::default(), 9, Some(&registry));
        assert_eq!(plain, traced, "telemetry must not change the protocol");
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter(names::net::RUDP_DATAGRAMS),
            traced.datagrams_sent
        );
        assert_eq!(
            snap.counter(names::net::RUDP_RETRANSMITS),
            traced.retransmissions
        );
        let rtt = snap.histogram(names::net::RUDP_RTT).unwrap();
        assert!(rtt.count() > 0, "ack RTTs must be sampled");
        assert!(rtt.quantile(0.5) > 0);
    }

    #[test]
    fn empty_message_completes() {
        let ch = ChannelModel::wifi_80211n();
        let stats = simulate_transfer(0, &ch, RudpConfig::default(), 2);
        assert_eq!(stats.bytes, 0);
    }

    #[test]
    fn retransmissions_carry_the_original_context() {
        let cfg = RudpConfig::default();
        let mut tx = RudpSender::new(cfg);
        let ctx = TraceContext::new(42, 7, 1);
        tx.enqueue_traced(MTU * 2, ctx);
        let first = tx.poll_send(SimTime::ZERO);
        assert!(first.iter().all(|d| d.ctx == ctx && !d.retransmit));
        let re = tx.poll_retransmit(SimTime::ZERO + cfg.rto);
        assert_eq!(re.len(), 2);
        assert!(
            re.iter().all(|d| d.ctx == ctx && d.retransmit),
            "retransmit must reuse the original span's context"
        );
        // Seqs unchanged: same logical sends.
        assert_eq!(
            re.iter().map(|d| d.seq).collect::<Vec<_>>(),
            first.iter().map(|d| d.seq).collect::<Vec<_>>()
        );
    }

    #[test]
    fn out_of_order_delivery_keeps_ctx_to_seq_mapping() {
        let mut rx = RudpReceiver::new();
        // Three datagrams, each with a distinct frame id; deliver 2, 0, 1.
        let dg = |seq: u64| Datagram {
            seq,
            len: 10,
            retransmit: false,
            ctx: TraceContext::new(1, seq, 0),
        };
        let (_, d) = rx.on_datagram_full(dg(2));
        assert!(d.is_empty());
        let (_, d) = rx.on_datagram_full(dg(0));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].ctx.frame_id, 0);
        let (ack, d) = rx.on_datagram_full(dg(1));
        assert_eq!(ack, 3);
        let frames: Vec<u64> = d.iter().map(|x| x.ctx.frame_id).collect();
        assert_eq!(frames, [1, 2], "in-order delivery, contexts intact");
    }

    #[test]
    fn clock_offset_is_recovered_through_a_lossy_channel() {
        for (true_offset, seed) in [(35_000i64, 4u64), (-80_000, 5), (0, 6)] {
            let ch = ChannelModel::lossy(0.1);
            let mut est = ClockOffsetEstimator::new();
            let stats = simulate_transfer_ctx(
                200_000,
                &ch,
                RudpConfig::default(),
                seed,
                None,
                TraceContext::new(9, 0, 0),
                Some(ClockSync {
                    true_offset_us: true_offset,
                    estimator: &mut est,
                }),
            );
            assert_eq!(stats.bytes, 200_000);
            let got = est.offset_us().expect("acks must produce samples");
            let err = (got - true_offset).abs();
            assert!(
                err < 2_000,
                "offset {true_offset} seed {seed}: estimated {got}, error {err} µs"
            );
        }
    }

    #[test]
    fn clock_sync_does_not_change_the_transfer() {
        let ch = ChannelModel::lossy(0.08);
        let plain = simulate_transfer(150_000, &ch, RudpConfig::default(), 13);
        let mut est = ClockOffsetEstimator::new();
        let synced = simulate_transfer_ctx(
            150_000,
            &ch,
            RudpConfig::default(),
            13,
            None,
            TraceContext::new(3, 1, 0),
            Some(ClockSync {
                true_offset_us: 123_456,
                estimator: &mut est,
            }),
        );
        assert_eq!(plain, synced, "tracing must be purely observational");
    }

    fn frame_messages(n: u64, bytes: usize) -> Vec<(usize, TraceContext)> {
        (0..n)
            .map(|f| (bytes, TraceContext::new(77, f, 1)))
            .collect()
    }

    #[test]
    fn pipelined_transfer_keeps_per_message_contexts() {
        let ch = ChannelModel::lossy(0.05);
        let msgs = frame_messages(6, 40_000);
        let stats = simulate_pipelined_transfer(&msgs, &ch, RudpConfig::default(), 21);
        assert_eq!(stats.completions.len(), 6, "every message must complete");
        for (i, c) in stats.completions.iter().enumerate() {
            assert_eq!(
                c.frame_id, i as u64,
                "frame id read off the wire must match the enqueued message"
            );
            assert_eq!(c.bytes, 40_000);
        }
        assert_eq!(stats.total.bytes, 6 * 40_000);
    }

    #[test]
    fn pipelined_completions_are_monotone_and_in_order() {
        let ch = ChannelModel::lossy(0.1);
        let msgs = frame_messages(8, 25_000);
        let stats = simulate_pipelined_transfer(&msgs, &ch, RudpConfig::default(), 33);
        let ids: Vec<u64> = stats.completions.iter().map(|c| c.frame_id).collect();
        assert_eq!(ids, (0..8).collect::<Vec<_>>(), "in-order reassembly");
        for pair in stats.completions.windows(2) {
            assert!(
                pair[1].completed_at >= pair[0].completed_at,
                "completion times must be non-decreasing"
            );
        }
        assert_eq!(
            stats.completions.last().unwrap().completed_at - SimTime::ZERO,
            stats.total.completion,
            "last message completion is the whole-run completion"
        );
    }

    #[test]
    fn pipelined_transfer_is_deterministic_per_seed() {
        let ch = ChannelModel::lossy(0.08);
        let msgs = frame_messages(5, 30_000);
        let a = simulate_pipelined_transfer(&msgs, &ch, RudpConfig::default(), 17);
        let b = simulate_pipelined_transfer(&msgs, &ch, RudpConfig::default(), 17);
        assert_eq!(a, b);
    }

    #[test]
    fn pipelining_beats_sequential_transfers() {
        // Back-to-back messages keep the window full across message
        // boundaries; sequential transfers idle the link waiting for
        // each message's final ack before starting the next.
        let ch = ChannelModel::lossy(0.05);
        let cfg = RudpConfig::default();
        let msgs = frame_messages(6, 60_000);
        let pipelined = simulate_pipelined_transfer(&msgs, &ch, cfg, 29);
        let sequential: f64 = (0..6)
            .map(|i| {
                simulate_transfer(60_000, &ch, cfg, 29 + i)
                    .completion
                    .as_secs_f64()
            })
            .sum();
        assert!(
            pipelined.total.completion.as_secs_f64() < sequential,
            "pipelined {:.4}s must beat sequential sum {:.4}s",
            pipelined.total.completion.as_secs_f64(),
            sequential
        );
    }

    #[test]
    fn pipelined_empty_input_completes_immediately() {
        let ch = ChannelModel::wifi_80211n();
        let stats = simulate_pipelined_transfer(&[], &ch, RudpConfig::default(), 1);
        assert!(stats.completions.is_empty());
        assert_eq!(stats.total.bytes, 0);
    }

    #[test]
    fn stale_ack_is_ignored() {
        let mut tx = RudpSender::new(RudpConfig::default());
        tx.enqueue(MTU * 3);
        tx.poll_send(SimTime::ZERO);
        tx.on_ack(2);
        tx.on_ack(1); // stale
        assert!(!tx.is_complete());
        tx.on_ack(3);
        assert!(tx.is_complete());
    }
}
