//! The hooking engine: wrapper installation and the three lookup routes.
//!
//! Section IV-A of the paper enumerates the three ways an Android app can
//! reach OpenGL ES, each needing its own interception:
//!
//! 1. direct linking — handled by `LD_PRELOAD` ([`DynamicLinker`]);
//! 2. `eglGetProcAddress` — "we intercept and rewrite the
//!    eglGetProcAddress function such that it directly returns the
//!    pointers pointing to our wrapper functions";
//! 3. `dlopen`/`dlsym` — "we handle the third case by rewriting the
//!    dlopen and dlsym functions so that they load our wrapper library in
//!    preference of the original OpenGL ES library".
//!
//! [`HookEngine`] implements routes 2 and 3 on top of the linker's route 1
//! and records which route each resolution took, so the evaluation can
//! prove *universal* coverage.

use std::collections::BTreeMap;

use crate::library::{wrapper_library, FnPtr, SharedLibrary};
use crate::linker::{DynamicLinker, LinkError};

/// How a caller obtained a function pointer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LookupRoute {
    /// Link-time resolution (route 1).
    DirectLink,
    /// `eglGetProcAddress` (route 2).
    EglGetProcAddress,
    /// `dlopen` + `dlsym` (route 3).
    DlopenDlsym,
}

impl LookupRoute {
    /// All routes, for exhaustive coverage tests.
    pub const ALL: [LookupRoute; 3] = [
        LookupRoute::DirectLink,
        LookupRoute::EglGetProcAddress,
        LookupRoute::DlopenDlsym,
    ];
}

/// The GL libraries `dlopen` rewriting redirects to the wrapper.
const REDIRECTED_LIBS: &[&str] = &["libGLESv2.so", "libGLESv1_CM.so", "libEGL.so"];

/// Installs and exercises GBooster's wrapper hooks on a process' linker.
///
/// # Examples
///
/// ```
/// use gbooster_linker::hook::{HookEngine, LookupRoute};
/// use gbooster_linker::library::{genuine_egl, genuine_gles};
/// use gbooster_linker::linker::DynamicLinker;
///
/// let mut linker = DynamicLinker::new();
/// linker.load(genuine_gles());
/// linker.load(genuine_egl());
/// let mut hooks = HookEngine::install(linker);
/// // Every route lands in the wrapper.
/// for route in LookupRoute::ALL {
///     let ptr = hooks.lookup("glDrawArrays", route)?;
///     assert!(hooks.is_intercepted(&ptr));
/// }
/// # Ok::<(), gbooster_linker::linker::LinkError>(())
/// ```
#[derive(Clone, Debug)]
pub struct HookEngine {
    linker: DynamicLinker,
    wrapper_name: String,
    route_counts: BTreeMap<&'static str, u64>,
}

impl HookEngine {
    /// Installs the wrapper: preloads it into `linker` and arms the
    /// `eglGetProcAddress`/`dlopen`/`dlsym` rewrites.
    pub fn install(mut linker: DynamicLinker) -> Self {
        let wrapper = wrapper_library();
        let wrapper_name = wrapper.name().to_string();
        linker.preload(wrapper);
        HookEngine {
            linker,
            wrapper_name,
            route_counts: BTreeMap::new(),
        }
    }

    /// The linker after installation (wrapper preloaded).
    pub fn linker(&self) -> &DynamicLinker {
        &self.linker
    }

    /// Resolves `symbol` the way an application using `route` would.
    ///
    /// # Errors
    ///
    /// Returns [`LinkError`] if the symbol (or, for route 3, the target
    /// library) cannot be found.
    pub fn lookup(&mut self, symbol: &str, route: LookupRoute) -> Result<FnPtr, LinkError> {
        let ptr = match route {
            LookupRoute::DirectLink => {
                *self.route_counts.entry("direct").or_insert(0) += 1;
                self.linker.resolve(symbol)?
            }
            LookupRoute::EglGetProcAddress => {
                *self.route_counts.entry("egl_get_proc_address").or_insert(0) += 1;
                self.egl_get_proc_address(symbol)?
            }
            LookupRoute::DlopenDlsym => {
                *self.route_counts.entry("dlopen_dlsym").or_insert(0) += 1;
                let lib = self.dlopen("libGLESv2.so")?;
                Self::dlsym(&lib, symbol)?
            }
        };
        Ok(ptr)
    }

    /// The rewritten `eglGetProcAddress`: always answers from the wrapper
    /// when the wrapper exports the symbol, otherwise falls through to the
    /// genuine resolution.
    ///
    /// # Errors
    ///
    /// Returns [`LinkError::UnresolvedSymbol`] for unknown names.
    pub fn egl_get_proc_address(&self, symbol: &str) -> Result<FnPtr, LinkError> {
        if let Ok(wrapper) = self.linker.find_library(&self.wrapper_name) {
            if let Some(ptr) = wrapper.lookup(symbol) {
                return Ok(ptr.clone());
            }
        }
        self.linker.resolve(symbol)
    }

    /// The rewritten `dlopen`: requests for any GL library return the
    /// wrapper library instead.
    ///
    /// # Errors
    ///
    /// Returns [`LinkError::LibraryNotFound`] for unknown libraries.
    pub fn dlopen(&self, name: &str) -> Result<SharedLibrary, LinkError> {
        let target = if REDIRECTED_LIBS.contains(&name) {
            &self.wrapper_name
        } else {
            name
        };
        self.linker.find_library(target).cloned()
    }

    /// The rewritten `dlsym`: a plain lookup on the (possibly redirected)
    /// handle returned by [`HookEngine::dlopen`].
    ///
    /// # Errors
    ///
    /// Returns [`LinkError::UnresolvedSymbol`] if the handle lacks it.
    pub fn dlsym(lib: &SharedLibrary, symbol: &str) -> Result<FnPtr, LinkError> {
        lib.lookup(symbol)
            .cloned()
            .ok_or_else(|| LinkError::UnresolvedSymbol(symbol.to_string()))
    }

    /// True if `ptr` points into the wrapper library — i.e. the call is
    /// intercepted by GBooster.
    pub fn is_intercepted(&self, ptr: &FnPtr) -> bool {
        ptr.provider() == self.wrapper_name
    }

    /// How many lookups each route has served (telemetry for tests).
    pub fn route_counts(&self) -> &BTreeMap<&'static str, u64> {
        &self.route_counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::{genuine_egl, genuine_gles, GLES2_SYMBOLS};

    fn engine() -> HookEngine {
        let mut linker = DynamicLinker::new();
        linker.load(genuine_gles());
        linker.load(genuine_egl());
        HookEngine::install(linker)
    }

    #[test]
    fn route1_direct_link_is_intercepted() {
        let mut hooks = engine();
        let ptr = hooks
            .lookup("glDrawElements", LookupRoute::DirectLink)
            .unwrap();
        assert!(hooks.is_intercepted(&ptr));
    }

    #[test]
    fn route2_egl_get_proc_address_is_intercepted() {
        let mut hooks = engine();
        let ptr = hooks
            .lookup("glVertexAttribPointer", LookupRoute::EglGetProcAddress)
            .unwrap();
        assert!(hooks.is_intercepted(&ptr));
    }

    #[test]
    fn route3_dlopen_dlsym_is_intercepted() {
        let mut hooks = engine();
        let ptr = hooks
            .lookup("glTexImage2D", LookupRoute::DlopenDlsym)
            .unwrap();
        assert!(hooks.is_intercepted(&ptr));
    }

    #[test]
    fn every_gles_symbol_is_intercepted_on_every_route() {
        let mut hooks = engine();
        for sym in GLES2_SYMBOLS {
            for route in LookupRoute::ALL {
                let ptr = hooks.lookup(sym, route).unwrap();
                assert!(
                    hooks.is_intercepted(&ptr),
                    "{sym} escaped interception via {route:?}"
                );
            }
        }
    }

    #[test]
    fn dlopen_of_unrelated_library_is_not_redirected() {
        let mut linker = DynamicLinker::new();
        linker.load(genuine_gles());
        linker.load(SharedLibrary::new("libc.so").exporting(["malloc"]));
        let hooks = HookEngine::install(linker);
        let libc = hooks.dlopen("libc.so").unwrap();
        assert_eq!(libc.name(), "libc.so");
        let ptr = HookEngine::dlsym(&libc, "malloc").unwrap();
        assert_eq!(ptr.provider(), "libc.so");
    }

    #[test]
    fn without_hooks_calls_reach_genuine_library() {
        let mut linker = DynamicLinker::new();
        linker.load(genuine_gles());
        let ptr = linker.resolve("glClear").unwrap();
        assert_eq!(ptr.provider(), "libGLESv2.so");
    }

    #[test]
    fn unknown_symbol_propagates_error() {
        let mut hooks = engine();
        for route in LookupRoute::ALL {
            assert!(hooks.lookup("glNotARealFunction", route).is_err());
        }
    }

    #[test]
    fn route_counts_accumulate() {
        let mut hooks = engine();
        hooks.lookup("glClear", LookupRoute::DirectLink).unwrap();
        hooks.lookup("glClear", LookupRoute::DirectLink).unwrap();
        hooks
            .lookup("glClear", LookupRoute::EglGetProcAddress)
            .unwrap();
        assert_eq!(hooks.route_counts()["direct"], 2);
        assert_eq!(hooks.route_counts()["egl_get_proc_address"], 1);
    }
}
